//! Paged storage substrate for the SG-tree and SG-table.
//!
//! The paper evaluates both indexes as *disk-based paginated structures*
//! and reports **random I/Os** (page reads) as a primary cost metric. This
//! crate provides that substrate:
//!
//! * [`PageStore`] — the backing store abstraction: allocate / free / read /
//!   write fixed-size pages, addressed by [`PageId`].
//! * [`MemStore`] — an in-memory store for tests and CPU-bound experiments.
//! * [`FileStore`] — a real file-backed store (one page = one aligned slot
//!   in the file).
//! * [`BufferPool`] — an LRU page cache over any store. Cache misses are
//!   counted as random I/Os; the experiment harness resets the counters
//!   around each query and can drop the cache to emulate the paper's
//!   cold-buffer measurements.
//!
//! All counters live in [`IoStats`] and are cheap relaxed atomics, so query
//! code can run unchanged whether or not an experiment is collecting them.

mod buffer;
mod error;
mod stats;
mod store;
mod wal;

pub use buffer::BufferPool;
pub use error::{SgError, SgResult};
pub use stats::{IoSnapshot, IoStats};
pub use store::{FileStore, MemStore, PageStore};
pub use wal::{
    crc32, read_snapshot, write_snapshot, FsyncPolicy, Replay, Snapshot, Wal, WalOp, WalRecord,
};

/// Identifier of a page within a store. Dense, starting at 0; freed ids are
/// recycled by the stores' free lists.
pub type PageId = u64;

/// The default page size used across the workspace (bytes).
///
/// The paper's setup ("node = disk page", capacities of several tens of
/// entries with several-hundred-bit signatures) corresponds to the classic
/// 4 KiB page.
pub const DEFAULT_PAGE_SIZE: usize = 4096;
