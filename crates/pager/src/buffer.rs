//! An LRU buffer pool over a [`PageStore`].
//!
//! The pool is the point where the paper's **random I/O** metric is
//! defined: a page request that misses the pool is one random I/O. The
//! experiment harness controls cache effects explicitly — it calls
//! [`BufferPool::clear`] before a query to measure cold-cache behaviour, or
//! leaves the pool warm to study limited-memory regimes (§5's discussion of
//! the SG-table's sensitivity to memory resources).

use crate::stats::IoStats;
use crate::store::PageStore;
use crate::PageId;
use parking_lot::Mutex;
use sg_obs::PoolObs;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

const NIL: usize = usize::MAX;

struct Frame {
    id: PageId,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
}

/// Intrusive doubly-linked LRU over a slab of frames. O(1) touch/insert/
/// evict.
struct LruState {
    map: HashMap<PageId, usize>,
    frames: Vec<Frame>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruState {
    fn new() -> Self {
        LruState {
            map: HashMap::new(),
            frames: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn insert(&mut self, id: PageId, data: Arc<[u8]>) {
        let idx = if let Some(idx) = self.free.pop() {
            self.frames[idx] = Frame {
                id,
                data,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.frames.push(Frame {
                id,
                data,
                prev: NIL,
                next: NIL,
            });
            self.frames.len() - 1
        };
        self.map.insert(id, idx);
        self.push_front(idx);
    }

    fn remove(&mut self, id: PageId) -> bool {
        if let Some(idx) = self.map.remove(&id) {
            self.unlink(idx);
            self.frames[idx].data = Arc::from(&[][..]);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    fn evict_lru(&mut self) -> Option<PageId> {
        if self.tail == NIL {
            return None;
        }
        let id = self.frames[self.tail].id;
        self.remove(id);
        Some(id)
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// An LRU page cache with I/O accounting.
///
/// Writes are write-through: the store is updated immediately and the
/// cached copy (if any) refreshed, so the underlying store is always
/// consistent and `clear` never loses data.
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    capacity: usize,
    stats: IoStats,
    lru: Mutex<LruState>,
    obs: OnceLock<Arc<PoolObs>>,
}

impl BufferPool {
    /// Wraps `store` with a pool of at most `capacity` cached frames.
    /// `capacity == 0` disables caching entirely (every read is physical).
    pub fn new(store: Arc<dyn PageStore>, capacity: usize) -> Self {
        BufferPool {
            store,
            capacity,
            stats: IoStats::new(),
            lru: Mutex::new(LruState::new()),
            obs: OnceLock::new(),
        }
    }

    /// Attaches a metrics instrument set; hits/misses/evictions/writes
    /// are mirrored into it from then on. Only the first attachment
    /// takes effect.
    pub fn attach_obs(&self, obs: Arc<PoolObs>) {
        let _ = self.obs.set(obs);
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// The page size of the wrapped store.
    pub fn page_size(&self) -> usize {
        self.store.page_size()
    }

    /// The pool's frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Allocates a fresh page in the store.
    pub fn allocate(&self) -> PageId {
        self.store.allocate()
    }

    /// Frees a page, dropping any cached copy.
    pub fn free(&self, id: PageId) {
        self.lru.lock().remove(id);
        self.store.free(id);
    }

    /// Evicts LRU frames until the pool fits its capacity, counting each.
    fn evict_excess(&self, lru: &mut LruState) {
        while lru.len() > self.capacity {
            if lru.evict_lru().is_none() {
                break;
            }
            self.stats.count_eviction();
            if let Some(obs) = self.obs.get() {
                obs.evictions.inc();
            }
        }
    }

    /// Reads page `id`, from cache when possible.
    pub fn read(&self, id: PageId) -> Arc<[u8]> {
        self.stats.count_logical_read();
        if self.capacity > 0 {
            let mut lru = self.lru.lock();
            if let Some(&idx) = lru.map.get(&id) {
                let data = lru.frames[idx].data.clone();
                lru.touch(idx);
                drop(lru);
                if let Some(obs) = self.obs.get() {
                    obs.hits.inc();
                }
                return data;
            }
        }
        // Miss (or caching disabled): one random I/O.
        self.stats.count_physical_read();
        if let Some(obs) = self.obs.get() {
            obs.misses.inc();
        }
        let mut miss_span = sg_obs::span::Span::start("pager.pool_miss", "pager");
        miss_span.attr("page", id);
        let mut buf = vec![0u8; self.store.page_size()];
        self.store.read(id, &mut buf);
        drop(miss_span);
        let data: Arc<[u8]> = Arc::from(buf.into_boxed_slice());
        if self.capacity > 0 {
            let mut lru = self.lru.lock();
            // Re-check: another thread may have inserted meanwhile.
            if !lru.map.contains_key(&id) {
                lru.insert(id, data.clone());
                self.evict_excess(&mut lru);
            }
        }
        data
    }

    /// Writes page `id` through to the store and refreshes the cache.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the page size.
    pub fn write(&self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.store.page_size());
        self.stats.count_write();
        if let Some(obs) = self.obs.get() {
            obs.writes.inc();
        }
        self.store.write(id, data);
        if self.capacity > 0 {
            let mut lru = self.lru.lock();
            let cached: Arc<[u8]> = Arc::from(data.to_vec().into_boxed_slice());
            if lru.map.contains_key(&id) {
                lru.remove(id);
            }
            lru.insert(id, cached);
            self.evict_excess(&mut lru);
        }
    }

    /// Drops every cached frame (a "cold cache" reset). Safe at any time
    /// because writes are write-through.
    pub fn clear(&self) {
        let mut lru = self.lru.lock();
        *lru = LruState::new();
    }

    /// Number of frames currently cached.
    pub fn cached_frames(&self) -> usize {
        self.lru.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemStore::new(64)), capacity)
    }

    #[test]
    fn read_hits_cache_second_time() {
        let p = pool(4);
        let id = p.allocate();
        p.write(id, &[5u8; 64]);
        p.stats().reset();
        let a = p.read(id);
        assert_eq!(a[0], 5);
        // write() cached the page, so even the first read is a hit.
        assert_eq!(p.stats().physical_reads(), 0);
        p.clear();
        p.stats().reset();
        let _ = p.read(id);
        let _ = p.read(id);
        assert_eq!(p.stats().logical_reads(), 2);
        assert_eq!(p.stats().physical_reads(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let p = pool(0);
        let id = p.allocate();
        p.write(id, &[1u8; 64]);
        p.stats().reset();
        let _ = p.read(id);
        let _ = p.read(id);
        assert_eq!(p.stats().physical_reads(), 2);
        assert_eq!(p.cached_frames(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        for (i, id) in [a, b, c].iter().enumerate() {
            p.write(*id, &[i as u8; 64]);
        }
        p.clear();
        p.stats().reset();
        let _ = p.read(a); // cache: [a]
        let _ = p.read(b); // cache: [b, a]
        let _ = p.read(a); // touch a → [a, b]
        let _ = p.read(c); // evicts b → [c, a]
        assert_eq!(p.stats().physical_reads(), 3);
        let _ = p.read(a); // hit
        assert_eq!(p.stats().physical_reads(), 3);
        let _ = p.read(b); // miss (was evicted)
        assert_eq!(p.stats().physical_reads(), 4);
    }

    #[test]
    fn write_through_survives_clear() {
        let p = pool(2);
        let id = p.allocate();
        p.write(id, &[9u8; 64]);
        p.clear();
        let data = p.read(id);
        assert!(data.iter().all(|&x| x == 9));
    }

    #[test]
    fn free_drops_cached_copy() {
        let p = pool(4);
        let id = p.allocate();
        p.write(id, &[3u8; 64]);
        assert_eq!(p.cached_frames(), 1);
        p.free(id);
        assert_eq!(p.cached_frames(), 0);
        // Recycled page is zeroed by MemStore.
        let id2 = p.allocate();
        assert_eq!(id2, id);
        let data = p.read(id2);
        assert!(data.iter().all(|&x| x == 0));
    }

    #[test]
    fn many_pages_random_access_consistent() {
        let p = pool(8);
        let ids: Vec<_> = (0..64).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut page = [0u8; 64];
            page[0] = i as u8;
            p.write(id, &page);
        }
        // Access in a pseudo-random pattern, verifying contents each time.
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % ids.len();
            let data = p.read(ids[i]);
            assert_eq!(data[0], i as u8);
        }
        assert!(p.cached_frames() <= 8);
    }

    #[test]
    fn updates_visible_through_cache() {
        let p = pool(4);
        let id = p.allocate();
        p.write(id, &[1u8; 64]);
        let _ = p.read(id);
        p.write(id, &[2u8; 64]);
        let data = p.read(id);
        assert!(data.iter().all(|&x| x == 2));
    }
}
