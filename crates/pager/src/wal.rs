//! Write-ahead log and checkpoint snapshots for live ingest.
//!
//! The write path is **append-before-mutate**: every accepted mutation is
//! appended to the log (and synced per [`FsyncPolicy`]) *before* it is
//! applied to the in-memory tree and acknowledged to the caller. A killed
//! process therefore recovers exactly the acknowledged prefix: reopen the
//! last checkpoint snapshot, then replay the log.
//!
//! ## Record framing
//!
//! Every record — in the log and in snapshots — is CRC-framed:
//!
//! ```text
//! [len: u32 LE] [crc32(body): u32 LE] [body: len bytes]
//! body = [lsn: u64] [op: u8] [tid: u64] [payload_len: u32] [payload]
//! ```
//!
//! Replay accepts the longest valid prefix. A torn or corrupt tail — the
//! normal aftermath of `kill -9` mid-append — is detected by the length
//! and CRC checks, reported in [`Replay::truncated_bytes`], and physically
//! truncated away so the next append starts from a clean record boundary.
//!
//! ## Checkpoints
//!
//! A checkpoint snapshot is a compacted log: the full entry set as insert
//! records, prefixed by a header carrying the **LSN watermark** — the
//! highest LSN the snapshot includes. Snapshots are written to a temp file,
//! synced, and atomically renamed, so a crash mid-checkpoint leaves the
//! previous snapshot intact. Replay skips log records at or below the
//! watermark, which makes the crash window *after* the rename but *before*
//! the log truncation harmless: those records replay as no-ops.

use crate::error::{SgError, SgResult};
use sg_obs::span::Span;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const SNAP_MAGIC: &[u8; 8] = b"SGSNAP01";
const HEADER_BYTES: usize = 8; // len + crc
const BODY_FIXED: usize = 8 + 1 + 8 + 4; // lsn + op + tid + payload_len

/// When the log forces appended bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append (and every batch): an acknowledged write
    /// survives power loss. The default for durable shards.
    Always,
    /// Leave flushing to the OS page cache: acknowledged writes survive a
    /// process kill (the test harness's `SIGKILL`) but not power loss.
    /// Roughly an order of magnitude higher append throughput.
    OsOnly,
}

/// A logged mutation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Add `(tid, payload)` to the index.
    Insert,
    /// Remove `(tid, payload)` from the index.
    Delete,
    /// Replace tid's entry with `payload` (insert if absent).
    Upsert,
}

impl WalOp {
    fn to_byte(self) -> u8 {
        match self {
            WalOp::Insert => 1,
            WalOp::Delete => 2,
            WalOp::Upsert => 3,
        }
    }

    fn from_byte(b: u8) -> Option<WalOp> {
        match b {
            1 => Some(WalOp::Insert),
            2 => Some(WalOp::Delete),
            3 => Some(WalOp::Upsert),
            _ => None,
        }
    }
}

/// One recovered (or to-be-appended) log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number: strictly increasing across the shard's life,
    /// *including* across checkpoints.
    pub lsn: u64,
    /// The mutation kind.
    pub op: WalOp,
    /// The transaction id the mutation targets.
    pub tid: u64,
    /// Opaque payload (the encoded signature; the pager does not
    /// interpret it).
    pub payload: Vec<u8>,
}

/// Outcome of opening a log: the valid records plus tail diagnostics.
#[derive(Debug)]
pub struct Replay {
    /// Every valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded from a torn or corrupt tail (0 on a clean log).
    pub truncated_bytes: u64,
}

/// An append-only, CRC-framed operation log.
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    next_lsn: u64,
    bytes: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("next_lsn", &self.next_lsn)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays the valid
    /// prefix, truncates any torn tail, and positions the next append
    /// after the last valid record.
    ///
    /// `base_lsn` floors the LSN counter: the next appended record carries
    /// at least this LSN. Pass `0` for a fresh shard, or `watermark + 1`
    /// when opening after a checkpoint, so LSNs keep increasing even when
    /// the log file itself is empty.
    pub fn open(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
        base_lsn: u64,
    ) -> SgResult<(Wal, Replay)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| SgError::io(format!("open wal {}", path.display()), e))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| SgError::io("read wal", e))?;
        let (records, valid_len) = decode_records(&buf);
        let truncated = buf.len() as u64 - valid_len;
        if truncated > 0 {
            file.set_len(valid_len)
                .map_err(|e| SgError::io("truncate torn wal tail", e))?;
            file.sync_all().map_err(|e| SgError::io("sync wal", e))?;
        }
        file.seek(SeekFrom::Start(valid_len))
            .map_err(|e| SgError::io("seek wal", e))?;
        let next_lsn = records.last().map(|r| r.lsn + 1).unwrap_or(0).max(base_lsn);
        Ok((
            Wal {
                file,
                path,
                policy,
                next_lsn,
                bytes: valid_len,
            },
            Replay {
                records,
                truncated_bytes: truncated,
            },
        ))
    }

    /// The LSN the next appended record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Bytes of valid records currently in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The configured durability policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Appends one record and syncs per policy. Returns its LSN.
    pub fn append(&mut self, op: WalOp, tid: u64, payload: &[u8]) -> SgResult<u64> {
        let mut span = Span::start("pager.wal_append", "pager");
        span.attr("records", 1);
        span.attr("bytes", (HEADER_BYTES + BODY_FIXED + payload.len()) as u64);
        let lsn = self.append_unsynced(op, tid, payload)?;
        self.sync()?;
        Ok(lsn)
    }

    /// Appends a batch of records with **one** write and **one** sync
    /// (group commit): the whole batch becomes durable together, so a
    /// batched ack amortizes the fsync across every write in the batch.
    /// Returns the LSN of each record, in order.
    pub fn append_batch(&mut self, items: &[(WalOp, u64, Vec<u8>)]) -> SgResult<Vec<u64>> {
        let mut span = Span::start("pager.wal_append", "pager");
        let mut frame = Vec::new();
        let mut lsns = Vec::with_capacity(items.len());
        for (op, tid, payload) in items {
            lsns.push(self.next_lsn);
            encode_record(&mut frame, self.next_lsn, *op, *tid, payload);
            self.next_lsn += 1;
        }
        span.attr("records", items.len() as u64);
        span.attr("bytes", frame.len() as u64);
        self.file
            .write_all(&frame)
            .map_err(|e| SgError::io("append wal batch", e))?;
        self.bytes += frame.len() as u64;
        self.sync()?;
        Ok(lsns)
    }

    fn append_unsynced(&mut self, op: WalOp, tid: u64, payload: &[u8]) -> SgResult<u64> {
        let lsn = self.next_lsn;
        let mut frame = Vec::with_capacity(HEADER_BYTES + BODY_FIXED + payload.len());
        encode_record(&mut frame, lsn, op, tid, payload);
        self.file
            .write_all(&frame)
            .map_err(|e| SgError::io("append wal record", e))?;
        self.next_lsn += 1;
        self.bytes += frame.len() as u64;
        Ok(lsn)
    }

    /// Forces appended records to stable storage per policy.
    pub fn sync(&mut self) -> SgResult<()> {
        match self.policy {
            FsyncPolicy::Always => {
                let _span = Span::start("pager.fsync", "pager");
                self.file
                    .sync_data()
                    .map_err(|e| SgError::io("fsync wal", e))
            }
            FsyncPolicy::OsOnly => Ok(()),
        }
    }

    /// Empties the log after a checkpoint made its records redundant. The
    /// LSN counter is *not* reset — it keeps increasing across the
    /// shard's whole life.
    pub fn truncate(&mut self) -> SgResult<()> {
        self.file
            .set_len(0)
            .map_err(|e| SgError::io("truncate wal", e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| SgError::io("seek wal", e))?;
        self.file
            .sync_all()
            .map_err(|e| SgError::io("sync truncated wal", e))?;
        self.bytes = 0;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ----------------------------------------------------------- snapshots

/// Atomically writes a checkpoint snapshot: `watermark` is the highest
/// LSN the entries reflect; `entries` is the full `(tid, payload)` set.
/// The snapshot lands at `path` via write-temp → fsync → rename, so a
/// crash at any point leaves either the old or the new snapshot, never a
/// mix.
pub fn write_snapshot(
    path: impl AsRef<Path>,
    watermark: u64,
    entries: impl IntoIterator<Item = (u64, Vec<u8>)>,
) -> SgResult<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAP_MAGIC);
    buf.extend_from_slice(&watermark.to_le_bytes());
    for (tid, payload) in entries {
        encode_record(&mut buf, 0, WalOp::Insert, tid, &payload);
    }
    let mut file = File::create(&tmp)
        .map_err(|e| SgError::io(format!("create snapshot {}", tmp.display()), e))?;
    file.write_all(&buf)
        .map_err(|e| SgError::io("write snapshot", e))?;
    file.sync_all()
        .map_err(|e| SgError::io("sync snapshot", e))?;
    drop(file);
    std::fs::rename(&tmp, path)
        .map_err(|e| SgError::io(format!("rename snapshot into {}", path.display()), e))?;
    // Persist the rename itself (the directory entry).
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A decoded checkpoint snapshot: the LSN watermark plus the full
/// `(tid, payload)` entry set.
pub type Snapshot = (u64, Vec<(u64, Vec<u8>)>);

/// Reads a checkpoint snapshot: `Ok(None)` when no snapshot exists yet,
/// `Err(Corrupt)` when one exists but fails validation (snapshots are
/// written atomically, so unlike the log a damaged snapshot is an error,
/// not a tail to trim).
pub fn read_snapshot(path: impl AsRef<Path>) -> SgResult<Option<Snapshot>> {
    let path = path.as_ref();
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => f
            .read_to_end(&mut buf)
            .map_err(|e| SgError::io("read snapshot", e))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SgError::io(format!("open snapshot {}", path.display()), e)),
    };
    if buf.len() < 16 || &buf[0..8] != SNAP_MAGIC {
        return Err(SgError::corrupt("snapshot header missing or wrong magic"));
    }
    let watermark = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let (records, valid_len) = decode_records(&buf[16..]);
    if valid_len as usize != buf.len() - 16 {
        return Err(SgError::corrupt(format!(
            "snapshot has {} undecodable trailing bytes",
            buf.len() - 16 - valid_len as usize
        )));
    }
    Ok(Some((
        watermark,
        records.into_iter().map(|r| (r.tid, r.payload)).collect(),
    )))
}

// ------------------------------------------------------------- framing

fn encode_record(out: &mut Vec<u8>, lsn: u64, op: WalOp, tid: u64, payload: &[u8]) {
    let body_len = BODY_FIXED + payload.len();
    let mut body = Vec::with_capacity(body_len);
    body.extend_from_slice(&lsn.to_le_bytes());
    body.push(op.to_byte());
    body.extend_from_slice(&tid.to_le_bytes());
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(payload);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
}

/// Decodes the longest valid record prefix of `buf`; returns the records
/// and how many bytes they span.
fn decode_records(buf: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= HEADER_BYTES {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len < BODY_FIXED || buf.len() - pos - HEADER_BYTES < len {
            break; // torn length field or torn body
        }
        let body = &buf[pos + HEADER_BYTES..pos + HEADER_BYTES + len];
        if crc32(body) != crc {
            break; // corrupt body
        }
        let lsn = u64::from_le_bytes(body[0..8].try_into().unwrap());
        let op = match WalOp::from_byte(body[8]) {
            Some(op) => op,
            None => break,
        };
        let tid = u64::from_le_bytes(body[9..17].try_into().unwrap());
        let payload_len = u32::from_le_bytes(body[17..21].try_into().unwrap()) as usize;
        if payload_len != len - BODY_FIXED {
            break;
        }
        records.push(WalRecord {
            lsn,
            op,
            tid,
            payload: body[21..].to_vec(),
        });
        pos += HEADER_BYTES + len;
    }
    (records, pos as u64)
}

/// CRC-32 (IEEE 802.3, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sg-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, replay) = Wal::open(&path, FsyncPolicy::OsOnly, 0).unwrap();
            assert!(replay.records.is_empty());
            wal.append(WalOp::Insert, 7, b"abc").unwrap();
            wal.append(WalOp::Delete, 7, b"abc").unwrap();
            wal.append(WalOp::Upsert, 9, b"").unwrap();
        }
        let (wal, replay) = Wal::open(&path, FsyncPolicy::Always, 0).unwrap();
        assert_eq!(replay.truncated_bytes, 0);
        let r = &replay.records;
        assert_eq!(r.len(), 3);
        assert_eq!((r[0].lsn, r[0].op, r[0].tid), (0, WalOp::Insert, 7));
        assert_eq!(r[0].payload, b"abc");
        assert_eq!((r[1].lsn, r[1].op), (1, WalOp::Delete));
        assert_eq!((r[2].lsn, r[2].op, r[2].tid), (2, WalOp::Upsert, 9));
        assert_eq!(wal.next_lsn(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = tmp("torn.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open(&path, FsyncPolicy::OsOnly, 0).unwrap();
            wal.append(WalOp::Insert, 1, b"one").unwrap();
            wal.append(WalOp::Insert, 2, b"two").unwrap();
        }
        // Simulate a kill mid-append: chop bytes off the tail.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (mut wal, replay) = Wal::open(&path, FsyncPolicy::OsOnly, 0).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].tid, 1);
        assert!(replay.truncated_bytes > 0);
        // The torn record's LSN is reused — it was never acknowledged.
        assert_eq!(wal.next_lsn(), 1);
        wal.append(WalOp::Insert, 3, b"three").unwrap();
        let (_, replay) = Wal::open(&path, FsyncPolicy::OsOnly, 0).unwrap();
        assert_eq!(
            replay.records.iter().map(|r| r.tid).collect::<Vec<_>>(),
            vec![1, 3]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_stops_replay_at_the_flip() {
        let path = tmp("corrupt.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open(&path, FsyncPolicy::OsOnly, 0).unwrap();
            for tid in 0..5 {
                wal.append(WalOp::Insert, tid, b"payload").unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let frame = bytes.len() / 5;
        bytes[3 * frame + HEADER_BYTES + 2] ^= 0xFF; // corrupt record 3's body
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path, FsyncPolicy::OsOnly, 0).unwrap();
        assert_eq!(
            replay.records.iter().map(|r| r.tid).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_append_is_one_contiguous_group() {
        let path = tmp("batch.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Always, 0).unwrap();
        let lsns = wal
            .append_batch(&[
                (WalOp::Insert, 1, b"a".to_vec()),
                (WalOp::Insert, 2, b"b".to_vec()),
                (WalOp::Delete, 1, b"a".to_vec()),
            ])
            .unwrap();
        assert_eq!(lsns, vec![0, 1, 2]);
        drop(wal);
        let (_, replay) = Wal::open(&path, FsyncPolicy::OsOnly, 0).unwrap();
        assert_eq!(replay.records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_keeps_lsn_monotone_via_base() {
        let path = tmp("truncate.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::OsOnly, 0).unwrap();
        for tid in 0..4 {
            wal.append(WalOp::Insert, tid, b"x").unwrap();
        }
        wal.truncate().unwrap(); // checkpoint at watermark 3
        assert_eq!(wal.bytes(), 0);
        assert_eq!(wal.next_lsn(), 4);
        wal.append(WalOp::Insert, 9, b"y").unwrap();
        drop(wal);
        // Reopen passing watermark + 1 as the base LSN.
        let (wal, replay) = Wal::open(&path, FsyncPolicy::OsOnly, 4).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].lsn, 4);
        assert_eq!(wal.next_lsn(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_roundtrip_and_atomicity() {
        let path = tmp("snap.ckpt");
        std::fs::remove_file(&path).ok();
        assert!(read_snapshot(&path).unwrap().is_none());
        write_snapshot(&path, 41, vec![(1, b"aa".to_vec()), (2, b"bb".to_vec())]).unwrap();
        let (wm, entries) = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(wm, 41);
        assert_eq!(entries, vec![(1, b"aa".to_vec()), (2, b"bb".to_vec())]);
        // Overwrite with a newer snapshot; reader sees only the new one.
        write_snapshot(&path, 99, vec![(3, b"cc".to_vec())]).unwrap();
        let (wm, entries) = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(wm, 99);
        assert_eq!(entries.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_snapshot_is_an_error_not_a_prefix() {
        let path = tmp("snap-bad.ckpt");
        write_snapshot(&path, 7, vec![(1, b"aa".to_vec())]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&path), Err(SgError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    proptest! {
        // Any record set survives an encode → decode roundtrip, and any
        // truncation of the byte stream yields a prefix of the records —
        // never garbage, never reordering.
        #[test]
        fn records_roundtrip_and_any_truncation_is_a_prefix(
            ops in prop::collection::vec((0u8..3, 0u64..1000, prop::collection::vec(0u8..255, 0..40)), 0..12),
            cut in 0usize..2000
        ) {
            let mut buf = Vec::new();
            let mut want = Vec::new();
            for (i, (op, tid, payload)) in ops.iter().enumerate() {
                let op = WalOp::from_byte(op + 1).unwrap();
                encode_record(&mut buf, i as u64, op, *tid, payload);
                want.push(WalRecord { lsn: i as u64, op, tid: *tid, payload: payload.clone() });
            }
            // Full roundtrip.
            let (got, len) = decode_records(&buf);
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(len as usize, buf.len());
            // Any truncation decodes to a strict prefix.
            let cut = cut.min(buf.len());
            let (got, len) = decode_records(&buf[..cut]);
            prop_assert!(len as usize <= cut);
            prop_assert_eq!(got.len() <= want.len(), true);
            prop_assert_eq!(&want[..got.len()], &got[..]);
        }

        // Flipping any single byte never yields records that differ from
        // a prefix-of-original followed by nothing (CRC catches the flip
        // at or before the damaged record).
        #[test]
        fn single_byte_corruption_never_fabricates_records(
            tids in prop::collection::vec(0u64..100, 1..8),
            flip in 0usize..500,
            xor in 1u8..255
        ) {
            let mut buf = Vec::new();
            for (i, tid) in tids.iter().enumerate() {
                encode_record(&mut buf, i as u64, WalOp::Insert, *tid, b"payload");
            }
            let (want, _) = decode_records(&buf);
            let flip = flip % buf.len();
            buf[flip] ^= xor;
            let (got, _) = decode_records(&buf);
            // Whatever survives is a prefix of the original records,
            // except possibly a record whose *length field* grew to
            // swallow later bytes — the CRC rejects that too.
            prop_assert!(got.len() <= want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                // Records before the flipped byte are untouched.
                if g != w { prop_assert!(false, "fabricated record"); }
            }
        }
    }
}
