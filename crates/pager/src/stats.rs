//! I/O accounting shared by the stores and the buffer pool.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe I/O counters.
///
/// * `logical_reads` — page fetches requested by index code (every
///   [`crate::BufferPool::read`] call).
/// * `physical_reads` — fetches that missed the buffer pool and hit the
///   store: the paper's **random I/Os**.
/// * `writes` — pages written through to the store.
#[derive(Debug, Default)]
pub struct IoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    writes: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn count_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Pages requested through the pool.
    pub fn logical_reads(&self) -> u64 {
        self.logical_reads.load(Ordering::Relaxed)
    }

    /// Pool misses that reached the store — the paper's "random I/Os".
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Pages written to the store.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Copies the counters into an immutable snapshot.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads(),
            physical_reads: self.physical_reads(),
            writes: self.writes(),
        }
    }
}

/// A point-in-time copy of [`IoStats`], convenient for computing per-query
/// deltas in the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages requested through the pool.
    pub logical_reads: u64,
    /// Pool misses that reached the store.
    pub physical_reads: u64,
    /// Pages written to the store.
    pub writes: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self − earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.count_logical_read();
        s.count_logical_read();
        s.count_physical_read();
        s.count_write();
        assert_eq!(s.logical_reads(), 2);
        assert_eq!(s.physical_reads(), 1);
        assert_eq!(s.writes(), 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.count_physical_read();
        let before = s.snapshot();
        s.count_physical_read();
        s.count_physical_read();
        s.count_logical_read();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.physical_reads, 2);
        assert_eq!(delta.logical_reads, 1);
        assert_eq!(delta.writes, 0);
    }
}
