//! I/O accounting shared by the stores and the buffer pool.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe I/O counters.
///
/// * `logical_reads` — page fetches requested by index code (every
///   [`crate::BufferPool::read`] call).
/// * `physical_reads` — fetches that missed the buffer pool and hit the
///   store: the paper's **random I/Os**.
/// * `evictions` — frames dropped by the pool's LRU to make room.
/// * `writes` — pages written through to the store.
#[derive(Debug, Default)]
pub struct IoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    evictions: AtomicU64,
    writes: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn count_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Pages requested through the pool.
    pub fn logical_reads(&self) -> u64 {
        self.logical_reads.load(Ordering::Relaxed)
    }

    /// Pool misses that reached the store — the paper's "random I/Os".
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Frames evicted by the pool's LRU.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Pages written to the store.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Copies the counters into an immutable snapshot.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads(),
            physical_reads: self.physical_reads(),
            evictions: self.evictions(),
            writes: self.writes(),
        }
    }
}

/// A point-in-time copy of [`IoStats`], convenient for computing per-query
/// deltas in the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages requested through the pool.
    pub logical_reads: u64,
    /// Pool misses that reached the store.
    pub physical_reads: u64,
    /// Frames evicted by the pool's LRU.
    pub evictions: u64,
    /// Pages written to the store.
    pub writes: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self − earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }

    /// Reads served from a cached frame: `logical − physical`.
    pub fn pool_hits(&self) -> u64 {
        self.logical_reads.saturating_sub(self.physical_reads)
    }

    /// Fraction of logical reads served from the pool; 0.0 when no reads
    /// happened.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.pool_hits() as f64 / self.logical_reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.count_logical_read();
        s.count_logical_read();
        s.count_physical_read();
        s.count_eviction();
        s.count_write();
        assert_eq!(s.logical_reads(), 2);
        assert_eq!(s.physical_reads(), 1);
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.writes(), 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.count_physical_read();
        let before = s.snapshot();
        s.count_physical_read();
        s.count_physical_read();
        s.count_logical_read();
        s.count_eviction();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.physical_reads, 2);
        assert_eq!(delta.logical_reads, 1);
        assert_eq!(delta.evictions, 1);
        assert_eq!(delta.writes, 0);
    }

    #[test]
    fn pool_hits_is_logical_minus_physical() {
        let s = IoStats::new();
        for _ in 0..10 {
            s.count_logical_read();
        }
        for _ in 0..3 {
            s.count_physical_read();
        }
        let snap = s.snapshot();
        assert_eq!(snap.pool_hits(), 7);
        assert!((snap.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_edge_cases() {
        // No reads at all.
        assert_eq!(IoSnapshot::default().hit_rate(), 0.0);
        assert_eq!(IoSnapshot::default().pool_hits(), 0);
        // All misses.
        let all_miss = IoSnapshot {
            logical_reads: 4,
            physical_reads: 4,
            evictions: 0,
            writes: 0,
        };
        assert_eq!(all_miss.pool_hits(), 0);
        assert_eq!(all_miss.hit_rate(), 0.0);
        // All hits.
        let all_hit = IoSnapshot {
            logical_reads: 4,
            physical_reads: 0,
            evictions: 0,
            writes: 0,
        };
        assert_eq!(all_hit.pool_hits(), 4);
        assert_eq!(all_hit.hit_rate(), 1.0);
        // Defensive: physical > logical (should never happen) saturates.
        let weird = IoSnapshot {
            logical_reads: 2,
            physical_reads: 5,
            evictions: 0,
            writes: 0,
        };
        assert_eq!(weird.pool_hits(), 0);
        assert_eq!(weird.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_of_delta_window() {
        let s = IoStats::new();
        s.count_logical_read();
        s.count_physical_read();
        let before = s.snapshot();
        for _ in 0..8 {
            s.count_logical_read();
        }
        s.count_physical_read();
        s.count_physical_read();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.pool_hits(), 6);
        assert!((delta.hit_rate() - 0.75).abs() < 1e-12);
    }
}
