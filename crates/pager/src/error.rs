//! The workspace-wide error type.
//!
//! Every fallible operation in the storage, index, execution, and serving
//! layers reports through one [`SgError`] enum, so call sites compose with
//! `?` across crate boundaries instead of translating between per-crate
//! error types. The enum lives in `sg-pager` because it is the lowest
//! crate on every I/O path; upper crates re-export it.

use std::fmt;
use std::io;

/// Unified error for the SG-tree workspace (storage, index, execution,
/// serving).
#[derive(Debug)]
pub enum SgError {
    /// An operating-system I/O failure, with the operation that hit it.
    Io {
        /// What the workspace was doing (e.g. `"append wal record"`).
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// On-disk bytes failed validation (bad CRC, impossible lengths).
    Corrupt(String),
    /// A persisted meta page does not describe a valid structure.
    BadMeta(String),
    /// A configuration cannot work (e.g. pages too small for two entries).
    BadConfig(String),
    /// The request itself is malformed (bad parameters, universe
    /// mismatch, unknown id).
    Invalid(String),
    /// The backend does not support this operation (e.g. deletes on a
    /// build-only baseline index).
    Unsupported(&'static str),
    /// The caller cancelled the operation before it completed.
    Cancelled,
    /// The component is draining and admits no new work.
    ShuttingDown,
    /// An internal invariant failed (worker died, channel closed).
    Internal(String),
}

impl SgError {
    /// Wraps an [`io::Error`] with the operation that produced it.
    pub fn io(context: impl Into<String>, source: io::Error) -> SgError {
        SgError::Io {
            context: context.into(),
            source,
        }
    }

    /// Convenience constructor for [`SgError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> SgError {
        SgError::Corrupt(msg.into())
    }

    /// Convenience constructor for [`SgError::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> SgError {
        SgError::Invalid(msg.into())
    }
}

impl fmt::Display for SgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgError::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            SgError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            SgError::BadMeta(m) => write!(f, "bad meta page: {m}"),
            SgError::BadConfig(m) => write!(f, "bad config: {m}"),
            SgError::Invalid(m) => write!(f, "invalid request: {m}"),
            SgError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            SgError::Cancelled => write!(f, "operation cancelled"),
            SgError::ShuttingDown => write!(f, "shutting down"),
            SgError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for SgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SgError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for SgError {
    fn from(e: io::Error) -> SgError {
        SgError::io("performing file I/O", e)
    }
}

/// Workspace-wide result alias.
pub type SgResult<T> = Result<T, SgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = SgError::io(
            "reading page 7",
            io::Error::new(io::ErrorKind::UnexpectedEof, "eof"),
        );
        let s = e.to_string();
        assert!(s.contains("reading page 7"), "{s}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn variants_format() {
        for e in [
            SgError::corrupt("bad crc"),
            SgError::BadMeta("magic".into()),
            SgError::BadConfig("page too small".into()),
            SgError::invalid("k = 0"),
            SgError::Unsupported("delete on inverted index"),
            SgError::Cancelled,
            SgError::ShuttingDown,
            SgError::Internal("worker died".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
