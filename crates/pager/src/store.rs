//! Page stores: the raw fixed-size-page backends.

use crate::error::{SgError, SgResult};
use crate::PageId;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// A store of fixed-size pages.
///
/// Implementations must be safe for concurrent use; the workspace's indexes
/// are single-writer but queries may run from several threads in the
/// experiment harness.
pub trait PageStore: Send + Sync {
    /// The size in bytes of every page in this store.
    fn page_size(&self) -> usize;

    /// Allocates a fresh (zeroed) page and returns its id. Recycles freed
    /// ids when available.
    fn allocate(&self) -> PageId;

    /// Returns a page to the free list. Reading a freed page is a logic
    /// error; stores may return zeroes or stale bytes.
    fn free(&self, id: PageId);

    /// Reads page `id` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != page_size()` or `id` was never allocated.
    fn read(&self, id: PageId, buf: &mut [u8]);

    /// Writes `buf` as the new contents of page `id`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != page_size()` or `id` was never allocated.
    fn write(&self, id: PageId, buf: &[u8]);

    /// Number of pages currently allocated (excluding freed ones).
    fn allocated_pages(&self) -> u64;

    /// Fallible [`PageStore::allocate`]: propagates I/O failures instead of
    /// panicking. Write paths (ingest, checkpoint) use these `try_*` forms;
    /// the panicking forms remain for the read-hot query paths whose
    /// signatures predate live writes.
    fn try_allocate(&self) -> SgResult<PageId> {
        Ok(self.allocate())
    }

    /// Fallible [`PageStore::free`].
    fn try_free(&self, id: PageId) -> SgResult<()> {
        self.free(id);
        Ok(())
    }

    /// Fallible [`PageStore::read`].
    fn try_read(&self, id: PageId, buf: &mut [u8]) -> SgResult<()> {
        self.read(id, buf);
        Ok(())
    }

    /// Fallible [`PageStore::write`].
    fn try_write(&self, id: PageId, buf: &[u8]) -> SgResult<()> {
        self.write(id, buf);
        Ok(())
    }

    /// Forces written pages to stable storage. In-memory stores are a
    /// no-op; file stores `fsync`.
    fn sync(&self) -> SgResult<()> {
        Ok(())
    }
}

struct MemStoreInner {
    pages: Vec<Option<Box<[u8]>>>,
    free_list: Vec<PageId>,
}

/// An in-memory [`PageStore`]. Used by unit tests and by experiments that
/// measure page *counts* rather than physical latency.
pub struct MemStore {
    page_size: usize,
    inner: Mutex<MemStoreInner>,
}

impl MemStore {
    /// Creates an empty store with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0);
        MemStore {
            page_size,
            inner: Mutex::new(MemStoreInner {
                pages: Vec::new(),
                free_list: Vec::new(),
            }),
        }
    }
}

impl PageStore for MemStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self) -> PageId {
        let mut inner = self.inner.lock();
        if let Some(id) = inner.free_list.pop() {
            inner.pages[id as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            id
        } else {
            let id = inner.pages.len() as PageId;
            inner
                .pages
                .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
            id
        }
    }

    fn free(&self, id: PageId) {
        let mut inner = self.inner.lock();
        let slot = inner
            .pages
            .get_mut(id as usize)
            .unwrap_or_else(|| panic!("free of unallocated page {id}"));
        assert!(slot.is_some(), "double free of page {id}");
        *slot = None;
        inner.free_list.push(id);
    }

    fn read(&self, id: PageId, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size);
        let inner = self.inner.lock();
        let page = inner
            .pages
            .get(id as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("read of unallocated page {id}"));
        buf.copy_from_slice(page);
    }

    fn write(&self, id: PageId, buf: &[u8]) {
        assert_eq!(buf.len(), self.page_size);
        let mut inner = self.inner.lock();
        let page = inner
            .pages
            .get_mut(id as usize)
            .and_then(|p| p.as_mut())
            .unwrap_or_else(|| panic!("write of unallocated page {id}"));
        page.copy_from_slice(buf);
    }

    fn allocated_pages(&self) -> u64 {
        let inner = self.inner.lock();
        (inner.pages.len() - inner.free_list.len()) as u64
    }
}

struct FileStoreInner {
    next_id: PageId,
    free_list: Vec<PageId>,
}

/// A file-backed [`PageStore`]: page `i` occupies bytes
/// `[i * page_size, (i+1) * page_size)` of the file.
///
/// The free list is kept in memory only — adequate for an experiment
/// substrate; a production system would persist it in a header page.
pub struct FileStore {
    file: File,
    page_size: usize,
    inner: Mutex<FileStoreInner>,
}

impl FileStore {
    /// Creates (truncating) a page file at `path`.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> io::Result<Self> {
        assert!(page_size > 0);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore {
            file,
            page_size,
            inner: Mutex::new(FileStoreInner {
                next_id: 0,
                free_list: Vec::new(),
            }),
        })
    }

    /// Opens an existing page file, treating every whole page in it as
    /// allocated.
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> io::Result<Self> {
        assert!(page_size > 0);
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileStore {
            file,
            page_size,
            inner: Mutex::new(FileStoreInner {
                next_id: len / page_size as u64,
                free_list: Vec::new(),
            }),
        })
    }

    #[inline]
    fn offset(&self, id: PageId) -> u64 {
        id * self.page_size as u64
    }
}

impl PageStore for FileStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self) -> PageId {
        self.try_allocate()
            .unwrap_or_else(|e| panic!("allocate page: {e}"))
    }

    fn free(&self, id: PageId) {
        let mut inner = self.inner.lock();
        debug_assert!(id < inner.next_id, "free of unallocated page {id}");
        inner.free_list.push(id);
    }

    fn read(&self, id: PageId, buf: &mut [u8]) {
        self.try_read(id, buf)
            .unwrap_or_else(|e| panic!("read page {id}: {e}"));
    }

    fn write(&self, id: PageId, buf: &[u8]) {
        self.try_write(id, buf)
            .unwrap_or_else(|e| panic!("write page {id}: {e}"));
    }

    fn allocated_pages(&self) -> u64 {
        let inner = self.inner.lock();
        inner.next_id - inner.free_list.len() as u64
    }

    fn try_allocate(&self) -> SgResult<PageId> {
        let mut inner = self.inner.lock();
        if let Some(id) = inner.free_list.pop() {
            Ok(id)
        } else {
            let id = inner.next_id;
            // Extend the file with a zeroed page so reads of fresh pages
            // are well-defined. Only bump next_id once the extension
            // succeeded, so a failed allocation leaves the store unchanged.
            let zeroes = vec![0u8; self.page_size];
            self.file
                .write_all_at(&zeroes, self.offset(id))
                .map_err(|e| SgError::io(format!("extend page file to page {id}"), e))?;
            inner.next_id += 1;
            Ok(id)
        }
    }

    fn try_read(&self, id: PageId, buf: &mut [u8]) -> SgResult<()> {
        assert_eq!(buf.len(), self.page_size);
        self.file
            .read_exact_at(buf, self.offset(id))
            .map_err(|e| SgError::io(format!("read page {id}"), e))
    }

    fn try_write(&self, id: PageId, buf: &[u8]) -> SgResult<()> {
        assert_eq!(buf.len(), self.page_size);
        self.file
            .write_all_at(buf, self.offset(id))
            .map_err(|e| SgError::io(format!("write page {id}"), e))
    }

    fn sync(&self) -> SgResult<()> {
        self.file
            .sync_data()
            .map_err(|e| SgError::io("sync page file", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn PageStore) {
        let ps = store.page_size();
        let a = store.allocate();
        let b = store.allocate();
        assert_ne!(a, b);
        assert_eq!(store.allocated_pages(), 2);

        let mut page = vec![0u8; ps];
        page[0] = 0xAB;
        page[ps - 1] = 0xCD;
        store.write(a, &page);

        let mut out = vec![0u8; ps];
        store.read(a, &mut out);
        assert_eq!(out, page);

        // b is zeroed on allocation.
        store.read(b, &mut out);
        assert!(out.iter().all(|&x| x == 0));

        // Freed ids are recycled.
        store.free(a);
        assert_eq!(store.allocated_pages(), 1);
        let c = store.allocate();
        assert_eq!(c, a);
        assert_eq!(store.allocated_pages(), 2);
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise(&MemStore::new(128));
    }

    #[test]
    fn file_store_roundtrip() {
        let path = std::env::temp_dir().join(format!(
            "sg-pager-test-{}-{:?}.pages",
            std::process::id(),
            std::thread::current().id()
        ));
        let store = FileStore::create(&path, 128).unwrap();
        exercise(&store);
        drop(store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_reopen_preserves_pages() {
        let path = std::env::temp_dir().join(format!(
            "sg-pager-reopen-{}-{:?}.pages",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let store = FileStore::create(&path, 64).unwrap();
            let id = store.allocate();
            let mut page = vec![7u8; 64];
            page[63] = 9;
            store.write(id, &page);
        }
        {
            let store = FileStore::open(&path, 64).unwrap();
            assert_eq!(store.allocated_pages(), 1);
            let mut out = vec![0u8; 64];
            store.read(0, &mut out);
            assert_eq!(out[0], 7);
            assert_eq!(out[63], 9);
            // New allocations continue past existing pages.
            assert_eq!(store.allocate(), 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_store_reallocated_page_is_zeroed() {
        let store = MemStore::new(32);
        let a = store.allocate();
        store.write(a, &[1u8; 32]);
        store.free(a);
        let b = store.allocate();
        assert_eq!(a, b);
        let mut out = [9u8; 32];
        store.read(b, &mut out);
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn mem_store_double_free_panics() {
        let store = MemStore::new(32);
        let a = store.allocate();
        store.free(a);
        store.free(a);
    }
}
