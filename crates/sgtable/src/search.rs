//! Similarity search on the SG-table: bucket lower bounds, ordered bucket
//! scans, and the stop condition of Aggarwal et al.
//!
//! For a bucket with activation code `b` and a query with `qᵢ = |q ∩ sᵢ|`
//! items in vertical signature `sᵢ`, every transaction `t` in the bucket
//! satisfies `|t ∩ sᵢ| ≥ θ` when `bᵢ = 1` and `≤ θ − 1` when `bᵢ = 0`,
//! so its Hamming distance to `q` is at least
//!
//! ```text
//! LB(b) = Σᵢ  bᵢ=1:  max(0, θ − qᵢ)      (t has ≥ θ−qᵢ items q lacks)
//!             bᵢ=0:  max(0, qᵢ − θ + 1)  (q has ≥ qᵢ−θ+1 items t lacks)
//! ```
//!
//! (the vertical signatures are disjoint item groups, so the per-group
//! deficits add up). Buckets are scanned in ascending `LB`; once `LB`
//! reaches the running k-th-nearest distance "the search stops, since none
//! of the remaining entries may point to a closer transaction".
//!
//! The bounds are specific to the **Hamming distance**, the metric the
//! SG-table was designed for; the search functions assert it.

use crate::SgTable;
use sg_sig::{Metric, MetricKind, Signature};
use sg_tree::{Neighbor, QueryStats};
use std::collections::BinaryHeap;

impl SgTable {
    /// Per-group query overlaps `qᵢ`.
    fn overlaps(&self, q: &Signature) -> Vec<u32> {
        self.vertical.iter().map(|v| q.and_count(v)).collect()
    }

    /// The optimistic Hamming lower bound for a bucket code.
    pub fn lower_bound(&self, code: u32, overlaps: &[u32]) -> u32 {
        let theta = self.activation;
        let mut lb = 0u32;
        for (i, &qi) in overlaps.iter().enumerate() {
            if code >> i & 1 == 1 {
                lb += theta.saturating_sub(qi);
            } else {
                lb += (qi + 1).saturating_sub(theta);
            }
        }
        lb
    }

    /// Buckets in ascending lower-bound order.
    fn ordered_codes(&self, overlaps: &[u32]) -> Vec<(u32, u32)> {
        let mut order: Vec<(u32, u32)> = self
            .buckets
            .keys()
            .map(|&code| (self.lower_bound(code, overlaps), code))
            .collect();
        order.sort_unstable();
        order
    }

    /// Nearest-neighbor query (Hamming). Returns at most one hit.
    pub fn nn(&self, q: &Signature, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.knn(q, 1, metric)
    }

    /// `k`-NN query (Hamming), sorted ascending (ties by tid).
    ///
    /// # Panics
    ///
    /// Panics if `metric` is not plain Hamming — the table's bounds are not
    /// valid for other metrics.
    pub fn knn(&self, q: &Signature, k: usize, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        assert_eq!(
            (metric.kind(), metric.fixed_dim()),
            (MetricKind::Hamming, None),
            "the SG-table supports only the Hamming metric"
        );
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let io_before = self.pool.stats().snapshot();
        let mut stats = QueryStats::default();
        let mut out: Vec<Neighbor> = Vec::new();
        if k > 0 && !self.is_empty() {
            let overlaps = self.overlaps(q);
            // Max-heap of the k best (worst on top).
            let mut heap: BinaryHeap<(u64, u64)> = BinaryHeap::with_capacity(k + 1);
            for (lb, code) in self.ordered_codes(&overlaps) {
                stats.dist_computations += 1;
                if heap.len() == k && u64::from(lb) >= heap.peek().expect("nonempty").0 {
                    break;
                }
                let bucket = &self.buckets[&code];
                self.scan_bucket(bucket, &mut stats, |tid, sig| {
                    let d = u64::from(q.hamming(sig));
                    if heap.len() < k || d < heap.peek().expect("nonempty").0 {
                        heap.push((d, tid));
                        if heap.len() > k {
                            heap.pop();
                        }
                    }
                });
            }
            out = heap
                .into_sorted_vec()
                .into_iter()
                .map(|(d, tid)| Neighbor {
                    tid,
                    dist: d as f64,
                })
                .collect();
            out.sort_by(|a, b| {
                a.dist
                    .partial_cmp(&b.dist)
                    .expect("finite")
                    .then(a.tid.cmp(&b.tid))
            });
        }
        stats.dist_computations += stats.data_compared;
        stats.io = self.pool.stats().snapshot().since(&io_before);
        self.observe(&stats, start);
        (out, stats)
    }

    /// Similarity range query (Hamming): everything within `eps`
    /// (inclusive), sorted ascending.
    pub fn range(&self, q: &Signature, eps: f64, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        assert_eq!(
            (metric.kind(), metric.fixed_dim()),
            (MetricKind::Hamming, None),
            "the SG-table supports only the Hamming metric"
        );
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let io_before = self.pool.stats().snapshot();
        let mut stats = QueryStats::default();
        let mut out: Vec<Neighbor> = Vec::new();
        let overlaps = self.overlaps(q);
        for (lb, code) in self.ordered_codes(&overlaps) {
            stats.dist_computations += 1;
            if f64::from(lb) > eps {
                break;
            }
            let bucket = &self.buckets[&code];
            self.scan_bucket(bucket, &mut stats, |tid, sig| {
                let d = f64::from(q.hamming(sig));
                if d <= eps {
                    out.push(Neighbor { tid, dist: d });
                }
            });
        }
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite")
                .then(a.tid.cmp(&b.tid))
        });
        stats.dist_computations += stats.data_compared;
        stats.io = self.pool.stats().snapshot().since(&io_before);
        self.observe(&stats, start);
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableParams;
    use sg_pager::MemStore;
    use sg_tree::Tid;
    use std::sync::Arc;

    const NBITS: u32 = 100;

    fn make_data(n: u64) -> Vec<(Tid, Signature)> {
        let mut out = Vec::with_capacity(n as usize);
        let mut x = 0x9E3779B97F4A7C15u64;
        for tid in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let cluster = (x >> 60) as u32 % 4;
            let len = 3 + ((x >> 33) % 4) as usize;
            let mut items = Vec::with_capacity(len);
            let mut y = x;
            for _ in 0..len {
                y = y.wrapping_mul(6364136223846793005).wrapping_add(17);
                items.push(cluster * 25 + ((y >> 40) % 25) as u32);
            }
            out.push((tid, Signature::from_items(NBITS, &items)));
        }
        out
    }

    fn table_of(data: &[(Tid, Signature)]) -> SgTable {
        let params = TableParams {
            k_signatures: 6,
            activation: 2,
            critical_mass: 0.4,
            pool_frames: 64,
        };
        SgTable::build(Arc::new(MemStore::new(512)), NBITS, &params, data)
    }

    fn queries() -> Vec<Signature> {
        let mut out = Vec::new();
        let mut x = 0xDEADBEEFCAFEBABEu64;
        for _ in 0..20 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
            let len = 2 + ((x >> 33) % 4) as usize;
            let mut items = Vec::with_capacity(len);
            let mut y = x;
            for _ in 0..len {
                y = y.wrapping_mul(6364136223846793005).wrapping_add(5);
                items.push(((y >> 40) % NBITS as u64) as u32);
            }
            out.push(Signature::from_items(NBITS, &items));
        }
        out
    }

    fn brute_knn(data: &[(Tid, Signature)], q: &Signature, k: usize) -> Vec<f64> {
        let mut d: Vec<(f64, Tid)> = data
            .iter()
            .map(|(tid, s)| (f64::from(q.hamming(s)), *tid))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.into_iter().take(k).map(|(d, _)| d).collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let data = make_data(300);
        let table = table_of(&data);
        let m = Metric::hamming();
        for q in queries() {
            for k in [1usize, 5, 20] {
                let (got, _) = table.knn(&q, k, &m);
                let want = brute_knn(&data, &q, k);
                let got_d: Vec<f64> = got.iter().map(|n| n.dist).collect();
                assert_eq!(got_d, want, "k={k}");
            }
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let data = make_data(300);
        let table = table_of(&data);
        let m = Metric::hamming();
        for q in queries().into_iter().take(8) {
            for eps in [0.0, 3.0, 8.0] {
                let (got, _) = table.range(&q, eps, &m);
                let want = data
                    .iter()
                    .filter(|(_, s)| f64::from(q.hamming(s)) <= eps)
                    .count();
                assert_eq!(got.len(), want, "eps={eps}");
                assert!(got.iter().all(|n| n.dist <= eps));
            }
        }
    }

    #[test]
    fn search_prunes_buckets() {
        let data = make_data(2000);
        let table = table_of(&data);
        let m = Metric::hamming();
        let mut compared = 0u64;
        let qs: Vec<Signature> = data.iter().take(10).map(|(_, s)| s.clone()).collect();
        for q in &qs {
            let (hits, stats) = table.knn(q, 1, &m);
            assert_eq!(hits[0].dist, 0.0, "query is an indexed transaction");
            compared += stats.data_compared;
        }
        let frac = compared as f64 / (2000.0 * qs.len() as f64);
        assert!(frac < 0.9, "bucket ordering should prune: {frac:.2}");
    }

    #[test]
    fn lower_bound_is_valid() {
        let data = make_data(400);
        let table = table_of(&data);
        for q in queries().into_iter().take(8) {
            let overlaps: Vec<u32> = table
                .vertical_signatures()
                .iter()
                .map(|v| q.and_count(v))
                .collect();
            let codes: Vec<u32> = table.buckets.keys().copied().collect();
            for code in codes {
                let lb = table.lower_bound(code, &overlaps);
                let bucket = table.buckets[&code].clone();
                let mut stats = QueryStats::default();
                table.scan_bucket(&bucket, &mut stats, |_, sig| {
                    assert!(
                        q.hamming(sig) >= lb,
                        "bucket {code:#b}: lb {lb} > dist {}",
                        q.hamming(sig)
                    );
                });
            }
        }
    }

    #[test]
    #[should_panic(expected = "only the Hamming metric")]
    fn non_hamming_metric_rejected() {
        let data = make_data(20);
        let table = table_of(&data);
        let _ = table.knn(&data[0].1, 1, &Metric::jaccard());
    }

    #[test]
    fn empty_table_queries() {
        let table = SgTable::build(
            Arc::new(MemStore::new(512)),
            NBITS,
            &TableParams::default(),
            &[],
        );
        let q = Signature::from_items(NBITS, &[1]);
        assert!(table.nn(&q, &Metric::hamming()).0.is_empty());
        assert!(table.range(&q, 5.0, &Metric::hamming()).0.is_empty());
    }

    #[test]
    fn registered_obs_records_queries() {
        let data = make_data(200);
        let mut table = table_of(&data);
        let registry = sg_obs::Registry::new();
        table.register_obs(&registry, "sg_table");
        let io0 = table.pool().stats().snapshot();
        let q = &queries()[0];
        let (_, s1) = table.knn(q, 5, &Metric::hamming());
        let (_, s2) = table.range(q, 4.0, &Metric::hamming());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sg_table.queries"), 2);
        assert_eq!(
            snap.counter("sg_table.nodes_accessed"),
            s1.nodes_accessed + s2.nodes_accessed
        );
        assert_eq!(
            snap.counter("sg_table.data_compared"),
            s1.data_compared + s2.data_compared
        );
        // The pool mirror agrees with the pool's own statistics.
        let io = table.pool().stats().snapshot().since(&io0);
        assert_eq!(
            snap.counter("sg_table.pool.hits") + snap.counter("sg_table.pool.misses"),
            io.logical_reads
        );
    }
}
