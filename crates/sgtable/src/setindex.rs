//! [`SetIndex`] implementation: the SG-table through the unified query
//! API, so differential tests and benches drive it as a `dyn SetIndex`
//! alongside the tree and the other baselines.

use crate::SgTable;
use sg_sig::{Metric, MetricKind, Signature};
use sg_tree::{
    QueryOptions, QueryOutput, QueryRequest, QueryResponse, SetIndex, SgError, SgResult, Tid,
};

/// The table's distance bounds hold only for plain Hamming.
fn plain_hamming(metric: &Metric) -> bool {
    (metric.kind(), metric.fixed_dim()) == (MetricKind::Hamming, None)
}

fn check_nbits(expected: u32, q: &Signature) -> SgResult<()> {
    if q.nbits() != expected {
        return Err(SgError::invalid(format!(
            "query signature has {} bits; index expects {}",
            q.nbits(),
            expected
        )));
    }
    Ok(())
}

impl SetIndex for SgTable {
    fn name(&self) -> &'static str {
        "sg-table"
    }

    fn len(&self) -> u64 {
        SgTable::len(self)
    }

    fn nbits(&self) -> u32 {
        SgTable::nbits(self)
    }

    fn insert(&mut self, tid: Tid, sig: &Signature) -> SgResult<()> {
        check_nbits(SgTable::nbits(self), sig)?;
        SgTable::insert(self, tid, sig);
        Ok(())
    }

    fn delete(&mut self, _tid: Tid, _sig: &Signature) -> SgResult<bool> {
        Err(SgError::Unsupported(
            "delete on the append-only SG-table (rebuild instead)",
        ))
    }

    fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse> {
        check_nbits(SgTable::nbits(self), req.signature())?;
        if opts.expired() {
            return Err(SgError::Cancelled);
        }
        let (output, stats) = match req {
            QueryRequest::Knn { q, k, metric } => {
                if !plain_hamming(metric) {
                    return Err(SgError::Unsupported(
                        "the SG-table supports only the plain Hamming metric",
                    ));
                }
                let (r, s) = self.knn(q, *k, metric);
                (QueryOutput::Neighbors(r), s)
            }
            QueryRequest::Range { q, eps, metric } => {
                if !plain_hamming(metric) {
                    return Err(SgError::Unsupported(
                        "the SG-table supports only the plain Hamming metric",
                    ));
                }
                let (r, s) = self.range(q, *eps, metric);
                (QueryOutput::Neighbors(r), s)
            }
            QueryRequest::Containing { .. }
            | QueryRequest::ContainedIn { .. }
            | QueryRequest::Exact { .. } => {
                return Err(SgError::Unsupported(
                    "containment queries on the SG-table (similarity-only baseline)",
                ));
            }
        };
        Ok(QueryResponse::single(output, stats))
    }
}
