//! # The signature table (SG-table)
//!
//! The hash-based similarity index of Aggarwal, Wolf & Yu (*A New Method
//! for Similarity Indexing of Market Basket Data*, SIGMOD 1999) — the
//! baseline the SG-tree paper compares against (its §2.2.1).
//!
//! Construction (static, two steps):
//!
//! 1. **Item clustering.** A minimum-spanning-tree-style agglomerative
//!    clustering groups the items by co-occurrence frequency: item pairs
//!    are merged in descending co-occurrence order. Clusters whose total
//!    support exceeds the **critical mass** are frozen before they grow
//!    larger, keeping cluster activity balanced. The item sets of the `K`
//!    heaviest resulting clusters become the *vertical signatures*.
//! 2. **Hashing.** A transaction *activates* vertical signature `sᵢ` when
//!    it shares at least `θ` items with it (the **activation threshold**).
//!    The activation bit pattern is the transaction's hash code; all
//!    transactions with the same code land in the same bucket, stored as
//!    packed pages on disk. The table of codes is memory-resident.
//!
//! Search computes, per table entry, an optimistic lower bound on the
//! Hamming distance between the query and any transaction in the bucket
//! (from the `≥ θ` / `< θ` group-overlap guarantees), scans buckets in
//! ascending bound order, and stops when the bound reaches the current
//! best distance.
//!
//! The paper's critique, which the experiments in this workspace
//! reproduce: the SG-table needs its parameters (`K`, critical mass, `θ`)
//! tuned a priori, requires an expensive preprocessing pass over static
//! data, and degrades under distribution drift because the vertical
//! signatures are never re-derived ([`SgTable::insert`] hashes new data
//! with the stale signatures, exactly as Figure 17's experiment assumes).

mod build;
mod search;
mod setindex;

pub use build::{cluster_items, ClusterInfo};

use sg_obs::{IndexObs, PoolObs, Registry};
use sg_pager::{BufferPool, PageId, PageStore};
use sg_sig::{codec, Signature};
use sg_tree::{QueryStats, Tid};
use std::collections::HashMap;
use std::sync::Arc;

/// Construction parameters.
#[derive(Debug, Clone)]
pub struct TableParams {
    /// Number of vertical signatures `K`; the table has up to `2^K`
    /// entries. Aggarwal et al. use small values (the worked example in
    /// the SG-tree paper uses 3); 8–12 works well for the paper's
    /// workloads.
    pub k_signatures: usize,
    /// Activation threshold `θ`: minimum shared items for a transaction to
    /// activate a vertical signature (the example uses 2).
    pub activation: u32,
    /// Critical mass as a fraction of the dataset's total item support; a
    /// cluster whose members' summed support exceeds it is frozen.
    pub critical_mass: f64,
    /// Buffer-pool frames for bucket-page access.
    pub pool_frames: usize,
}

impl Default for TableParams {
    fn default() -> Self {
        TableParams {
            k_signatures: 10,
            activation: 2,
            critical_mass: 0.15,
            pool_frames: 256,
        }
    }
}

/// One hash bucket: its packed data pages.
#[derive(Debug, Default, Clone)]
pub(crate) struct Bucket {
    pub pages: Vec<PageId>,
    pub count: u64,
    /// Bytes used on the last page (for appends).
    pub tail_used: usize,
}

/// Header per bucket page: record count (u16).
pub(crate) const PAGE_HEADER: usize = 2;

/// The signature table.
pub struct SgTable {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) nbits: u32,
    pub(crate) activation: u32,
    /// The `K` vertical signatures.
    pub(crate) vertical: Vec<Signature>,
    /// Activation code → bucket.
    pub(crate) buckets: HashMap<u32, Bucket>,
    pub(crate) len: u64,
    /// Optional metrics instruments.
    pub(crate) obs: Option<Arc<IndexObs>>,
}

impl SgTable {
    /// Builds the table from a static dataset: clusters the items, derives
    /// the vertical signatures, and hashes every transaction into bucket
    /// pages on `store`.
    ///
    /// # Panics
    ///
    /// Panics if `params.k_signatures` is 0 or exceeds 32 (codes are packed
    /// in a `u32`), or if signatures disagree on the universe.
    pub fn build(
        store: Arc<dyn PageStore>,
        nbits: u32,
        params: &TableParams,
        data: &[(Tid, Signature)],
    ) -> SgTable {
        assert!(
            (1..=32).contains(&params.k_signatures),
            "k_signatures must be in 1..=32"
        );
        let clusters = cluster_items(nbits, params, data.iter().map(|(_, s)| s));
        let vertical = clusters.vertical_signatures;
        let pool = Arc::new(BufferPool::new(store, params.pool_frames));
        let mut table = SgTable {
            pool,
            nbits,
            activation: params.activation,
            vertical,
            buckets: HashMap::new(),
            len: 0,
            obs: None,
        };
        for (tid, sig) in data {
            table.insert(*tid, sig);
        }
        table
    }

    /// The activation code of a signature under the current vertical
    /// signatures: bit `i` set iff `|t ∩ sᵢ| ≥ θ`.
    pub fn code_of(&self, sig: &Signature) -> u32 {
        let mut code = 0u32;
        for (i, v) in self.vertical.iter().enumerate() {
            if sig.and_count(v) >= self.activation {
                code |= 1 << i;
            }
        }
        code
    }

    /// Appends a transaction to its bucket. Uses the vertical signatures
    /// derived at build time — the table is *not* re-clustered, which is
    /// precisely its weakness under distribution drift (§5.5).
    pub fn insert(&mut self, tid: Tid, sig: &Signature) {
        assert_eq!(sig.nbits(), self.nbits, "signature universe mismatch");
        let code = self.code_of(sig);
        let page_size = self.pool.page_size();
        let mut record = Vec::with_capacity(16 + codec::encoded_len(sig));
        record.extend_from_slice(&tid.to_le_bytes());
        codec::encode(sig, &mut record);
        assert!(
            PAGE_HEADER + record.len() <= page_size,
            "record larger than a page"
        );
        let pool = &self.pool;
        let bucket = self.buckets.entry(code).or_default();
        let need_new_page = bucket.pages.is_empty() || bucket.tail_used + record.len() > page_size;
        if need_new_page {
            let id = pool.allocate();
            let mut page = vec![0u8; page_size];
            page[0..2].copy_from_slice(&1u16.to_le_bytes());
            page[PAGE_HEADER..PAGE_HEADER + record.len()].copy_from_slice(&record);
            pool.write(id, &page);
            bucket.pages.push(id);
            bucket.tail_used = PAGE_HEADER + record.len();
        } else {
            let tail = *bucket.pages.last().expect("nonempty");
            let mut page = pool.read(tail).to_vec();
            let count = u16::from_le_bytes([page[0], page[1]]) + 1;
            page[0..2].copy_from_slice(&count.to_le_bytes());
            page[bucket.tail_used..bucket.tail_used + record.len()].copy_from_slice(&record);
            pool.write(tail, &page);
            bucket.tail_used += record.len();
        }
        bucket.count += 1;
        self.len += 1;
    }

    /// Rebuilds the table in place: re-runs the item clustering over the
    /// *current* contents and re-hashes every transaction under the fresh
    /// vertical signatures — the "expensive periodic re-organization"
    /// §2.2.1 says a dynamic environment forces on the SG-table. Returns
    /// the number of transactions re-hashed.
    ///
    /// The old bucket pages are freed; the rebuild temporarily
    /// materializes the whole dataset in memory (as the original
    /// construction does).
    pub fn rebuild(&mut self, params: &TableParams) -> u64 {
        assert!(
            (1..=32).contains(&params.k_signatures),
            "k_signatures must be in 1..=32"
        );
        // Drain current contents.
        let mut data: Vec<(Tid, Signature)> = Vec::with_capacity(self.len as usize);
        let buckets = std::mem::take(&mut self.buckets);
        let mut scratch = sg_tree::QueryStats::default();
        for bucket in buckets.values() {
            self.scan_bucket(bucket, &mut scratch, |tid, sig| {
                data.push((tid, sig.clone()));
            });
            for &page in &bucket.pages {
                self.pool.free(page);
            }
        }
        // Re-cluster and re-hash.
        let clusters = cluster_items(self.nbits, params, data.iter().map(|(_, s)| s));
        self.vertical = clusters.vertical_signatures;
        self.activation = params.activation;
        self.len = 0;
        for (tid, sig) in &data {
            self.insert(*tid, sig);
        }
        self.len
    }

    /// Number of indexed transactions.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Size of the item universe the table was built for.
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The vertical signatures.
    pub fn vertical_signatures(&self) -> &[Signature] {
        &self.vertical
    }

    /// Number of non-empty table entries (materialized buckets).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total bucket pages on disk.
    pub fn page_count(&self) -> usize {
        self.buckets.values().map(|b| b.pages.len()).sum()
    }

    /// The buffer pool (I/O statistics, cache control).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Registers instruments under `<prefix>.*` / `<prefix>.pool.*` in
    /// `registry` and attaches them; queries record into them from then on.
    pub fn register_obs(&mut self, registry: &Registry, prefix: &str) -> Arc<IndexObs> {
        let obs = IndexObs::register(registry, prefix);
        self.pool
            .attach_obs(PoolObs::register(registry, &format!("{prefix}.pool")));
        self.obs = Some(obs.clone());
        obs
    }

    /// Records one finished query into the attached instruments, if any.
    pub(crate) fn observe(&self, stats: &QueryStats, start: Option<std::time::Instant>) {
        if let (Some(obs), Some(start)) = (self.obs.as_ref(), start) {
            obs.observe_query(
                stats.nodes_accessed,
                stats.data_compared,
                stats.dist_computations,
                stats.io.logical_reads,
                stats.io.physical_reads,
                start.elapsed().as_nanos() as u64,
            );
        }
    }

    /// Streams every record of one bucket through `visit`.
    pub(crate) fn scan_bucket(
        &self,
        bucket: &Bucket,
        stats: &mut QueryStats,
        mut visit: impl FnMut(Tid, &Signature),
    ) {
        for &pid in &bucket.pages {
            stats.nodes_accessed += 1;
            let page = self.pool.read(pid);
            let count = u16::from_le_bytes([page[0], page[1]]) as usize;
            let mut off = PAGE_HEADER;
            for _ in 0..count {
                let tid = Tid::from_le_bytes(page[off..off + 8].try_into().expect("page layout"));
                off += 8;
                let (sig, used) =
                    codec::decode(self.nbits, &page[off..]).expect("corrupt bucket page");
                off += used;
                stats.data_compared += 1;
                visit(tid, &sig);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_pager::MemStore;

    fn small_data() -> Vec<(Tid, Signature)> {
        // The paper's Figure 1 example: S = {a..g} = {0..6},
        // A = {a,e} = {0,4}, B = {c,d} = {2,3}, C = {b,f,g} = {1,5,6}.
        let t = |items: &[u32]| Signature::from_items(7, items);
        vec![
            (1, t(&[2, 3])),          // T1 = {c,d}
            (2, t(&[0, 1, 2])),       // T2 = {a,b,c}
            (3, t(&[0, 1, 4])),       // T3 = {a,b,e}
            (4, t(&[1, 3, 5, 6])),    // T4 = {b,d,f,g}
            (5, t(&[0, 1, 2, 3, 4])), // T5 = {a,b,c,d,e}
            (6, t(&[1, 4, 5])),       // T6 = {b,e,f}
        ]
    }

    #[test]
    fn build_hashes_all_transactions() {
        let data = small_data();
        let params = TableParams {
            k_signatures: 3,
            activation: 2,
            critical_mass: 1.0,
            pool_frames: 16,
        };
        let table = SgTable::build(Arc::new(MemStore::new(256)), 7, &params, &data);
        assert_eq!(table.len(), 6);
        assert_eq!(table.vertical_signatures().len(), 3);
        let total: u64 = table.buckets.values().map(|b| b.count).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn paper_figure1_activation_example() {
        // With the dictionary's exact grouping, T3 = {a,b,e} shares 2 items
        // with A = {a,e} and activates only A; T5 = {a,b,c,d,e} activates
        // A and B.
        let store = Arc::new(MemStore::new(256));
        let mut table = SgTable {
            pool: Arc::new(BufferPool::new(store, 4)),
            nbits: 7,
            activation: 2,
            vertical: vec![
                Signature::from_items(7, &[0, 4]),    // A = {a,e}
                Signature::from_items(7, &[2, 3]),    // B = {c,d}
                Signature::from_items(7, &[1, 5, 6]), // C = {b,f,g}
            ],
            buckets: HashMap::new(),
            len: 0,
            obs: None,
        };
        let t3 = Signature::from_items(7, &[0, 1, 4]);
        assert_eq!(table.code_of(&t3), 0b001);
        let t5 = Signature::from_items(7, &[0, 1, 2, 3, 4]);
        assert_eq!(table.code_of(&t5), 0b011);
        let t1 = Signature::from_items(7, &[2, 3]);
        assert_eq!(table.code_of(&t1), 0b010);
        let t4 = Signature::from_items(7, &[1, 3, 5, 6]);
        assert_eq!(table.code_of(&t4), 0b100);
        // Insert them and check bucket placement.
        for (tid, s) in [(3u64, &t3), (5, &t5), (1, &t1), (4, &t4)] {
            table.insert(tid, s);
        }
        assert_eq!(table.bucket_count(), 4);
        assert_eq!(table.buckets[&0b001].count, 1);
        assert_eq!(table.buckets[&0b011].count, 1);
    }

    #[test]
    fn records_span_pages_and_survive() {
        let store = Arc::new(MemStore::new(128));
        let params = TableParams {
            k_signatures: 2,
            activation: 1,
            critical_mass: 1.0,
            pool_frames: 4,
        };
        // All transactions share item 0 → same code → one bucket, many
        // pages.
        let data: Vec<(Tid, Signature)> = (0..50)
            .map(|tid| (tid, Signature::from_items(64, &[0, (tid % 60) as u32 + 1])))
            .collect();
        let table = SgTable::build(store, 64, &params, &data);
        assert!(table.page_count() > 1);
        let mut seen = Vec::new();
        let mut stats = QueryStats::default();
        for bucket in table.buckets.values() {
            table.scan_bucket(bucket, &mut stats, |tid, _| seen.push(tid));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
        assert_eq!(stats.data_compared, 50);
    }

    #[test]
    fn rebuild_preserves_contents_and_rehashes() {
        let data = small_data();
        let params = TableParams {
            k_signatures: 3,
            activation: 2,
            critical_mass: 1.0,
            pool_frames: 16,
        };
        let mut table = SgTable::build(Arc::new(MemStore::new(256)), 7, &params, &data);
        let before: Vec<Signature> = table.vertical_signatures().to_vec();
        let n = table.rebuild(&TableParams {
            k_signatures: 2,
            ..params.clone()
        });
        assert_eq!(n, 6);
        assert_eq!(table.len(), 6);
        assert!(table.vertical_signatures().len() <= 2);
        assert_ne!(table.vertical_signatures(), &before[..]);
        // Every transaction still present.
        let mut seen = Vec::new();
        let mut stats = sg_tree::QueryStats::default();
        let buckets: Vec<Bucket> = table.buckets.values().cloned().collect();
        for bucket in &buckets {
            table.scan_bucket(bucket, &mut stats, |tid, _| seen.push(tid));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn rebuild_restores_search_exactness_after_drift() {
        // Insert drifted data, rebuild, and check k-NN is still exact and
        // the fresh signatures differ (they absorbed the new items).
        let params = TableParams {
            k_signatures: 4,
            activation: 2,
            critical_mass: 0.5,
            pool_frames: 32,
        };
        let base: Vec<(Tid, Signature)> = (0..40)
            .map(|tid| {
                (
                    tid,
                    Signature::from_items(64, &[(tid % 8) as u32, (tid % 8 + 8) as u32]),
                )
            })
            .collect();
        let mut table = SgTable::build(Arc::new(MemStore::new(256)), 64, &params, &base);
        let mut all = base;
        for tid in 40..80u64 {
            let sig = Signature::from_items(64, &[(tid % 8 + 40) as u32, (tid % 8 + 52) as u32]);
            table.insert(tid, &sig);
            all.push((tid, sig));
        }
        table.rebuild(&params);
        let m = sg_sig::Metric::hamming();
        for (_, q) in all.iter().step_by(13) {
            let (got, _) = table.knn(q, 3, &m);
            let mut want: Vec<f64> = all.iter().map(|(_, s)| m.dist(q, s)).collect();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let gd: Vec<f64> = got.iter().map(|n| n.dist).collect();
            assert_eq!(gd, want[..3].to_vec());
        }
    }

    #[test]
    #[should_panic(expected = "k_signatures")]
    fn zero_signatures_rejected() {
        let params = TableParams {
            k_signatures: 0,
            ..TableParams::default()
        };
        SgTable::build(Arc::new(MemStore::new(256)), 7, &params, &small_data());
    }
}
