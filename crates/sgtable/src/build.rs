//! Vertical-signature construction: MST-style item clustering with the
//! critical-mass guard.

use crate::TableParams;
use sg_sig::Signature;

/// Result of the item-clustering phase.
#[derive(Debug, Clone)]
pub struct ClusterInfo {
    /// The item sets of the `K` heaviest clusters, as signatures.
    pub vertical_signatures: Vec<Signature>,
    /// Total support (sum over items of their transaction counts).
    pub total_support: u64,
    /// How many clusters were frozen by the critical-mass rule.
    pub frozen: usize,
}

/// Union-find over item ids with per-root support sums and frozen flags.
struct Clusters {
    parent: Vec<u32>,
    support: Vec<u64>,
    frozen: Vec<bool>,
    size: Vec<u32>,
}

impl Clusters {
    fn new(supports: &[u64]) -> Self {
        Clusters {
            parent: (0..supports.len() as u32).collect(),
            support: supports.to_vec(),
            frozen: vec![false; supports.len()],
            size: vec![1; supports.len()],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        debug_assert_ne!(ra, rb);
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.support[big as usize] += self.support[small as usize];
        self.size[big as usize] += self.size[small as usize];
        big
    }
}

/// Runs the clustering of §2.2.1 / SIGMOD'99:
///
/// 1. count item supports and pairwise co-occurrences;
/// 2. merge item pairs in descending co-occurrence order (a minimum
///    spanning tree on the co-occurrence graph), skipping pairs whose
///    clusters are frozen;
/// 3. freeze a cluster once its summed support exceeds
///    `critical_mass × total_support` ("removed before they grow larger");
/// 4. stop when `K` populated clusters remain (or sooner if no mergeable
///    pair is left);
/// 5. the `K` heaviest clusters become the vertical signatures.
pub fn cluster_items<'a>(
    nbits: u32,
    params: &TableParams,
    data: impl Iterator<Item = &'a Signature>,
) -> ClusterInfo {
    let n = nbits as usize;
    let mut supports = vec![0u64; n];
    // Dense upper-triangular co-occurrence counts: pair (i < j) at
    // `i*n + j`. ~4·N² bytes — fine for the paper's universes (≤ few
    // thousand items).
    let mut co = vec![0u32; n * n];
    let mut items_buf: Vec<u32> = Vec::new();
    for sig in data {
        assert_eq!(sig.nbits(), nbits, "signature universe mismatch");
        items_buf.clear();
        items_buf.extend(sig.ones());
        for (a, &i) in items_buf.iter().enumerate() {
            supports[i as usize] += 1;
            for &j in &items_buf[a + 1..] {
                co[i as usize * n + j as usize] += 1;
            }
        }
    }
    let total_support: u64 = supports.iter().sum();
    let critical = (params.critical_mass * total_support as f64) as u64;

    // Candidate edges, heaviest first.
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let w = co[i * n + j];
            if w > 0 {
                edges.push((w, i as u32, j as u32));
            }
        }
    }
    edges.sort_unstable_by(|a, b| b.cmp(a));

    let mut clusters = Clusters::new(&supports);
    let mut n_clusters = supports.iter().filter(|&&s| s > 0).count();
    let mut frozen_count = 0usize;
    for (_, i, j) in edges {
        if n_clusters <= params.k_signatures {
            break;
        }
        let (ri, rj) = (clusters.find(i), clusters.find(j));
        if ri == rj || clusters.frozen[ri as usize] || clusters.frozen[rj as usize] {
            continue;
        }
        let merged = clusters.union(ri, rj);
        n_clusters -= 1;
        if critical > 0 && clusters.support[merged as usize] > critical {
            clusters.frozen[merged as usize] = true;
            frozen_count += 1;
        }
    }

    // Materialize clusters and keep the K heaviest.
    let mut members: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for item in 0..n as u32 {
        if supports[item as usize] > 0 {
            members.entry(clusters.find(item)).or_default().push(item);
        }
    }
    let mut ranked: Vec<(u64, Vec<u32>)> = members
        .into_iter()
        .map(|(root, items)| (clusters.support[root as usize], items))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let vertical_signatures = ranked
        .into_iter()
        .take(params.k_signatures)
        .map(|(_, items)| Signature::from_items(nbits, &items))
        .collect();
    ClusterInfo {
        vertical_signatures,
        total_support,
        frozen: frozen_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(k: usize, cm: f64) -> TableParams {
        TableParams {
            k_signatures: k,
            activation: 2,
            critical_mass: cm,
            pool_frames: 4,
        }
    }

    fn sig(items: &[u32]) -> Signature {
        Signature::from_items(16, items)
    }

    #[test]
    fn correlated_items_cluster_together() {
        // Items {0,1} always co-occur; {8,9} always co-occur; never across.
        let data: Vec<Signature> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    sig(&[0, 1])
                } else {
                    sig(&[8, 9])
                }
            })
            .collect();
        let info = cluster_items(16, &params(2, 1.0), data.iter());
        assert_eq!(info.vertical_signatures.len(), 2);
        let sets: Vec<Vec<u32>> = info.vertical_signatures.iter().map(|s| s.items()).collect();
        assert!(sets.contains(&vec![0, 1]), "{sets:?}");
        assert!(sets.contains(&vec![8, 9]), "{sets:?}");
    }

    #[test]
    fn critical_mass_freezes_heavy_clusters() {
        // Items 0..4 co-occur in every transaction (huge support); items
        // 8..10 co-occur rarely. A small critical mass must stop the heavy
        // cluster from swallowing everything.
        let mut data: Vec<Signature> = (0..50).map(|_| sig(&[0, 1, 2, 3])).collect();
        data.extend((0..5).map(|_| sig(&[0, 8, 9])));
        let info = cluster_items(16, &params(3, 0.3), data.iter());
        assert!(info.frozen >= 1, "heavy cluster should freeze");
        // Item 8 and 9 should still pair up with each other, not be pulled
        // into the frozen heavy cluster via their co-occurrence with 0.
        let with_8: Vec<u32> = info
            .vertical_signatures
            .iter()
            .find(|s| s.get(8))
            .expect("cluster containing 8")
            .items();
        assert!(
            !with_8.contains(&0),
            "8 pulled into frozen cluster: {with_8:?}"
        );
    }

    #[test]
    fn k_limits_signature_count() {
        let data: Vec<Signature> = (0..12u32).map(|i| sig(&[i, (i + 1) % 12])).collect();
        for k in [1usize, 3, 5] {
            let info = cluster_items(16, &params(k, 1.0), data.iter());
            assert!(info.vertical_signatures.len() <= k);
            assert!(!info.vertical_signatures.is_empty());
        }
    }

    #[test]
    fn unused_items_excluded() {
        let data = [sig(&[1, 2]), sig(&[1, 2]), sig(&[5, 6])];
        let info = cluster_items(16, &params(4, 1.0), data.iter());
        for s in &info.vertical_signatures {
            for item in s.items() {
                assert!([1, 2, 5, 6].contains(&item), "item {item} has no support");
            }
        }
        assert_eq!(info.total_support, 6);
    }

    #[test]
    fn empty_dataset_yields_no_signatures() {
        let info = cluster_items(16, &params(3, 1.0), std::iter::empty());
        assert!(info.vertical_signatures.is_empty());
        assert_eq!(info.total_support, 0);
    }
}
