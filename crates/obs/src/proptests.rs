//! Property tests for snapshot merge semantics (merging two recorders'
//! snapshots must equal one recorder that observed the union), for
//! Prometheus text-format conformance, and for the flight recorder's
//! ring buffer.

use proptest::prelude::*;

use crate::export::textparse::{self, Line};
use crate::export::{escape_label_value, to_prometheus};
use crate::metrics::{Histogram, Registry};
use crate::span::{RawRecord, SpanData, ThreadRing, MAX_ATTRS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(0u64..=1_000_000, 0..200),
        b in prop::collection::vec(0u64..=1_000_000, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hu.snapshot());
    }

    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..=1_000_000, 0..100),
        b in prop::collection::vec(0u64..=1_000_000, 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let mut ab = ha.snapshot();
        ab.merge(&hb.snapshot());
        let mut ba = hb.snapshot();
        ba.merge(&ha.snapshot());
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn registry_merge_equals_union(
        counts_a in prop::collection::vec(0u64..1000, 3),
        counts_b in prop::collection::vec(0u64..1000, 3),
        lat_a in prop::collection::vec(0u64..100_000, 0..50),
        lat_b in prop::collection::vec(0u64..100_000, 0..50),
    ) {
        let names = ["x.n", "y.n", "z.n"];
        let build = |counts: &[u64], lats: &[u64]| {
            let r = Registry::new();
            for (name, &c) in names.iter().zip(counts) {
                r.counter(name).add(c);
            }
            let h = r.histogram("x.lat");
            for &v in lats {
                h.record(v);
            }
            r
        };
        let ra = build(&counts_a, &lat_a);
        let rb = build(&counts_b, &lat_b);
        let union: Vec<u64> = counts_a.iter().zip(&counts_b).map(|(x, y)| x + y).collect();
        let mut lat_union = lat_a.clone();
        lat_union.extend_from_slice(&lat_b);
        let ru = build(&union, &lat_union);

        let mut merged = ra.snapshot();
        merged.merge(&rb.snapshot());
        prop_assert_eq!(merged, ru.snapshot());
    }

    #[test]
    fn since_then_merge_restores_total(
        first in prop::collection::vec(0u64..50_000, 1..60),
        second in prop::collection::vec(0u64..50_000, 1..60),
    ) {
        // since() gives the delta of the second batch; merging it back on
        // the first snapshot must restore bucket counts, count, and sum.
        let r = Registry::new();
        let h = r.histogram("lat");
        let c = r.counter("n");
        for &v in &first {
            h.record(v);
            c.inc();
        }
        let snap1 = r.snapshot();
        for &v in &second {
            h.record(v);
            c.inc();
        }
        let snap2 = r.snapshot();
        let delta = snap2.since(&snap1);
        prop_assert_eq!(delta.counter("n"), second.len() as u64);

        let mut restored = snap1.clone();
        restored.merge(&delta);
        // min/max are not restorable from a delta; compare the rest.
        use crate::metrics::MetricValue;
        match (restored.metrics.get("lat"), snap2.metrics.get("lat")) {
            (Some(MetricValue::Histogram(a)), Some(MetricValue::Histogram(b))) => {
                prop_assert_eq!(&a.buckets, &b.buckets);
                prop_assert_eq!(a.count, b.count);
                prop_assert_eq!(a.sum, b.sum);
            }
            other => prop_assert!(false, "unexpected metrics: {:?}", other),
        }
        prop_assert_eq!(restored.counter("n"), snap2.counter("n"));
    }
}

// ---------------------------------------------------------------------------
// Prometheus text-format conformance
// ---------------------------------------------------------------------------

/// Asserts every format guarantee [`to_prometheus`] makes, against the
/// strict little parser in [`textparse`]:
///
/// * the document parses at all;
/// * every sample series is preceded by a `# TYPE` line for its metric;
/// * histogram buckets are cumulative, their `le` bounds strictly
///   increase, and the series ends in `le="+Inf"`;
/// * the `+Inf` bucket, `_count`, and the number of observations agree,
///   and `_sum` is present exactly once.
fn assert_prometheus_conformance(text: &str, observations: &[(String, Vec<u64>)]) {
    let lines = textparse::parse(text).expect("exporter output must parse");

    // TYPE-before-sample, for every series.
    let mut declared: Vec<&str> = Vec::new();
    for line in &lines {
        match line {
            Line::Type { name, .. } => declared.push(name),
            Line::Sample { name, .. } => {
                let base = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .filter(|b| declared.contains(b))
                    .unwrap_or(name);
                assert!(
                    declared.contains(&base) || declared.contains(&name.as_str()),
                    "sample {name} not preceded by a # TYPE line\n{text}"
                );
            }
        }
    }

    // Histogram invariants, per histogram that observed anything.
    for (hist_name, values) in observations {
        let base = hist_name.replace(|c: char| !c.is_ascii_alphanumeric(), "_");
        let buckets: Vec<(&str, f64)> = lines
            .iter()
            .filter_map(|l| match l {
                Line::Sample {
                    name,
                    labels,
                    value,
                } if *name == format!("{base}_bucket") => {
                    assert_eq!(labels.len(), 1, "bucket series must carry only le");
                    assert_eq!(labels[0].0, "le");
                    Some((labels[0].1.as_str(), *value))
                }
                _ => None,
            })
            .collect();
        let count_val = lines
            .iter()
            .filter_map(|l| match l {
                Line::Sample { name, value, .. } if *name == format!("{base}_count") => {
                    Some(*value)
                }
                _ => None,
            })
            .collect::<Vec<_>>();
        let sum_val = lines
            .iter()
            .filter_map(|l| match l {
                Line::Sample { name, value, .. } if *name == format!("{base}_sum") => Some(*value),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(count_val.len(), 1, "{base}_count must appear exactly once");
        assert_eq!(sum_val.len(), 1, "{base}_sum must appear exactly once");
        assert_eq!(count_val[0], values.len() as f64);
        assert_eq!(sum_val[0], values.iter().sum::<u64>() as f64);

        assert!(!buckets.is_empty(), "histogram must emit buckets");
        assert_eq!(buckets.last().unwrap().0, "+Inf", "buckets end in +Inf");
        assert_eq!(buckets.last().unwrap().1, count_val[0]);
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_n = 0.0f64;
        for (le, n) in &buckets {
            let bound: f64 = if *le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().expect("numeric le")
            };
            assert!(bound > prev_le, "le bounds strictly increase\n{text}");
            assert!(*n >= prev_n, "bucket counts are cumulative\n{text}");
            prev_le = bound;
            prev_n = *n;
        }
    }
}

/// Name pools for generated registries. Distinct prefixes per metric
/// kind so a generated registry never registers one name as two kinds.
const COUNTER_NAMES: [&str; 6] = [
    "tree.queries",
    "serve.requests",
    "pool.hits",
    "wal.syncs",
    "exec.batches",
    "ingest.replayed",
];
const GAUGE_NAMES: [&str; 4] = ["g.frames", "g.depth", "g.conns", "g.draining"];
const HIST_NAMES: [&str; 4] = ["h.query_ns", "h.batch_size", "h.write_ns", "h.wait_us"];

/// Characters a label value may contain, including everything that
/// needs escaping and the structural characters that could confuse a
/// naive parser.
const LABEL_CHARS: [char; 16] = [
    'a', 'b', 'z', '0', '9', '_', '"', '\\', '\n', '{', '}', '=', ',', ' ', 'λ', '€',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prometheus_export_conforms(
        counters in prop::collection::vec((0usize..COUNTER_NAMES.len(), 0u64..1_000_000), 0..5),
        gauges in prop::collection::vec((0usize..GAUGE_NAMES.len(), -500i64..500), 0..4),
        hists in prop::collection::vec(
            (0usize..HIST_NAMES.len(), prop::collection::vec(0u64..10_000_000, 1..80)),
            0..4,
        ),
    ) {
        let r = Registry::new();
        for &(i, v) in &counters {
            r.counter(COUNTER_NAMES[i]).add(v);
        }
        for &(i, v) in &gauges {
            r.gauge(GAUGE_NAMES[i]).set(v);
        }
        let mut observations: Vec<(String, Vec<u64>)> = Vec::new();
        for (i, values) in &hists {
            let name = HIST_NAMES[*i];
            let h = r.histogram(name);
            for &v in values {
                h.record(v);
            }
            if let Some(existing) = observations.iter_mut().find(|(n, _)| n == name) {
                existing.1.extend_from_slice(values);
            } else {
                observations.push((name.to_string(), values.clone()));
            }
        }
        let text = to_prometheus(&r.snapshot());
        assert_prometheus_conformance(&text, &observations);
    }

    #[test]
    fn label_value_escaping_round_trips(
        chars in prop::collection::vec(0usize..LABEL_CHARS.len(), 0..24),
    ) {
        // Any label value — including quotes, backslashes, newlines and
        // braces — must survive escape → embed in a series line → parse.
        let v: String = chars.iter().map(|&i| LABEL_CHARS[i]).collect();
        let escaped = escape_label_value(&v);
        prop_assert!(!escaped.contains('\n'), "escaped value is single-line");
        let line = format!("m{{k=\"{escaped}\"}} 1\n");
        let lines = textparse::parse(&line).expect("escaped line parses");
        match &lines[..] {
            [Line::Sample { name, labels, value }] => {
                prop_assert_eq!(name.as_str(), "m");
                prop_assert_eq!(*value, 1.0);
                prop_assert_eq!(&labels[0].1, &v);
            }
            other => prop_assert!(false, "unexpected parse: {:?}", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Flight-recorder ring buffer
// ---------------------------------------------------------------------------

/// A record whose fields are all derived from one integer, so a torn
/// read (fields mixed from two different records) is detectable.
fn synthetic_record(k: u64) -> RawRecord {
    let t = k + 1;
    RawRecord {
        trace_id: t,
        span_id: t ^ 0x5EED_5EED,
        parent: t / 2,
        start_ns: t * 1_000,
        dur_ns: t * 3,
        name: 0,
        cat: 0,
        nattrs: 1,
        attrs: {
            let mut a = [(0u16, 0u64); MAX_ATTRS];
            a[0] = (0, t * 7);
            a
        },
    }
}

fn assert_not_torn(s: &SpanData) {
    let t = s.trace_id;
    assert_eq!(s.span_id, t ^ 0x5EED_5EED, "torn span_id: {s:?}");
    assert_eq!(s.parent, t / 2, "torn parent: {s:?}");
    assert_eq!(s.start_ns, t * 1_000, "torn start: {s:?}");
    assert_eq!(s.dur_ns, t * 3, "torn dur: {s:?}");
    assert_eq!(s.attrs, vec![("", t * 7)], "torn attrs: {s:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_overwrite_keeps_newest_and_never_tears(
        cap in 1usize..48,
        total in 0u64..200,
    ) {
        let ring = ThreadRing::new(cap);
        for k in 0..total {
            ring.push(&synthetic_record(k));
        }
        let spans = ring.drain();
        // Exactly the newest min(total, cap) records, oldest first.
        let expect_len = (total as usize).min(cap);
        prop_assert_eq!(spans.len(), expect_len);
        let first = total - expect_len as u64;
        for (i, s) in spans.iter().enumerate() {
            prop_assert_eq!(s.trace_id, first + i as u64 + 1);
            assert_not_torn(s);
        }
    }
}

/// A dumper racing a writer over a tiny ring must only ever observe
/// whole records: every drained span satisfies the derived-field
/// relationship and appears at most once. (Scan *order* is not
/// guaranteed under concurrent overwrite — a slot can be lapped with a
/// newer committed record mid-scan — which is why [`flight_spans`]
/// sorts by start time; what the seqlock guarantees is no tearing.)
#[test]
fn concurrent_drain_never_observes_a_torn_record() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let ring = Arc::new(ThreadRing::new(8));
    let stop = Arc::new(AtomicBool::new(false));
    let w = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::Relaxed) {
                ring.push(&synthetic_record(k));
                k += 1;
            }
            k
        })
    };
    for _ in 0..2_000 {
        let spans = ring.drain();
        let mut seen = Vec::with_capacity(spans.len());
        for s in &spans {
            assert_not_torn(s);
            assert!(
                !seen.contains(&s.trace_id),
                "duplicate record {}",
                s.trace_id
            );
            seen.push(s.trace_id);
        }
    }
    stop.store(true, Ordering::Relaxed);
    let written = w.join().unwrap();
    assert!(written > 0);
}

// ---------------------------------------------------------------------------
// Folded-stack aggregation (prof.rs)
// ---------------------------------------------------------------------------

use crate::prof::{FoldedProfile, StackCount};

/// Interns a fixed palette of span names through the production table
/// and returns their indices. Idempotent: the interner dedups, so
/// repeated calls (and other tests) always agree on the mapping.
fn prof_name_table() -> &'static [(u16, &'static str)] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<(u16, &'static str)>> = OnceLock::new();
    TABLE.get_or_init(|| {
        [
            "prop.root",
            "prop.query",
            "prop.visit",
            "prop.decode",
            "prop.wal",
            "prop.flush",
        ]
        .iter()
        .map(|&name| (crate::span::intern_for_test(name), name))
        .collect()
    })
}

/// A batch of raw profiler samples: (palette indices root-first, weight).
fn arb_prof_batch() -> impl Strategy<Value = Vec<(Vec<usize>, StackCount)>> {
    prop::collection::vec(
        (
            prop::collection::vec(0usize..6, 0..5),
            (0u64..50, 0u64..1_000_000u64)
                .prop_map(|(samples, cpu_ns)| StackCount { samples, cpu_ns }),
        ),
        0..24,
    )
}

fn build_profile(batch: &[(Vec<usize>, StackCount)]) -> FoldedProfile {
    let table = prof_name_table();
    let mut p = FoldedProfile::new();
    for (path, count) in batch {
        let frames: Vec<u16> = path.iter().map(|&i| table[i].0).collect();
        p.record(&frames, *count);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // merge is associative (and the BTreeMap keying makes it
    // order-insensitive): (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn folded_merge_is_associative(
        a in arb_prof_batch(),
        b in arb_prof_batch(),
        c in arb_prof_batch(),
    ) {
        let (pa, pb, pc) = (build_profile(&a), build_profile(&b), build_profile(&c));

        let mut left = pa.clone();
        left.merge(&pb);
        left.merge(&pc);

        let mut bc = pb.clone();
        bc.merge(&pc);
        let mut right = pa.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    // record + merge conserve both weights: nothing is lost or
    // double-counted, except empty stacks which are dropped by design.
    #[test]
    fn folded_counts_are_conserved(
        a in arb_prof_batch(),
        b in arb_prof_batch(),
    ) {
        let expect = |batch: &[(Vec<usize>, StackCount)]| {
            batch
                .iter()
                .filter(|(path, _)| !path.is_empty())
                .fold((0u64, 0u64), |(s, n), (_, c)| (s + c.samples, n + c.cpu_ns))
        };
        let (sa, na) = expect(&a);
        let (sb, nb) = expect(&b);

        let mut merged = build_profile(&a);
        prop_assert_eq!(merged.total_samples(), sa);
        prop_assert_eq!(merged.total_cpu_ns(), na);
        merged.merge(&build_profile(&b));
        prop_assert_eq!(merged.total_samples(), sa + sb);
        prop_assert_eq!(merged.total_cpu_ns(), nb + na);
    }

    // Resolving stacks back through the interner returns exactly the
    // names that were recorded — aggregation never corrupts or
    // cross-wires the &'static str table.
    #[test]
    fn folded_resolution_preserves_names(a in arb_prof_batch()) {
        let table = prof_name_table();
        let profile = build_profile(&a);
        let resolved = profile.resolved();

        // Heaviest-first ordering by samples.
        for w in resolved.windows(2) {
            prop_assert!(w[0].samples >= w[1].samples);
        }

        // Every resolved stack is one of the recorded paths, verbatim.
        let recorded: std::collections::HashSet<Vec<&'static str>> = a
            .iter()
            .filter(|(path, _)| !path.is_empty())
            .map(|(path, _)| path.iter().map(|&i| table[i].1).collect())
            .collect();
        prop_assert_eq!(resolved.len(), recorded.len());
        for stack in &resolved {
            prop_assert!(
                recorded.contains(&stack.frames),
                "unrecorded stack surfaced: {:?}", stack.frames
            );
            let line = stack.folded_line();
            let (names, samples) = line.rsplit_once(' ').unwrap();
            prop_assert_eq!(names, stack.frames.join(";"));
            prop_assert_eq!(samples.parse::<u64>().unwrap(), stack.samples);
        }
    }
}
