//! Property tests for snapshot merge semantics: merging two recorders'
//! snapshots must equal one recorder that observed the union.

use proptest::prelude::*;

use crate::metrics::{Histogram, Registry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(0u64..=1_000_000, 0..200),
        b in prop::collection::vec(0u64..=1_000_000, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hu.snapshot());
    }

    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..=1_000_000, 0..100),
        b in prop::collection::vec(0u64..=1_000_000, 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let mut ab = ha.snapshot();
        ab.merge(&hb.snapshot());
        let mut ba = hb.snapshot();
        ba.merge(&ha.snapshot());
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn registry_merge_equals_union(
        counts_a in prop::collection::vec(0u64..1000, 3),
        counts_b in prop::collection::vec(0u64..1000, 3),
        lat_a in prop::collection::vec(0u64..100_000, 0..50),
        lat_b in prop::collection::vec(0u64..100_000, 0..50),
    ) {
        let names = ["x.n", "y.n", "z.n"];
        let build = |counts: &[u64], lats: &[u64]| {
            let r = Registry::new();
            for (name, &c) in names.iter().zip(counts) {
                r.counter(name).add(c);
            }
            let h = r.histogram("x.lat");
            for &v in lats {
                h.record(v);
            }
            r
        };
        let ra = build(&counts_a, &lat_a);
        let rb = build(&counts_b, &lat_b);
        let union: Vec<u64> = counts_a.iter().zip(&counts_b).map(|(x, y)| x + y).collect();
        let mut lat_union = lat_a.clone();
        lat_union.extend_from_slice(&lat_b);
        let ru = build(&union, &lat_union);

        let mut merged = ra.snapshot();
        merged.merge(&rb.snapshot());
        prop_assert_eq!(merged, ru.snapshot());
    }

    #[test]
    fn since_then_merge_restores_total(
        first in prop::collection::vec(0u64..50_000, 1..60),
        second in prop::collection::vec(0u64..50_000, 1..60),
    ) {
        // since() gives the delta of the second batch; merging it back on
        // the first snapshot must restore bucket counts, count, and sum.
        let r = Registry::new();
        let h = r.histogram("lat");
        let c = r.counter("n");
        for &v in &first {
            h.record(v);
            c.inc();
        }
        let snap1 = r.snapshot();
        for &v in &second {
            h.record(v);
            c.inc();
        }
        let snap2 = r.snapshot();
        let delta = snap2.since(&snap1);
        prop_assert_eq!(delta.counter("n"), second.len() as u64);

        let mut restored = snap1.clone();
        restored.merge(&delta);
        // min/max are not restorable from a delta; compare the rest.
        use crate::metrics::MetricValue;
        match (restored.metrics.get("lat"), snap2.metrics.get("lat")) {
            (Some(MetricValue::Histogram(a)), Some(MetricValue::Histogram(b))) => {
                prop_assert_eq!(&a.buckets, &b.buckets);
                prop_assert_eq!(a.count, b.count);
                prop_assert_eq!(a.sum, b.sum);
            }
            other => prop_assert!(false, "unexpected metrics: {:?}", other),
        }
        prop_assert_eq!(restored.counter("n"), snap2.counter("n"));
    }
}
