//! Per-query resource accounting and the calibrated cost model.
//!
//! A [`ResourceVec`] is the bill for one query (or one shard's part of
//! it): CPU nanoseconds, tree-node visits, kernel lane operations,
//! buffer-pool page pins, codec bytes decoded, and WAL bytes appended.
//! The core query dispatch fills one per call from thread-CPU readings
//! and `sg-sig`'s thread-local kernel counters; the sharded executor
//! sums them per shard (they ride inside `QueryStats`, so
//! `QueryResponse::per_shard` echoes each shard's vector).
//!
//! The [`CostModel`] turns those bills into the per-index-kind EWMA
//! cost stats the planner consumes: every finished query feeds
//! `record(index, kind, wall_ns, resources)`, and
//! [`CostModel::estimate`] answers "what will a query of this kind cost
//! on this index, in nanoseconds" from the same table that
//! `GET /debug/costs` serves.

use crate::json::Json;
use crate::metrics::{Counter, Registry};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The calling thread's cumulative CPU time in nanoseconds (zero on
/// platforms without thread clocks). Re-exported here so accounting
/// sites need only a `sg-obs` dependency, not the `cputime` shim.
#[inline]
pub fn self_cpu_ns() -> u64 {
    cputime::self_cpu_ns()
}

/// Resources consumed by one query (or one shard's slice of one).
/// Element-wise addable, so per-shard vectors sum to the batch total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceVec {
    /// Thread CPU time spent answering, nanoseconds.
    pub cpu_ns: u64,
    /// Tree nodes (pages) visited.
    pub visits: u64,
    /// Kernel lane operations: dense sweeps charge their lane words,
    /// sparse probes the positions compared.
    pub lane_ops: u64,
    /// Buffer-pool pages pinned (logical page reads) during the query.
    pub pages_pinned: u64,
    /// Bytes run through the signature codec (page → SoA decode).
    pub bytes_decoded: u64,
    /// Bytes appended to the WAL (write operations; zero for reads).
    pub wal_bytes: u64,
}

impl ResourceVec {
    /// Element-wise sum.
    pub fn add(&mut self, other: &ResourceVec) {
        self.cpu_ns += other.cpu_ns;
        self.visits += other.visits;
        self.lane_ops += other.lane_ops;
        self.pages_pinned += other.pages_pinned;
        self.bytes_decoded += other.bytes_decoded;
        self.wal_bytes += other.wal_bytes;
    }

    /// Whether every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == ResourceVec::default()
    }

    /// The vector as a JSON object, one key per component.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cpu_ns".to_string(), Json::U64(self.cpu_ns)),
            ("visits".to_string(), Json::U64(self.visits)),
            ("lane_ops".to_string(), Json::U64(self.lane_ops)),
            ("pages_pinned".to_string(), Json::U64(self.pages_pinned)),
            ("bytes_decoded".to_string(), Json::U64(self.bytes_decoded)),
            ("wal_bytes".to_string(), Json::U64(self.wal_bytes)),
        ])
    }
}

/// EWMA smoothing factor. Small enough to ride out scheduling noise,
/// large enough that a few dozen queries converge to the workload mean.
const ALPHA: f64 = 0.1;

#[derive(Debug, Clone, Copy, Default)]
struct Ewma(f64);

impl Ewma {
    fn observe(&mut self, x: f64, first: bool) {
        if first {
            self.0 = x;
        } else {
            self.0 += ALPHA * (x - self.0);
        }
    }
}

/// The smoothed cost statistics for one `(index, kind)` cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostStats {
    /// Queries folded into the EWMAs.
    pub count: u64,
    /// Smoothed wall nanoseconds — what [`CostModel::estimate`] returns.
    pub est_ns: f64,
    /// Smoothed thread-CPU nanoseconds.
    pub cpu_ns: f64,
    /// Smoothed node visits.
    pub visits: f64,
    /// Smoothed kernel lane operations.
    pub lane_ops: f64,
    /// Smoothed page pins.
    pub pages_pinned: f64,
    /// Smoothed codec bytes.
    pub bytes_decoded: f64,
    /// Smoothed WAL bytes.
    pub wal_bytes: f64,
    /// The most recent raw wall-ns observation.
    pub last_ns: u64,
}

impl CostStats {
    fn observe(&mut self, wall_ns: u64, res: &ResourceVec) {
        let first = self.count == 0;
        let mut e = Ewma(self.est_ns);
        e.observe(wall_ns as f64, first);
        self.est_ns = e.0;
        let fold = |slot: &mut f64, x: u64| {
            let mut e = Ewma(*slot);
            e.observe(x as f64, first);
            *slot = e.0;
        };
        fold(&mut self.cpu_ns, res.cpu_ns);
        fold(&mut self.visits, res.visits);
        fold(&mut self.lane_ops, res.lane_ops);
        fold(&mut self.pages_pinned, res.pages_pinned);
        fold(&mut self.bytes_decoded, res.bytes_decoded);
        fold(&mut self.wal_bytes, res.wal_bytes);
        self.last_ns = wall_ns;
        self.count += 1;
    }
}

/// Per-index, per-query-kind EWMA cost table. Keys are the `'static`
/// names instrumentation sites already use (`"sg-tree"`, `"exec"`, …;
/// `"knn"`, `"range"`, `"containing"`, `"contained_in"`, `"exact"`,
/// `"write"`), so the record hot path allocates nothing.
#[derive(Debug, Default)]
pub struct CostModel {
    cells: Mutex<BTreeMap<(&'static str, &'static str), CostStats>>,
}

impl CostModel {
    /// An empty model (tests; production uses [`CostModel::global`]).
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// The process-wide model every dispatch layer records into and
    /// `GET /debug/costs` serves.
    pub fn global() -> &'static CostModel {
        static MODEL: OnceLock<CostModel> = OnceLock::new();
        MODEL.get_or_init(CostModel::new)
    }

    /// Folds one finished query into the `(index, kind)` cell.
    pub fn record(&self, index: &'static str, kind: &'static str, wall_ns: u64, res: &ResourceVec) {
        let mut cells = self.cells.lock().unwrap();
        cells
            .entry((index, kind))
            .or_default()
            .observe(wall_ns, res);
    }

    /// The smoothed wall-nanosecond estimate for a query of `kind` on
    /// `index`; `None` until at least one query has been recorded.
    pub fn estimate(&self, index: &str, kind: &str) -> Option<u64> {
        self.stats(index, kind).map(|s| s.est_ns.round() as u64)
    }

    /// The full smoothed statistics for one cell.
    pub fn stats(&self, index: &str, kind: &str) -> Option<CostStats> {
        let cells = self.cells.lock().unwrap();
        cells
            .iter()
            .find(|((i, k), _)| *i == index && *k == kind)
            .map(|(_, s)| *s)
    }

    /// Empties the table (tests, admin reset).
    pub fn clear(&self) {
        self.cells.lock().unwrap().clear();
    }

    /// The whole table as JSON: one row per `(index, kind)` cell with
    /// its count, estimate, and smoothed resource components.
    pub fn to_json(&self) -> Json {
        let cells = self.cells.lock().unwrap();
        let models: Vec<Json> = cells
            .iter()
            .map(|((index, kind), s)| {
                Json::Obj(vec![
                    ("index".to_string(), Json::Str(index.to_string())),
                    ("kind".to_string(), Json::Str(kind.to_string())),
                    ("count".to_string(), Json::U64(s.count)),
                    ("est_ns".to_string(), Json::F64(s.est_ns)),
                    ("last_ns".to_string(), Json::U64(s.last_ns)),
                    (
                        "ewma".to_string(),
                        Json::Obj(vec![
                            ("cpu_ns".to_string(), Json::F64(s.cpu_ns)),
                            ("visits".to_string(), Json::F64(s.visits)),
                            ("lane_ops".to_string(), Json::F64(s.lane_ops)),
                            ("pages_pinned".to_string(), Json::F64(s.pages_pinned)),
                            ("bytes_decoded".to_string(), Json::F64(s.bytes_decoded)),
                            ("wal_bytes".to_string(), Json::F64(s.wal_bytes)),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![("models".to_string(), Json::Arr(models))])
    }
}

/// Instrument set for query resource totals, registered under a
/// caller-chosen prefix (`"cost"` in the serve layer). Counters, so
/// rates fall out of `/metrics/history` like every other counter.
#[derive(Debug)]
pub struct CostObs {
    /// Queries whose resource vector was folded in (`<prefix>.queries`).
    pub queries: Arc<Counter>,
    /// Total thread-CPU nanoseconds (`<prefix>.cpu_ns`).
    pub cpu_ns: Arc<Counter>,
    /// Total node visits (`<prefix>.visits`).
    pub visits: Arc<Counter>,
    /// Total kernel lane operations (`<prefix>.lane_ops`).
    pub lane_ops: Arc<Counter>,
    /// Total buffer-pool page pins (`<prefix>.pages_pinned`).
    pub pages_pinned: Arc<Counter>,
    /// Total codec bytes decoded (`<prefix>.bytes_decoded`).
    pub bytes_decoded: Arc<Counter>,
    /// Total WAL bytes attributed to accounted writes
    /// (`<prefix>.wal_bytes`).
    pub wal_bytes: Arc<Counter>,
}

impl CostObs {
    /// Registers the cost instrument set under `<prefix>.<name>`.
    pub fn register(registry: &Registry, prefix: &str) -> Arc<CostObs> {
        let c = |name: &str| registry.counter(&format!("{prefix}.{name}"));
        Arc::new(CostObs {
            queries: c("queries"),
            cpu_ns: c("cpu_ns"),
            visits: c("visits"),
            lane_ops: c("lane_ops"),
            pages_pinned: c("pages_pinned"),
            bytes_decoded: c("bytes_decoded"),
            wal_bytes: c("wal_bytes"),
        })
    }

    /// Adds one query's resource vector to the totals.
    pub fn observe(&self, res: &ResourceVec) {
        self.queries.inc();
        self.cpu_ns.add(res.cpu_ns);
        self.visits.add(res.visits);
        self.lane_ops.add(res.lane_ops);
        self.pages_pinned.add(res.pages_pinned);
        self.bytes_decoded.add(res.bytes_decoded);
        self.wal_bytes.add(res.wal_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec1() -> ResourceVec {
        ResourceVec {
            cpu_ns: 100,
            visits: 2,
            lane_ops: 64,
            pages_pinned: 2,
            bytes_decoded: 4096,
            wal_bytes: 0,
        }
    }

    #[test]
    fn resource_vec_adds_elementwise() {
        let mut a = vec1();
        a.add(&vec1());
        assert_eq!(a.cpu_ns, 200);
        assert_eq!(a.visits, 4);
        assert_eq!(a.lane_ops, 128);
        assert_eq!(a.pages_pinned, 4);
        assert_eq!(a.bytes_decoded, 8192);
        assert_eq!(a.wal_bytes, 0);
        assert!(!a.is_zero());
        assert!(ResourceVec::default().is_zero());
    }

    #[test]
    fn first_observation_seeds_the_ewma() {
        let m = CostModel::new();
        assert_eq!(m.estimate("sg-tree", "knn"), None);
        m.record("sg-tree", "knn", 10_000, &vec1());
        assert_eq!(m.estimate("sg-tree", "knn"), Some(10_000));
        let s = m.stats("sg-tree", "knn").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.cpu_ns, 100.0);
        assert_eq!(s.last_ns, 10_000);
    }

    #[test]
    fn ewma_converges_to_a_stationary_workload() {
        let m = CostModel::new();
        for _ in 0..200 {
            m.record("sg-tree", "range", 50_000, &vec1());
        }
        let est = m.estimate("sg-tree", "range").unwrap();
        assert_eq!(est, 50_000);
        // A level shift is tracked within a few dozen observations.
        for _ in 0..60 {
            m.record("sg-tree", "range", 100_000, &vec1());
        }
        let est = m.estimate("sg-tree", "range").unwrap() as f64;
        assert!((est - 100_000.0).abs() / 100_000.0 < 0.05, "est {est}");
    }

    #[test]
    fn cells_are_keyed_by_index_and_kind() {
        let m = CostModel::new();
        m.record("sg-tree", "knn", 1_000, &vec1());
        m.record("exec", "knn", 9_000, &vec1());
        m.record("sg-tree", "exact", 500, &vec1());
        assert_eq!(m.estimate("sg-tree", "knn"), Some(1_000));
        assert_eq!(m.estimate("exec", "knn"), Some(9_000));
        assert_eq!(m.estimate("sg-tree", "exact"), Some(500));
        assert_eq!(m.estimate("sg-tree", "range"), None);
        let doc = m.to_json().to_string_compact();
        let parsed = crate::json::parse(&doc).unwrap();
        assert_eq!(parsed.get("models").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn cost_obs_accumulates_totals() {
        let reg = Registry::new();
        let obs = CostObs::register(&reg, "cost");
        obs.observe(&vec1());
        obs.observe(&vec1());
        assert_eq!(obs.queries.get(), 2);
        assert_eq!(obs.cpu_ns.get(), 200);
        assert_eq!(obs.lane_ops.get(), 128);
    }
}
