//! Per-query EXPLAIN-style traces.
//!
//! A [`QueryTrace`] breaks one query's cost down by tree level — nodes
//! visited, entries pruned by the directory lower bound, lower-bound
//! evaluations, exact distances computed — plus buffer-pool behaviour
//! and wall time. It renders as a human-readable plan summary and
//! round-trips losslessly through JSON.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{self, Json};

/// Number of tree levels tracked by the process-wide trace aggregate
/// (level 0 = leaves). Sixteen levels cover any realistic SG-tree — a
/// fanout-2 tree of that height already holds 65k pages.
pub const TRACE_AGG_LEVELS: usize = 16;

struct LevelAgg {
    nodes_visited: AtomicU64,
    entries_pruned: AtomicU64,
    lower_bound_evals: AtomicU64,
    exact_distances: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_LEVEL_AGG: LevelAgg = LevelAgg {
    nodes_visited: AtomicU64::new(0),
    entries_pruned: AtomicU64::new(0),
    lower_bound_evals: AtomicU64::new(0),
    exact_distances: AtomicU64::new(0),
};

static AGG_LEVELS: [LevelAgg; TRACE_AGG_LEVELS] = [ZERO_LEVEL_AGG; TRACE_AGG_LEVELS];
static AGG_TRACES: AtomicU64 = AtomicU64::new(0);

/// Folds one finished trace (and, recursively, its per-shard children)
/// into the process-wide per-level aggregate that
/// [`trace_level_aggregates`] reads. The serve layer calls this for
/// every traced query so tree health reports can correlate the paper's
/// *estimated* false-drop probability with *observed* prune behaviour.
pub fn record_trace_levels(trace: &QueryTrace) {
    AGG_TRACES.fetch_add(1, Ordering::Relaxed);
    fold_levels(trace);
}

fn fold_levels(trace: &QueryTrace) {
    for l in &trace.levels {
        if let Some(agg) = AGG_LEVELS.get(l.level as usize) {
            agg.nodes_visited
                .fetch_add(l.nodes_visited, Ordering::Relaxed);
            agg.entries_pruned
                .fetch_add(l.entries_pruned, Ordering::Relaxed);
            agg.lower_bound_evals
                .fetch_add(l.lower_bound_evals, Ordering::Relaxed);
            agg.exact_distances
                .fetch_add(l.exact_distances, Ordering::Relaxed);
        }
    }
    for child in &trace.children {
        fold_levels(child);
    }
}

/// The process-wide trace aggregate: how many traces have been folded
/// in, plus one [`LevelTrace`] per tree level that saw any activity.
pub fn trace_level_aggregates() -> (u64, Vec<LevelTrace>) {
    let traces = AGG_TRACES.load(Ordering::Relaxed);
    let mut levels = Vec::new();
    for (i, agg) in AGG_LEVELS.iter().enumerate() {
        let l = LevelTrace {
            level: i as u32,
            nodes_visited: agg.nodes_visited.load(Ordering::Relaxed),
            entries_pruned: agg.entries_pruned.load(Ordering::Relaxed),
            lower_bound_evals: agg.lower_bound_evals.load(Ordering::Relaxed),
            exact_distances: agg.exact_distances.load(Ordering::Relaxed),
        };
        if l.nodes_visited | l.entries_pruned | l.lower_bound_evals | l.exact_distances != 0 {
            levels.push(l);
        }
    }
    (traces, levels)
}

/// Collector threaded through a search when tracing is requested;
/// `None` keeps the hot path branch-only.
pub type TraceSink<'a> = Option<&'a mut QueryTrace>;

/// Cost breakdown for one tree level (level 0 = leaves).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelTrace {
    /// Tree level (0 = leaf nodes).
    pub level: u32,
    /// Nodes of this level read during the search.
    pub nodes_visited: u64,
    /// Entries skipped because their directory lower bound exceeded the
    /// current pruning distance (their subtrees were never read).
    pub entries_pruned: u64,
    /// Directory lower-bound evaluations at this level.
    pub lower_bound_evals: u64,
    /// Exact distances computed against stored objects (leaf level).
    pub exact_distances: u64,
}

/// EXPLAIN-style record of one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// Query description, e.g. `knn k=10`.
    pub query: String,
    /// Index description, e.g. `sg-tree`.
    pub index: String,
    /// Per-level breakdown, sorted root→leaf by [`QueryTrace::render`].
    pub levels: Vec<LevelTrace>,
    /// Total nodes accessed.
    pub nodes_accessed: u64,
    /// Total stored objects compared exactly.
    pub data_compared: u64,
    /// Total distance/bound computations.
    pub dist_computations: u64,
    /// Pages requested from the buffer pool.
    pub logical_reads: u64,
    /// Pool misses (random I/Os).
    pub physical_reads: u64,
    /// Wall time in nanoseconds.
    pub duration_ns: u64,
    /// Result rows returned.
    pub results: u64,
    /// Nested sub-traces: a fan-out engine (e.g. the sharded executor)
    /// attaches one child per shard, each a complete trace of that
    /// shard's share of the query. Empty for plain single-index queries.
    pub children: Vec<QueryTrace>,
}

impl QueryTrace {
    /// An empty trace labelled with the query and index descriptions.
    pub fn new(query: impl Into<String>, index: impl Into<String>) -> Self {
        QueryTrace {
            query: query.into(),
            index: index.into(),
            ..QueryTrace::default()
        }
    }

    fn level_mut(&mut self, level: u32) -> &mut LevelTrace {
        if let Some(i) = self.levels.iter().position(|l| l.level == level) {
            &mut self.levels[i]
        } else {
            self.levels.push(LevelTrace {
                level,
                ..LevelTrace::default()
            });
            self.levels.last_mut().unwrap()
        }
    }

    /// Counts one node visit at `level`.
    #[inline]
    pub fn visit(&mut self, level: u32) {
        self.level_mut(level).nodes_visited += 1;
    }

    /// Counts `n` entries pruned by the directory lower bound at `level`.
    #[inline]
    pub fn pruned(&mut self, level: u32, n: u64) {
        self.level_mut(level).entries_pruned += n;
    }

    /// Counts `n` lower-bound evaluations at `level`.
    #[inline]
    pub fn lower_bounds(&mut self, level: u32, n: u64) {
        self.level_mut(level).lower_bound_evals += n;
    }

    /// Counts `n` exact distance computations at `level`.
    #[inline]
    pub fn exact(&mut self, level: u32, n: u64) {
        self.level_mut(level).exact_distances += n;
    }

    /// Buffer-pool hits (logical reads that did not touch the store).
    pub fn pool_hits(&self) -> u64 {
        self.logical_reads.saturating_sub(self.physical_reads)
    }

    /// Fraction of logical reads served from the pool (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.pool_hits() as f64 / self.logical_reads as f64
        }
    }

    /// Attaches a child trace (one shard's share of a fan-out query).
    pub fn push_child(&mut self, child: QueryTrace) {
        self.children.push(child);
    }

    /// Human-readable plan summary, root level first; children render
    /// indented below their parent.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "    ".repeat(depth);
        let _ = writeln!(out, "{pad}EXPLAIN {} on {}", self.query, self.index);
        let _ = writeln!(
            out,
            "{pad}  {:<8} {:>8} {:>8} {:>10} {:>10}",
            "level", "visited", "pruned", "lb-evals", "exact-dist"
        );
        let mut levels = self.levels.clone();
        levels.sort_by_key(|l| std::cmp::Reverse(l.level));
        for l in &levels {
            let label = if l.level == 0 {
                "leaf".to_string()
            } else {
                format!("dir-{}", l.level)
            };
            let _ = writeln!(
                out,
                "{pad}  {:<8} {:>8} {:>8} {:>10} {:>10}",
                label, l.nodes_visited, l.entries_pruned, l.lower_bound_evals, l.exact_distances
            );
        }
        let _ = writeln!(
            out,
            "{pad}  totals: {} nodes, {} data compared, {} dist computations, {} results",
            self.nodes_accessed, self.data_compared, self.dist_computations, self.results
        );
        let _ = writeln!(
            out,
            "{pad}  io: {} logical / {} physical reads, pool hit rate {:.1}%",
            self.logical_reads,
            self.physical_reads,
            self.hit_rate() * 100.0
        );
        let _ = write!(out, "{pad}  time: {:.3} ms", self.duration_ns as f64 / 1e6);
        for child in &self.children {
            out.push('\n');
            child.render_into(out, depth + 1);
        }
    }

    /// JSON document for this trace.
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("query".into(), Json::Str(self.query.clone())),
            ("index".into(), Json::Str(self.index.clone())),
            (
                "levels".into(),
                Json::Arr(
                    self.levels
                        .iter()
                        .map(|l| {
                            Json::Obj(vec![
                                ("level".into(), Json::U64(l.level as u64)),
                                ("nodes_visited".into(), Json::U64(l.nodes_visited)),
                                ("entries_pruned".into(), Json::U64(l.entries_pruned)),
                                ("lower_bound_evals".into(), Json::U64(l.lower_bound_evals)),
                                ("exact_distances".into(), Json::U64(l.exact_distances)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("nodes_accessed".into(), Json::U64(self.nodes_accessed)),
            ("data_compared".into(), Json::U64(self.data_compared)),
            (
                "dist_computations".into(),
                Json::U64(self.dist_computations),
            ),
            ("logical_reads".into(), Json::U64(self.logical_reads)),
            ("physical_reads".into(), Json::U64(self.physical_reads)),
            ("pool_hits".into(), Json::U64(self.pool_hits())),
            ("hit_rate".into(), Json::F64(self.hit_rate())),
            ("duration_ns".into(), Json::U64(self.duration_ns)),
            ("results".into(), Json::U64(self.results)),
        ];
        if !self.children.is_empty() {
            fields.push((
                "children".into(),
                Json::Arr(self.children.iter().map(|c| c.to_json_value()).collect()),
            ));
        }
        Json::Obj(fields)
    }

    /// Serializes the trace as pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// Parses a trace previously produced by [`QueryTrace::to_json`].
    pub fn from_json(text: &str) -> Result<QueryTrace, String> {
        let doc = json::parse(text)?;
        Self::from_json_value(&doc)
    }

    /// Builds a trace from an already-parsed JSON document (recursive entry
    /// point for nested `children`).
    pub fn from_json_value(doc: &Json) -> Result<QueryTrace, String> {
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let u64_field = |node: &Json, key: &str| -> Result<u64, String> {
            node.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let mut levels = Vec::new();
        for l in doc
            .get("levels")
            .and_then(Json::as_arr)
            .ok_or("missing `levels` array")?
        {
            levels.push(LevelTrace {
                level: u64_field(l, "level")? as u32,
                nodes_visited: u64_field(l, "nodes_visited")?,
                entries_pruned: u64_field(l, "entries_pruned")?,
                lower_bound_evals: u64_field(l, "lower_bound_evals")?,
                exact_distances: u64_field(l, "exact_distances")?,
            });
        }
        let mut children = Vec::new();
        if let Some(arr) = doc.get("children").and_then(Json::as_arr) {
            for c in arr {
                children.push(QueryTrace::from_json_value(c)?);
            }
        }
        Ok(QueryTrace {
            query: str_field("query")?,
            index: str_field("index")?,
            levels,
            nodes_accessed: u64_field(doc, "nodes_accessed")?,
            data_compared: u64_field(doc, "data_compared")?,
            dist_computations: u64_field(doc, "dist_computations")?,
            logical_reads: u64_field(doc, "logical_reads")?,
            physical_reads: u64_field(doc, "physical_reads")?,
            duration_ns: u64_field(doc, "duration_ns")?,
            results: u64_field(doc, "results")?,
            children,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        let mut t = QueryTrace::new("knn k=5", "sg-tree");
        t.visit(2);
        t.visit(1);
        t.visit(1);
        t.visit(0);
        t.lower_bounds(2, 8);
        t.lower_bounds(1, 12);
        t.pruned(1, 5);
        t.pruned(0, 9);
        t.exact(0, 23);
        t.nodes_accessed = 4;
        t.data_compared = 23;
        t.dist_computations = 43;
        t.logical_reads = 4;
        t.physical_reads = 1;
        t.duration_ns = 1_500_000;
        t.results = 5;
        t
    }

    #[test]
    fn accumulators_group_by_level() {
        let t = sample();
        let dir1 = t.levels.iter().find(|l| l.level == 1).unwrap();
        assert_eq!(dir1.nodes_visited, 2);
        assert_eq!(dir1.entries_pruned, 5);
        assert_eq!(dir1.lower_bound_evals, 12);
        let leaf = t.levels.iter().find(|l| l.level == 0).unwrap();
        assert_eq!(leaf.exact_distances, 23);
    }

    #[test]
    fn hit_rate_derivation() {
        let t = sample();
        assert_eq!(t.pool_hits(), 3);
        assert!((t.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(QueryTrace::default().hit_rate(), 0.0);
    }

    #[test]
    fn render_mentions_all_sections() {
        let text = sample().render();
        assert!(text.contains("EXPLAIN knn k=5 on sg-tree"), "{text}");
        assert!(text.contains("dir-2"), "{text}");
        assert!(text.contains("leaf"), "{text}");
        assert!(text.contains("pool hit rate 75.0%"), "{text}");
        assert!(text.contains("1.500 ms"), "{text}");
        // Root level renders before the leaf level.
        assert!(text.find("dir-2").unwrap() < text.find("leaf").unwrap());
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let t = sample();
        let back = QueryTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn nested_children_roundtrip_and_render() {
        let mut parent = QueryTrace::new("knn k=5 shards=2", "sg-exec");
        parent.nodes_accessed = 8;
        parent.results = 5;
        for shard in 0..2 {
            let mut child = sample();
            child.query = format!("shard-{shard}");
            parent.push_child(child);
        }
        let back = QueryTrace::from_json(&parent.to_json()).unwrap();
        assert_eq!(back, parent);
        assert_eq!(back.children.len(), 2);
        let text = parent.render();
        assert!(
            text.contains("EXPLAIN knn k=5 shards=2 on sg-exec"),
            "{text}"
        );
        assert!(text.contains("EXPLAIN shard-0 on sg-tree"), "{text}");
        assert!(text.contains("EXPLAIN shard-1 on sg-tree"), "{text}");
        // Children render indented below the parent.
        assert!(
            text.find("shard-0").unwrap() < text.find("shard-1").unwrap(),
            "{text}"
        );
        assert!(text.contains("\n    EXPLAIN shard-0"), "{text}");
    }

    #[test]
    fn global_aggregate_folds_children_once() {
        let (traces_before, levels_before) = trace_level_aggregates();
        let before = |lvl: u32| {
            levels_before
                .iter()
                .find(|l| l.level == lvl)
                .cloned()
                .unwrap_or_default()
        };
        let (b0, b1) = (before(0), before(1));
        let mut parent = QueryTrace::new("knn k=5 shards=2", "sg-exec");
        parent.push_child(sample());
        parent.push_child(sample());
        record_trace_levels(&parent);
        let (traces_after, levels_after) = trace_level_aggregates();
        assert_eq!(traces_after, traces_before + 1);
        let after = |lvl: u32| {
            levels_after
                .iter()
                .find(|l| l.level == lvl)
                .cloned()
                .unwrap()
        };
        // Each child contributes its per-level counts exactly once.
        assert_eq!(after(0).exact_distances, b0.exact_distances + 2 * 23);
        assert_eq!(after(1).entries_pruned, b1.entries_pruned + 2 * 5);
        assert_eq!(after(1).nodes_visited, b1.nodes_visited + 2 * 2);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(QueryTrace::from_json("{}").is_err());
        assert!(QueryTrace::from_json("not json").is_err());
        let missing_total = r#"{"query":"q","index":"i","levels":[]}"#;
        assert!(QueryTrace::from_json(missing_total).is_err());
    }
}
