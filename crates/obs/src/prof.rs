//! `sg-prof`: a continuous span-stack sampling profiler.
//!
//! A zero-dependency timer thread wakes `hz` times per second and, on
//! each tick, snapshots every thread's **live span stack** — the
//! lock-free mirror each [`crate::span::Span`] maintains next to its
//! flight ring — plus each thread's CPU clock (vendored
//! `CLOCK_THREAD_CPUTIME_ID` readings, see the `cputime` shim).
//! Samples aggregate into **folded stacks**, the flamegraph interchange
//! format:
//!
//! ```text
//! serve.request;exec.shard;core.query 42
//! ```
//!
//! one line per distinct root-to-leaf path, weighted by sample count.
//! Each stack also accumulates the sampled threads' CPU-time deltas, so
//! wall-biased (sample count) and CPU-biased (cpu_ns) views come from
//! the same pass.
//!
//! Two design points mirror the flight recorder:
//!
//! * **Off is free.** With the profiler stopped, instrumentation sites
//!   pay the same single relaxed load as with tracing off. Starting the
//!   profiler flips [`crate::span::set_profiling`], which makes span
//!   guards maintain the live mirrors without touching the rings.
//! * **Reads are bounded.** [`folded_bounded`] never builds a document
//!   over its byte cap; it bails with a [`ProfOverflow`] carrying a
//!   workable `limit` hint, exactly like the flight dump.
//!
//! The aggregator ([`FoldedProfile`]) is a pure value type: merging is
//! associative and conserves counts (property-tested), which is what
//! makes the sampler's tick-local → global two-level aggregation safe.

use crate::json::Json;
use crate::span;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Hard cap on distinct folded stacks retained by the global profile;
/// samples for stacks beyond it are counted in `dropped` instead of
/// growing without bound (span vocabularies are small, so in practice
/// this is never hit).
pub const MAX_DISTINCT_STACKS: usize = 8192;

// ---------------------------------------------------------------------------
// Folded-stack aggregation (pure, property-tested)
// ---------------------------------------------------------------------------

/// Weights accumulated for one distinct stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackCount {
    /// Timer ticks that caught this stack live.
    pub samples: u64,
    /// Thread CPU nanoseconds attributed to this stack.
    pub cpu_ns: u64,
}

impl StackCount {
    fn add(&mut self, other: StackCount) {
        self.samples += other.samples;
        self.cpu_ns += other.cpu_ns;
    }
}

/// An aggregate of folded stacks keyed by interned span-name paths
/// (root first). Pure value semantics: [`FoldedProfile::merge`] is
/// associative and commutative, and conserves both weights.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldedProfile {
    stacks: BTreeMap<Vec<u16>, StackCount>,
}

impl FoldedProfile {
    /// An empty profile.
    pub fn new() -> FoldedProfile {
        FoldedProfile::default()
    }

    /// Adds `count` to the stack keyed by interned frames (root first).
    /// Empty stacks (idle threads) are not recorded.
    pub fn record(&mut self, frames: &[u16], count: StackCount) {
        if frames.is_empty() {
            return;
        }
        self.stacks.entry(frames.to_vec()).or_default().add(count);
    }

    /// Folds `other` into `self`, stack by stack.
    pub fn merge(&mut self, other: &FoldedProfile) {
        for (frames, count) in &other.stacks {
            self.stacks.entry(frames.clone()).or_default().add(*count);
        }
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Whether no stack has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Total samples across every stack.
    pub fn total_samples(&self) -> u64 {
        self.stacks.values().map(|c| c.samples).sum()
    }

    /// Total CPU nanoseconds across every stack.
    pub fn total_cpu_ns(&self) -> u64 {
        self.stacks.values().map(|c| c.cpu_ns).sum()
    }

    /// Empties the profile.
    pub fn clear(&mut self) {
        self.stacks.clear();
    }

    /// The stacks with names resolved, heaviest (by samples) first.
    pub fn resolved(&self) -> Vec<FoldedStack> {
        let mut out: Vec<FoldedStack> = self
            .stacks
            .iter()
            .map(|(frames, count)| FoldedStack {
                frames: frames.iter().map(|&f| span::resolve(f)).collect(),
                samples: count.samples,
                cpu_ns: count.cpu_ns,
            })
            .collect();
        out.sort_by(|a, b| {
            b.samples
                .cmp(&a.samples)
                .then_with(|| a.frames.cmp(&b.frames))
        });
        out
    }
}

/// One resolved folded stack: the root-to-leaf span-name path and its
/// accumulated weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedStack {
    /// Span names, root first.
    pub frames: Vec<&'static str>,
    /// Timer ticks that caught this stack live.
    pub samples: u64,
    /// Thread CPU nanoseconds attributed to this stack.
    pub cpu_ns: u64,
}

impl FoldedStack {
    /// The flamegraph folded line: `a;b;c 42`.
    pub fn folded_line(&self) -> String {
        format!("{} {}", self.frames.join(";"), self.samples)
    }
}

// ---------------------------------------------------------------------------
// The global sampler
// ---------------------------------------------------------------------------

struct ProfShared {
    agg: Mutex<FoldedProfile>,
    running: AtomicBool,
    hz: AtomicU64,
    /// Timer ticks taken since the last [`clear`].
    ticks: AtomicU64,
    /// Samples discarded because [`MAX_DISTINCT_STACKS`] was reached.
    dropped: AtomicU64,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

fn shared() -> &'static ProfShared {
    static PROF: OnceLock<ProfShared> = OnceLock::new();
    PROF.get_or_init(|| ProfShared {
        agg: Mutex::new(FoldedProfile::new()),
        running: AtomicBool::new(false),
        hz: AtomicU64::new(0),
        ticks: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        handle: Mutex::new(None),
    })
}

/// Takes one sample of every registered thread: live stacks (skipping a
/// thread caught mid-update) weighted 1 sample each, plus each thread's
/// CPU delta since its entry in `last_cpu` attributed to its current
/// stack. Threads with empty stacks advance `last_cpu` without
/// recording, so idle CPU is never attributed to a later stack.
fn sample_threads(last_cpu: &mut HashMap<u64, u64>) -> FoldedProfile {
    let rings: Vec<_> = span::rings().lock().unwrap().clone();
    let mut tick = FoldedProfile::new();
    for ring in &rings {
        let cpu_now = ring.cpu_ns();
        let cpu_delta = match cpu_now {
            Some(now) => {
                let last = last_cpu.insert(ring.tid(), now);
                now.saturating_sub(last.unwrap_or(now))
            }
            None => 0, // thread exited (or no CPU clocks on this target)
        };
        let Some(stack) = ring.live_stack() else {
            continue; // torn on every retry: owner is busy, skip this tick
        };
        if stack.is_empty() {
            continue;
        }
        let frames: Vec<u16> = stack.iter().map(|&(name, _cat)| name).collect();
        tick.record(
            &frames,
            StackCount {
                samples: 1,
                cpu_ns: cpu_delta,
            },
        );
    }
    tick
}

fn fold_into_global(tick: &FoldedProfile) {
    let s = shared();
    s.ticks.fetch_add(1, Ordering::Relaxed);
    let mut agg = s.agg.lock().unwrap();
    for (frames, count) in &tick.stacks {
        if agg.stacks.len() >= MAX_DISTINCT_STACKS && !agg.stacks.contains_key(frames) {
            s.dropped.fetch_add(count.samples, Ordering::Relaxed);
            continue;
        }
        agg.stacks.entry(frames.clone()).or_default().add(*count);
    }
}

/// Takes one sample right now on the calling thread (used by tests and
/// one-shot dumps; the timer thread does the same thing on a cadence).
/// CPU deltas are measured against `last_cpu`, which the caller owns.
pub fn sample_once(last_cpu: &mut HashMap<u64, u64>) {
    let tick = sample_threads(last_cpu);
    fold_into_global(&tick);
}

/// Starts the sampling profiler at `hz` samples per second (clamped to
/// [1, 10_000]). Flips span profiling on so live stacks are maintained.
/// Returns `false` (and changes nothing) if it is already running.
pub fn start(hz: u32) -> bool {
    let s = shared();
    if s.running.swap(true, Ordering::SeqCst) {
        return false;
    }
    let hz = hz.clamp(1, 10_000);
    s.hz.store(hz as u64, Ordering::Relaxed);
    span::set_profiling(true);
    let handle = std::thread::Builder::new()
        .name("sg-prof".into())
        .spawn(move || {
            let period = Duration::from_nanos(1_000_000_000 / hz as u64);
            let mut last_cpu: HashMap<u64, u64> = HashMap::new();
            let mut next = Instant::now() + period;
            while shared().running.load(Ordering::Relaxed) {
                let now = Instant::now();
                if now < next {
                    std::thread::sleep(next - now);
                }
                // Deadline pacing: late ticks don't compound, bursts
                // after a stall are capped at one catch-up tick.
                next = Instant::now().max(next) + period;
                sample_once(&mut last_cpu);
            }
        })
        .expect("spawning the profiler thread");
    *s.handle.lock().unwrap() = Some(handle);
    true
}

/// Stops the sampling profiler and joins its thread. The accumulated
/// profile is retained (dumpable after stop); [`clear`] resets it.
pub fn stop() {
    let s = shared();
    if !s.running.swap(false, Ordering::SeqCst) {
        return;
    }
    if let Some(h) = s.handle.lock().unwrap().take() {
        let _ = h.join();
    }
    span::set_profiling(false);
}

/// Whether the sampler thread is running.
pub fn is_running() -> bool {
    shared().running.load(Ordering::Relaxed)
}

/// The configured sampling rate (Hz); meaningful while running.
pub fn hz() -> u64 {
    shared().hz.load(Ordering::Relaxed)
}

/// Timer ticks taken since the last [`clear`].
pub fn ticks() -> u64 {
    shared().ticks.load(Ordering::Relaxed)
}

/// Resets the accumulated profile and its counters.
pub fn clear() {
    let s = shared();
    s.agg.lock().unwrap().clear();
    s.ticks.store(0, Ordering::Relaxed);
    s.dropped.store(0, Ordering::Relaxed);
}

/// A point-in-time copy of the accumulated profile.
pub fn snapshot() -> FoldedProfile {
    shared().agg.lock().unwrap().clone()
}

// ---------------------------------------------------------------------------
// Serializers
// ---------------------------------------------------------------------------

/// Why [`folded_bounded`] refused to serialize: the document would have
/// exceeded `max_bytes`. Mirrors the flight recorder's overflow shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfOverflow {
    /// Stacks available after applying the caller's `limit`.
    pub stacks_total: usize,
    /// Stacks that fit within `max_bytes` before the bail-out.
    pub stacks_fit: usize,
    /// The byte cap that was exceeded.
    pub max_bytes: usize,
}

/// The accumulated profile as folded-stack text (`a;b;c 42`, one line
/// per stack, heaviest first), never building a document larger than
/// `max_bytes`. `limit` keeps only the heaviest N stacks.
pub fn folded_bounded(max_bytes: usize, limit: Option<usize>) -> Result<String, ProfOverflow> {
    let mut stacks = snapshot().resolved();
    if let Some(n) = limit {
        stacks.truncate(n);
    }
    let mut out = String::new();
    for (i, s) in stacks.iter().enumerate() {
        let line = s.folded_line();
        if out.len() + line.len() + 1 > max_bytes {
            return Err(ProfOverflow {
                stacks_total: stacks.len(),
                stacks_fit: i,
                max_bytes,
            });
        }
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// The accumulated profile as folded-stack text, unbounded (SIGUSR2
/// dumps to disk, tests).
pub fn folded_text() -> String {
    folded_bounded(usize::MAX, None).expect("unbounded folded text cannot overflow")
}

fn flame_children(stacks: &[(Vec<&'static str>, StackCount)], depth: usize) -> Vec<Json> {
    // Group the stacks that are at least `depth + 1` deep by their
    // frame at `depth`; each group becomes one child node.
    let mut groups: BTreeMap<&'static str, Vec<(Vec<&'static str>, StackCount)>> = BTreeMap::new();
    for (frames, count) in stacks {
        if let Some(&name) = frames.get(depth) {
            groups
                .entry(name)
                .or_default()
                .push((frames.clone(), *count));
        }
    }
    groups
        .into_iter()
        .map(|(name, group)| {
            let samples: u64 = group.iter().map(|(_, c)| c.samples).sum();
            let cpu_ns: u64 = group.iter().map(|(_, c)| c.cpu_ns).sum();
            Json::Obj(vec![
                ("name".to_string(), Json::Str(name.to_string())),
                ("value".to_string(), Json::U64(samples)),
                ("cpu_ns".to_string(), Json::U64(cpu_ns)),
                (
                    "children".to_string(),
                    Json::Arr(flame_children(&group, depth + 1)),
                ),
            ])
        })
        .collect()
}

/// Per-name **self** weights: each sampled stack charges its leaf frame
/// (the frame actually executing). Heaviest first — what `sg-top`'s
/// "hot spans" row shows.
pub fn self_weights(profile: &FoldedProfile) -> Vec<(&'static str, StackCount)> {
    let mut by_name: BTreeMap<&'static str, StackCount> = BTreeMap::new();
    for s in profile.resolved() {
        if let Some(&leaf) = s.frames.last() {
            by_name.entry(leaf).or_default().add(StackCount {
                samples: s.samples,
                cpu_ns: s.cpu_ns,
            });
        }
    }
    let mut out: Vec<_> = by_name.into_iter().collect();
    out.sort_by(|a, b| b.1.samples.cmp(&a.1.samples).then_with(|| a.0.cmp(b.0)));
    out
}

/// The accumulated profile as a d3-flamegraph-compatible JSON tree
/// (`{name, value, children}` from a synthetic root), with sampler
/// metadata and per-name self weights alongside (extra keys are ignored
/// by d3). `limit` keeps only the heaviest N stacks.
pub fn flame_json(limit: Option<usize>) -> Json {
    let profile = snapshot();
    let mut stacks: Vec<(Vec<&'static str>, StackCount)> = profile
        .resolved()
        .into_iter()
        .map(|s| {
            (
                s.frames,
                StackCount {
                    samples: s.samples,
                    cpu_ns: s.cpu_ns,
                },
            )
        })
        .collect();
    if let Some(n) = limit {
        stacks.truncate(n);
    }
    let total: u64 = stacks.iter().map(|(_, c)| c.samples).sum();
    let total_cpu: u64 = stacks.iter().map(|(_, c)| c.cpu_ns).sum();
    let self_rows: Vec<Json> = self_weights(&profile)
        .into_iter()
        .map(|(name, c)| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(name.to_string())),
                ("samples".to_string(), Json::U64(c.samples)),
                ("cpu_ns".to_string(), Json::U64(c.cpu_ns)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("name".to_string(), Json::Str("root".to_string())),
        ("value".to_string(), Json::U64(total)),
        ("cpu_ns".to_string(), Json::U64(total_cpu)),
        (
            "children".to_string(),
            Json::Arr(flame_children(&stacks, 0)),
        ),
        ("hz".to_string(), Json::U64(hz())),
        ("ticks".to_string(), Json::U64(ticks())),
        (
            "dropped".to_string(),
            Json::U64(shared().dropped.load(Ordering::Relaxed)),
        ),
        ("running".to_string(), Json::Bool(is_running())),
        ("self".to_string(), Json::Arr(self_rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    /// Serializes tests that toggle the global profiler/recorder.
    fn prof_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn folded_profile_records_and_merges() {
        let mut a = FoldedProfile::new();
        a.record(
            &[1, 2, 3],
            StackCount {
                samples: 2,
                cpu_ns: 100,
            },
        );
        a.record(
            &[1, 2],
            StackCount {
                samples: 1,
                cpu_ns: 40,
            },
        );
        let mut b = FoldedProfile::new();
        b.record(
            &[1, 2, 3],
            StackCount {
                samples: 5,
                cpu_ns: 10,
            },
        );
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_samples(), 8);
        assert_eq!(a.total_cpu_ns(), 150);
        assert_eq!(
            a.stacks.get(&vec![1, 2, 3]).copied(),
            Some(StackCount {
                samples: 7,
                cpu_ns: 110
            })
        );
        // Empty stacks are never recorded.
        a.record(
            &[],
            StackCount {
                samples: 9,
                cpu_ns: 9,
            },
        );
        assert_eq!(a.total_samples(), 8);
    }

    #[test]
    fn live_sampling_reproduces_the_span_hierarchy() {
        let _g = prof_lock();
        crate::span::set_profiling(true);
        clear();
        {
            let _root = Span::root(crate::span::next_trace_id(), "prof.root", "test");
            let _mid = Span::start("prof.mid", "test");
            let _leaf = Span::start("prof.leaf", "test");
            let mut last = HashMap::new();
            sample_once(&mut last);
            sample_once(&mut last);
        }
        crate::span::set_profiling(false);
        let stacks = snapshot().resolved();
        let ours: Vec<_> = stacks
            .iter()
            .filter(|s| s.frames.first() == Some(&"prof.root"))
            .collect();
        assert_eq!(ours.len(), 1, "stacks: {stacks:?}");
        assert_eq!(ours[0].frames, vec!["prof.root", "prof.mid", "prof.leaf"]);
        assert_eq!(ours[0].samples, 2);
        // The folded line round-trips the path.
        assert_eq!(ours[0].folded_line(), "prof.root;prof.mid;prof.leaf 2");
        clear();
    }

    #[test]
    fn dropped_guard_empties_the_live_stack() {
        let _g = prof_lock();
        crate::span::set_profiling(true);
        clear();
        {
            let _s = Span::root(crate::span::next_trace_id(), "prof.transient", "test");
        }
        // All spans closed: this thread contributes nothing.
        let mut last = HashMap::new();
        sample_once(&mut last);
        let stacks = snapshot().resolved();
        assert!(
            !stacks.iter().any(|s| s.frames.contains(&"prof.transient")),
            "closed span still sampled: {stacks:?}"
        );
        crate::span::set_profiling(false);
        clear();
    }

    #[test]
    fn sampler_thread_runs_and_stops() {
        let _g = prof_lock();
        clear();
        assert!(start(997));
        assert!(!start(997), "double start must refuse");
        assert!(is_running());
        assert_eq!(hz(), 997);
        let _span = Span::root(crate::span::next_trace_id(), "prof.spin", "test");
        let until = Instant::now() + Duration::from_millis(300);
        while ticks() < 3 && Instant::now() < until {
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(_span);
        stop();
        assert!(!is_running());
        assert!(ticks() >= 3, "sampler took {} ticks", ticks());
        let stacks = snapshot().resolved();
        assert!(
            stacks.iter().any(|s| s.frames == vec!["prof.spin"]),
            "live span not sampled: {stacks:?}"
        );
        clear();
    }

    #[test]
    fn folded_bounded_caps_bytes_with_a_useful_hint() {
        let _g = prof_lock();
        clear();
        {
            let mut agg = shared().agg.lock().unwrap();
            for i in 0..64u16 {
                let name: &'static str = Box::leak(format!("bounded.{i}").into_boxed_str());
                agg.record(
                    &[crate::span::intern_for_test(name)],
                    StackCount {
                        samples: (i + 1) as u64,
                        cpu_ns: 0,
                    },
                );
            }
        }
        let full = folded_text();
        assert_eq!(full.lines().count(), 64);
        let err = folded_bounded(64, None).unwrap_err();
        assert_eq!(err.max_bytes, 64);
        assert!(err.stacks_fit < err.stacks_total);
        // A limit keeps the heaviest stacks and fits.
        let top = folded_bounded(1 << 20, Some(3)).unwrap();
        assert_eq!(top.lines().count(), 3);
        assert!(top.lines().next().unwrap().ends_with(" 64"));
        clear();
    }

    #[test]
    fn flame_json_nests_and_conserves_values() {
        let _g = prof_lock();
        clear();
        {
            let mut agg = shared().agg.lock().unwrap();
            // Two paths sharing a root; values must roll up.
            let (a, b, c) = (
                crate::span::intern_for_test("flame.a"),
                crate::span::intern_for_test("flame.b"),
                crate::span::intern_for_test("flame.c"),
            );
            agg.record(
                &[a, b],
                StackCount {
                    samples: 3,
                    cpu_ns: 30,
                },
            );
            agg.record(
                &[a, c],
                StackCount {
                    samples: 2,
                    cpu_ns: 20,
                },
            );
        }
        let doc = flame_json(None);
        let text = doc.to_string_compact();
        let parsed = crate::json::parse(&text).expect("flame JSON parses");
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("root"));
        assert_eq!(parsed.get("value").unwrap().as_u64(), Some(5));
        let children = parsed.get("children").unwrap().as_arr().unwrap();
        let a = children
            .iter()
            .find(|c| c.get("name").unwrap().as_str() == Some("flame.a"))
            .expect("root child flame.a");
        assert_eq!(a.get("value").unwrap().as_u64(), Some(5));
        let grand = a.get("children").unwrap().as_arr().unwrap();
        assert_eq!(grand.len(), 2);
        let vals: u64 = grand
            .iter()
            .map(|g| g.get("value").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(vals, 5);
        // Self weights: leaves carry everything, the shared root nothing.
        let selfs = self_weights(&snapshot());
        assert!(selfs.iter().any(|(n, c)| *n == "flame.b" && c.samples == 3));
        assert!(!selfs.iter().any(|(n, _)| *n == "flame.a"));
        clear();
    }
}
