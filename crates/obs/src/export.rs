//! Snapshot exporters: Prometheus text format and JSON.

use std::fmt::Write as _;

use crate::json::Json;
use crate::metrics::{bucket_upper_bound, HistogramSnapshot, MetricValue, RegistrySnapshot};

/// Rewrites a registry name into a Prometheus-legal metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Histograms emit cumulative `_bucket{le=...}` series over the base-2
/// bucket bounds (empty buckets are folded into the next non-empty
/// one), plus `_sum` and `_count`.
pub fn to_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        let pname = prom_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {pname} counter");
                let _ = writeln!(out, "{pname} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {pname} histogram");
                let mut cumulative = 0u64;
                for (b, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "{pname}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper_bound(b)
                    );
                }
                let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{pname}_sum {}", h.sum);
                let _ = writeln!(out, "{pname}_count {}", h.count);
            }
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    // Sparse bucket encoding: [[bucket_index, count], ...].
    let buckets = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(b, &n)| Json::Arr(vec![Json::U64(b as u64), Json::U64(n)]))
        .collect();
    Json::Obj(vec![
        ("type".into(), Json::Str("histogram".into())),
        ("count".into(), Json::U64(h.count)),
        ("sum".into(), Json::U64(h.sum)),
        ("min".into(), Json::U64(h.min)),
        ("max".into(), Json::U64(h.max)),
        ("mean".into(), Json::F64(h.mean())),
        ("p50".into(), Json::U64(h.quantile(0.50))),
        ("p99".into(), Json::U64(h.quantile(0.99))),
        ("buckets".into(), Json::Arr(buckets)),
    ])
}

/// Builds the JSON document for a snapshot (name → typed value object).
pub fn to_json_value(snapshot: &RegistrySnapshot) -> Json {
    Json::Obj(
        snapshot
            .metrics
            .iter()
            .map(|(name, value)| {
                let v = match value {
                    MetricValue::Counter(v) => Json::Obj(vec![
                        ("type".into(), Json::Str("counter".into())),
                        ("value".into(), Json::U64(*v)),
                    ]),
                    MetricValue::Gauge(v) => Json::Obj(vec![
                        ("type".into(), Json::Str("gauge".into())),
                        ("value".into(), Json::I64(*v)),
                    ]),
                    MetricValue::Histogram(h) => histogram_json(h),
                };
                (name.clone(), v)
            })
            .collect(),
    )
}

/// Renders a snapshot as pretty JSON.
pub fn to_json(snapshot: &RegistrySnapshot) -> String {
    to_json_value(snapshot).to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::Registry;

    fn sample() -> RegistrySnapshot {
        let r = Registry::new();
        r.counter("tree.queries").add(7);
        r.gauge("pool.frames").set(-3);
        let h = r.histogram("tree.query_ns");
        h.record(100);
        h.record(3000);
        r.snapshot()
    }

    #[test]
    fn prometheus_format_shape() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE tree_queries counter"), "{text}");
        assert!(text.contains("tree_queries 7"), "{text}");
        assert!(text.contains("pool_frames -3"), "{text}");
        assert!(
            text.contains("tree_query_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("tree_query_ns_sum 3100"), "{text}");
        // Cumulative counts are monotone.
        assert!(text.contains("le=\"127\"} 1"), "{text}");
        assert!(text.contains("le=\"4095\"} 2"), "{text}");
    }

    #[test]
    fn json_export_parses_back() {
        let text = to_json(&sample());
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("tree.queries")
                .unwrap()
                .get("value")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        let hist = doc.get("tree.query_ns").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(3100));
        assert_eq!(hist.get("min").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("tree.query-ns/total"), "tree_query_ns_total");
        assert_eq!(prom_name("9lives"), "_9lives");
    }
}
