//! Snapshot exporters: Prometheus text format and JSON.

use std::fmt::Write as _;

use crate::json::Json;
use crate::metrics::{bucket_upper_bound, HistogramSnapshot, MetricValue, RegistrySnapshot};

/// Rewrites a registry name into a Prometheus-legal metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote, and newline must be backslash-escaped.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Builds a labeled registry name: `base{key="value",...}` with label
/// names sanitized to `[a-zA-Z_][a-zA-Z0-9_]*` and values escaped via
/// [`escape_label_value`]. Register metrics under the returned string
/// and [`to_prometheus`] emits them as labeled series — values carrying
/// backslashes, quotes, or newlines stay legal exposition text.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::from(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if k.chars().next().map_or(true, |c| c.is_ascii_digit()) {
            out.push('_');
        }
        for c in k.chars() {
            out.push(if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            });
        }
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a registry name into its base and an optional pre-escaped
/// `{...}` label block (as produced by [`labeled`]). A stray `{` that
/// is not part of a well-formed block is treated as part of the name.
fn split_series(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) if name.ends_with('}') && open > 0 => (&name[..open], Some(&name[open..])),
        _ => (name, None),
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Histograms emit cumulative `_bucket{le=...}` series over the base-2
/// bucket bounds (empty buckets are folded into the next non-empty
/// one), plus `_sum` and `_count`.
pub fn to_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    // Labeled series of one base metric sort adjacently in the
    // BTreeMap; emit the `# TYPE` header once per base name.
    let mut last_typed: Option<String> = None;
    for (name, value) in &snapshot.metrics {
        let (base, labels) = split_series(name);
        let pname = prom_name(base);
        // The label block was escaped when the series was registered
        // (see `labeled`); it passes through verbatim.
        let labels = labels.unwrap_or("");
        // Appends `le` to an existing label block, or opens a new one.
        let le_labels = |le: &str| -> String {
            match labels.strip_suffix('}') {
                Some(head) => format!("{head},le=\"{le}\"}}"),
                None => format!("{{le=\"{le}\"}}"),
            }
        };
        let mut type_line = |kind: &str, out: &mut String| {
            if last_typed.as_deref() != Some(pname.as_str()) {
                let _ = writeln!(out, "# TYPE {pname} {kind}");
                last_typed = Some(pname.clone());
            }
        };
        match value {
            MetricValue::Counter(v) => {
                type_line("counter", &mut out);
                let _ = writeln!(out, "{pname}{labels} {v}");
            }
            MetricValue::Gauge(v) => {
                type_line("gauge", &mut out);
                let _ = writeln!(out, "{pname}{labels} {v}");
            }
            MetricValue::Histogram(h) => {
                type_line("histogram", &mut out);
                let mut cumulative = 0u64;
                for (b, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "{pname}_bucket{} {cumulative}",
                        le_labels(&bucket_upper_bound(b).to_string())
                    );
                }
                let _ = writeln!(out, "{pname}_bucket{} {}", le_labels("+Inf"), h.count);
                let _ = writeln!(out, "{pname}_sum{labels} {}", h.sum);
                let _ = writeln!(out, "{pname}_count{labels} {}", h.count);
            }
        }
    }
    out
}

/// A minimal parser for the Prometheus text exposition format — just
/// enough to *check* what [`to_prometheus`] emits. Used by the
/// conformance tests; deliberately strict (any surprise is an `Err`).
#[cfg(test)]
pub(crate) mod textparse {
    /// One parsed line of exposition text.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Line {
        /// `# TYPE <name> <kind>`
        Type { name: String, kind: String },
        /// `<name>{labels} <value>`
        Sample {
            name: String,
            labels: Vec<(String, String)>,
            value: f64,
        },
    }

    /// Reverses [`super::escape_label_value`]. Errors on a dangling or
    /// unknown escape.
    pub fn unescape_label_value(v: &str) -> Result<String, String> {
        let mut out = String::with_capacity(v.len());
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                other => return Err(format!("bad escape \\{other:?}")),
            }
        }
        Ok(out)
    }

    fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
        // s is the text between `{` and `}`.
        let mut labels = Vec::new();
        let mut rest = s;
        while !rest.is_empty() {
            let eq = rest.find('=').ok_or("label without '='")?;
            let key = rest[..eq].trim().to_string();
            rest = rest[eq + 1..].strip_prefix('"').ok_or("unquoted value")?;
            // Scan to the closing quote, honouring backslash escapes.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in rest.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.ok_or("unterminated label value")?;
            labels.push((key, unescape_label_value(&rest[..end])?));
            rest = &rest[end + 1..];
            rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
        }
        Ok(labels)
    }

    /// Parses a whole exposition document.
    pub fn parse(text: &str) -> Result<Vec<Line>, String> {
        let mut out = Vec::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().ok_or("TYPE without name")?.to_string();
                let kind = parts.next().ok_or("TYPE without kind")?.to_string();
                if parts.next().is_some() {
                    return Err(format!("trailing tokens in TYPE line: {line}"));
                }
                out.push(Line::Type { name, kind });
                continue;
            }
            if line.starts_with('#') {
                continue; // other comments (HELP etc.)
            }
            // Find the end of the series (the `}` outside any quoted
            // label value, or the first space when there are no labels).
            let mut close = None;
            let (mut in_quotes, mut escaped) = (false, false);
            for (i, c) in line.char_indices() {
                match c {
                    _ if escaped => escaped = false,
                    '\\' if in_quotes => escaped = true,
                    '"' => in_quotes = !in_quotes,
                    '{' if !in_quotes => {}
                    '}' if !in_quotes => {
                        close = Some(i);
                        break;
                    }
                    ' ' if !in_quotes && close.is_none() && !line[..i].contains('{') => {
                        break;
                    }
                    _ => {}
                }
            }
            let (series, value) = match close {
                Some(close) => {
                    let value = line[close + 1..].trim();
                    (&line[..close + 1], value)
                }
                None => {
                    let sp = line.find(' ').ok_or("sample without value")?;
                    (&line[..sp], line[sp + 1..].trim())
                }
            };
            let value: f64 = value
                .parse()
                .map_err(|e| format!("bad sample value {value:?}: {e}"))?;
            let (name, labels) = match series.find('{') {
                Some(open) => {
                    let body = series[open + 1..].strip_suffix('}').ok_or("missing '}'")?;
                    (series[..open].to_string(), parse_labels(body)?)
                }
                None => (series.to_string(), Vec::new()),
            };
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                || name.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                return Err(format!("illegal metric name {name:?}"));
            }
            out.push(Line::Sample {
                name,
                labels,
                value,
            });
        }
        Ok(out)
    }
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    // Sparse bucket encoding: [[bucket_index, count], ...].
    let buckets = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(b, &n)| Json::Arr(vec![Json::U64(b as u64), Json::U64(n)]))
        .collect();
    Json::Obj(vec![
        ("type".into(), Json::Str("histogram".into())),
        ("count".into(), Json::U64(h.count)),
        ("sum".into(), Json::U64(h.sum)),
        ("min".into(), Json::U64(h.min)),
        ("max".into(), Json::U64(h.max)),
        ("mean".into(), Json::F64(h.mean())),
        ("p50".into(), Json::U64(h.quantile(0.50))),
        ("p99".into(), Json::U64(h.quantile(0.99))),
        ("buckets".into(), Json::Arr(buckets)),
    ])
}

/// Builds the JSON document for a snapshot (name → typed value object).
pub fn to_json_value(snapshot: &RegistrySnapshot) -> Json {
    Json::Obj(
        snapshot
            .metrics
            .iter()
            .map(|(name, value)| {
                let v = match value {
                    MetricValue::Counter(v) => Json::Obj(vec![
                        ("type".into(), Json::Str("counter".into())),
                        ("value".into(), Json::U64(*v)),
                    ]),
                    MetricValue::Gauge(v) => Json::Obj(vec![
                        ("type".into(), Json::Str("gauge".into())),
                        ("value".into(), Json::I64(*v)),
                    ]),
                    MetricValue::Histogram(h) => histogram_json(h),
                };
                (name.clone(), v)
            })
            .collect(),
    )
}

/// Renders a snapshot as pretty JSON.
pub fn to_json(snapshot: &RegistrySnapshot) -> String {
    to_json_value(snapshot).to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::Registry;

    fn sample() -> RegistrySnapshot {
        let r = Registry::new();
        r.counter("tree.queries").add(7);
        r.gauge("pool.frames").set(-3);
        let h = r.histogram("tree.query_ns");
        h.record(100);
        h.record(3000);
        r.snapshot()
    }

    #[test]
    fn prometheus_format_shape() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE tree_queries counter"), "{text}");
        assert!(text.contains("tree_queries 7"), "{text}");
        assert!(text.contains("pool_frames -3"), "{text}");
        assert!(
            text.contains("tree_query_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("tree_query_ns_sum 3100"), "{text}");
        // Cumulative counts are monotone.
        assert!(text.contains("le=\"127\"} 1"), "{text}");
        assert!(text.contains("le=\"4095\"} 2"), "{text}");
    }

    #[test]
    fn json_export_parses_back() {
        let text = to_json(&sample());
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("tree.queries")
                .unwrap()
                .get("value")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        let hist = doc.get("tree.query_ns").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(3100));
        assert_eq!(hist.get("min").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("tree.query-ns/total"), "tree_query_ns_total");
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    #[test]
    fn labeled_builds_escaped_series_names() {
        assert_eq!(labeled("req.total", &[]), "req.total");
        assert_eq!(
            labeled("req.total", &[("path", "/query"), ("1st", "a")]),
            "req.total{path=\"/query\",_1st=\"a\"}"
        );
        assert_eq!(
            labeled("x", &[("k", "a\\b\"c\nd")]),
            "x{k=\"a\\\\b\\\"c\\nd\"}"
        );
    }

    #[test]
    fn hostile_label_values_survive_exposition() {
        use textparse::Line;
        let hostile = "path\\with\\backslash \"quoted\"\nsecond line";
        let r = Registry::new();
        r.counter(&labeled(
            "req.total",
            &[("route", hostile), ("code", "200")],
        ))
        .add(7);
        let h = r.histogram(&labeled("req.ns", &[("route", hostile)]));
        h.record(100);
        h.record(3000);
        let text = to_prometheus(&r.snapshot());
        // The raw value must not appear unescaped (a bare newline would
        // split the sample line).
        assert!(!text.contains(hostile), "{text}");
        let lines = textparse::parse(&text).expect(&text);
        let counter = lines
            .iter()
            .find_map(|l| match l {
                Line::Sample {
                    name,
                    labels,
                    value,
                } if name == "req_total" => Some((labels.clone(), *value)),
                _ => None,
            })
            .expect("req_total sample");
        // Round-trip: parsing the exposition recovers the exact value.
        assert_eq!(
            counter.0,
            vec![
                ("route".to_string(), hostile.to_string()),
                ("code".to_string(), "200".to_string()),
            ]
        );
        assert_eq!(counter.1, 7.0);
        // Histogram buckets merge `le` into the existing label block.
        let bucket = lines
            .iter()
            .find_map(|l| match l {
                Line::Sample { name, labels, .. }
                    if name == "req_ns_bucket"
                        && labels.iter().any(|(k, v)| k == "le" && v == "+Inf") =>
                {
                    Some(labels.clone())
                }
                _ => None,
            })
            .expect("req_ns_bucket +Inf sample");
        assert!(bucket.iter().any(|(k, v)| k == "route" && v == hostile));
        // One TYPE header per base name even with several series.
        let type_count = lines
            .iter()
            .filter(|l| matches!(l, Line::Type { name, .. } if name == "req_total"))
            .count();
        assert_eq!(type_count, 1);
    }

    #[test]
    fn unlabeled_names_with_braces_fall_back_to_sanitizing() {
        let r = Registry::new();
        r.counter("weird{name").add(1);
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("weird_name 1"), "{text}");
        assert!(textparse::parse(&text).is_ok(), "{text}");
    }
}
