//! Metric time-series history.
//!
//! A [`MetricHistory`] is a fixed-capacity ring of whole-registry
//! snapshots; a [`Sampler`] is the background thread that fills it on a
//! fixed interval. The sample path is allocation-free in steady state:
//! ring slots are preallocated and refreshed in place via
//! [`Registry::snapshot_into`], so only a metric registered since the
//! previous tick costs an allocation. Deltas, rates and interval
//! quantiles are computed at *read* time by [`MetricHistory::history_json`],
//! which backs the admin server's `/metrics/history?window=..` endpoint
//! and the `sg-top` dashboard.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::{MetricValue, Registry, RegistrySnapshot};

/// One ring slot: wall/monotonic capture times plus a full registry
/// snapshot.
#[derive(Debug, Clone, Default)]
pub struct Sample {
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Monotonic capture time, milliseconds since the history was
    /// created (immune to wall-clock steps; used for rate math).
    pub mono_ms: u64,
    /// The captured registry state.
    pub snap: RegistrySnapshot,
}

struct Ring {
    slots: Vec<Sample>,
    /// Next slot to overwrite.
    head: usize,
    /// Populated slots (≤ capacity).
    len: usize,
}

/// Fixed-capacity ring of registry snapshots, oldest overwritten first.
pub struct MetricHistory {
    epoch: Instant,
    inner: Mutex<Ring>,
}

impl MetricHistory {
    /// A ring holding at most `capacity` samples (clamped to ≥ 2 so
    /// deltas and rates are always computable once warm).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        MetricHistory {
            epoch: Instant::now(),
            inner: Mutex::new(Ring {
                slots: (0..capacity).map(|_| Sample::default()).collect(),
                head: 0,
                len: 0,
            }),
        }
    }

    /// Maximum samples retained.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().slots.len()
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// True when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Captures one sample, reusing the overwritten slot's allocations.
    pub fn record(&self, registry: &Registry) {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mono_ms = self.epoch.elapsed().as_millis() as u64;
        let mut ring = self.inner.lock().unwrap();
        let head = ring.head;
        let cap = ring.slots.len();
        let slot = &mut ring.slots[head];
        slot.unix_ms = unix_ms;
        slot.mono_ms = mono_ms;
        registry.snapshot_into(&mut slot.snap);
        ring.head = (head + 1) % cap;
        ring.len = (ring.len + 1).min(cap);
    }

    /// Samples oldest→newest; `window` keeps only those within that
    /// trailing duration of the newest sample.
    pub fn samples(&self, window: Option<Duration>) -> Vec<Sample> {
        let ring = self.inner.lock().unwrap();
        let cap = ring.slots.len();
        let start = (ring.head + cap - ring.len) % cap;
        let mut out: Vec<Sample> = (0..ring.len)
            .map(|i| ring.slots[(start + i) % cap].clone())
            .collect();
        drop(ring);
        if let Some(w) = window {
            let w_ms = w.as_millis() as u64;
            if let Some(latest) = out.last().map(|s| s.mono_ms) {
                out.retain(|s| latest.saturating_sub(s.mono_ms) <= w_ms);
            }
        }
        out
    }

    /// The JSON document served on `/metrics/history`: capture
    /// timestamps plus, per metric, the aligned value series and
    /// window-level deltas/rates (counters), levels (gauges), or
    /// interval count/rate and approximate p50/p99/mean over the window
    /// (histograms). All derived numbers are computed here, never on
    /// the sample path.
    pub fn history_json(&self, window: Option<Duration>) -> Json {
        let samples = self.samples(window);
        let span_ms = match (samples.first(), samples.last()) {
            (Some(a), Some(b)) => b.mono_ms.saturating_sub(a.mono_ms),
            _ => 0,
        };
        let span_s = span_ms as f64 / 1e3;
        let mut metrics: Vec<(String, Json)> = Vec::new();
        if let (Some(first), Some(last)) = (samples.first(), samples.last()) {
            for (name, newest) in &last.snap.metrics {
                let series = |f: &dyn Fn(&MetricValue) -> Json| -> Json {
                    Json::Arr(
                        samples
                            .iter()
                            .map(|s| s.snap.metrics.get(name).map_or(Json::Null, &f))
                            .collect(),
                    )
                };
                let entry = match newest {
                    MetricValue::Counter(now) => {
                        let base = match first.snap.metrics.get(name) {
                            Some(MetricValue::Counter(v)) => *v,
                            _ => 0,
                        };
                        let delta = now.saturating_sub(base);
                        Json::Obj(vec![
                            ("type".into(), Json::Str("counter".into())),
                            (
                                "values".into(),
                                series(&|v| match v {
                                    MetricValue::Counter(c) => Json::U64(*c),
                                    _ => Json::Null,
                                }),
                            ),
                            ("delta".into(), Json::U64(delta)),
                            (
                                "rate_per_s".into(),
                                Json::F64(if span_s > 0.0 {
                                    delta as f64 / span_s
                                } else {
                                    0.0
                                }),
                            ),
                        ])
                    }
                    MetricValue::Gauge(now) => Json::Obj(vec![
                        ("type".into(), Json::Str("gauge".into())),
                        (
                            "values".into(),
                            series(&|v| match v {
                                MetricValue::Gauge(g) => Json::I64(*g),
                                _ => Json::Null,
                            }),
                        ),
                        ("last".into(), Json::I64(*now)),
                    ]),
                    MetricValue::Histogram(now) => {
                        let interval = match first.snap.metrics.get(name) {
                            Some(MetricValue::Histogram(base)) => {
                                let mut h = now.clone();
                                for (dst, src) in h.buckets.iter_mut().zip(&base.buckets) {
                                    *dst = dst.saturating_sub(*src);
                                }
                                h.count = h.count.saturating_sub(base.count);
                                h.sum = h.sum.saturating_sub(base.sum);
                                h
                            }
                            _ => now.clone(),
                        };
                        Json::Obj(vec![
                            ("type".into(), Json::Str("histogram".into())),
                            (
                                "counts".into(),
                                series(&|v| match v {
                                    MetricValue::Histogram(h) => Json::U64(h.count),
                                    _ => Json::Null,
                                }),
                            ),
                            ("interval_count".into(), Json::U64(interval.count)),
                            (
                                "rate_per_s".into(),
                                Json::F64(if span_s > 0.0 {
                                    interval.count as f64 / span_s
                                } else {
                                    0.0
                                }),
                            ),
                            ("p50".into(), Json::U64(interval.quantile(0.5))),
                            ("p99".into(), Json::U64(interval.quantile(0.99))),
                            ("mean".into(), Json::F64(interval.mean())),
                        ])
                    }
                };
                metrics.push((name.clone(), entry));
            }
        }
        Json::Obj(vec![
            ("samples".into(), Json::U64(samples.len() as u64)),
            ("capacity".into(), Json::U64(self.capacity() as u64)),
            ("span_ms".into(), Json::U64(span_ms)),
            (
                "t_unix_ms".into(),
                Json::Arr(samples.iter().map(|s| Json::U64(s.unix_ms)).collect()),
            ),
            (
                "t_mono_ms".into(),
                Json::Arr(samples.iter().map(|s| Json::U64(s.mono_ms)).collect()),
            ),
            ("metrics".into(), Json::Obj(metrics)),
        ])
    }
}

/// Background thread that [`MetricHistory::record`]s on a fixed
/// interval. Stops (and joins) on [`Sampler::stop`] or drop. The
/// sampler meters itself: `obs.sampler.samples` counts ticks and
/// `obs.sampler.sample_ns` records per-tick cost, so the history
/// documents its own overhead.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    history: Arc<MetricHistory>,
}

impl Sampler {
    /// Spawns the sampling thread: one sample immediately, then one per
    /// `interval`, into a ring of `capacity` slots.
    pub fn start(registry: Arc<Registry>, interval: Duration, capacity: usize) -> Sampler {
        let history = Arc::new(MetricHistory::new(capacity));
        let stop = Arc::new(AtomicBool::new(false));
        // Register self-metrics up front so the sample loop never
        // allocates for its own instruments.
        let samples = registry.counter("obs.sampler.samples");
        let sample_ns = registry.histogram("obs.sampler.sample_ns");
        let (h, s) = (history.clone(), stop.clone());
        let handle = thread::Builder::new()
            .name("sg-obs-sampler".into())
            .spawn(move || {
                while !s.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    h.record(&registry);
                    sample_ns.record(t0.elapsed().as_nanos() as u64);
                    samples.inc();
                    // Sleep in short chunks so stop() returns promptly
                    // even with multi-second intervals.
                    let mut left = interval;
                    while !s.load(Ordering::Acquire) && left > Duration::ZERO {
                        let chunk = left.min(Duration::from_millis(25));
                        thread::sleep(chunk);
                        left = left.saturating_sub(chunk);
                    }
                }
            })
            .expect("spawn sg-obs-sampler");
        Sampler {
            stop,
            handle: Some(handle),
            history,
        }
    }

    /// Shared handle to the ring this sampler fills.
    pub fn history(&self) -> Arc<MetricHistory> {
        self.history.clone()
    }

    /// Signals the thread and joins it. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_orders_oldest_first() {
        let r = Registry::new();
        let c = r.counter("w.events");
        let hist = MetricHistory::new(3);
        for i in 0..5 {
            c.add(10);
            hist.record(&r);
            assert_eq!(hist.len(), (i + 1).min(3));
        }
        let samples = hist.samples(None);
        assert_eq!(samples.len(), 3);
        let values: Vec<u64> = samples.iter().map(|s| s.snap.counter("w.events")).collect();
        // Last three of 10,20,30,40,50 — and strictly increasing.
        assert_eq!(values, vec![30, 40, 50]);
        assert!(samples.windows(2).all(|w| w[0].mono_ms <= w[1].mono_ms));
    }

    #[test]
    fn window_keeps_trailing_samples() {
        let r = Registry::new();
        let hist = MetricHistory::new(8);
        hist.record(&r);
        std::thread::sleep(Duration::from_millis(30));
        hist.record(&r);
        hist.record(&r);
        let all = hist.samples(None);
        assert_eq!(all.len(), 3);
        let recent = hist.samples(Some(Duration::from_millis(10)));
        assert!(
            recent.len() < all.len(),
            "window should drop the oldest sample"
        );
        assert_eq!(recent.last().unwrap().mono_ms, all.last().unwrap().mono_ms);
    }

    #[test]
    fn history_json_reports_deltas_and_rates() {
        let r = Registry::new();
        let c = r.counter("q.total");
        let g = r.gauge("q.depth");
        let h = r.histogram("q.lat");
        let hist = MetricHistory::new(8);
        c.add(5);
        g.set(2);
        h.record(100);
        hist.record(&r);
        std::thread::sleep(Duration::from_millis(5));
        c.add(7);
        g.set(4);
        h.record(300);
        h.record(500);
        hist.record(&r);
        let doc = hist.history_json(None);
        assert_eq!(doc.get("samples").and_then(Json::as_u64), Some(2));
        let m = doc.get("metrics").unwrap();
        let ctr = m.get("q.total").unwrap();
        assert_eq!(ctr.get("delta").and_then(Json::as_u64), Some(7));
        assert!(ctr.get("rate_per_s").and_then(Json::as_f64).unwrap() > 0.0);
        let vals = ctr.get("values").and_then(Json::as_arr).unwrap();
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0].as_u64(), Some(5));
        assert_eq!(vals[1].as_u64(), Some(12));
        let gauge = m.get("q.depth").unwrap();
        assert_eq!(gauge.get("last").and_then(Json::as_i64), Some(4));
        let lat = m.get("q.lat").unwrap();
        assert_eq!(lat.get("interval_count").and_then(Json::as_u64), Some(2));
        // Interval quantiles cover only the two post-baseline records.
        let p99 = lat.get("p99").and_then(Json::as_u64).unwrap();
        assert!((256..=512).contains(&p99), "p99 = {p99}");
        // The sampler's own parse survives a JSON round-trip.
        let parsed = crate::json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(parsed.get("samples").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn sampler_fills_ring_and_meters_itself() {
        let r = Arc::new(Registry::new());
        r.counter("s.live").add(1);
        let mut sampler = Sampler::start(r.clone(), Duration::from_millis(10), 64);
        let hist = sampler.history();
        let t0 = Instant::now();
        while hist.len() < 3 && t0.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        assert!(
            hist.len() >= 3,
            "sampler took too long: {} samples",
            hist.len()
        );
        let snap = r.snapshot();
        assert!(snap.counter("obs.sampler.samples") >= 3);
        // Counters are monotone across samples.
        let samples = hist.samples(None);
        let ticks: Vec<u64> = samples
            .iter()
            .map(|s| s.snap.counter("obs.sampler.samples"))
            .collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "{ticks:?}");
    }

    #[test]
    fn snapshot_into_matches_snapshot_and_reuses_keys() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.gauge("b").set(-3);
        r.histogram("c").record(9);
        let mut reused = RegistrySnapshot::default();
        r.snapshot_into(&mut reused);
        assert_eq!(reused, r.snapshot());
        r.counter("a").add(5);
        r.counter("new.metric").add(2);
        r.snapshot_into(&mut reused);
        assert_eq!(reused, r.snapshot());
        assert_eq!(reused.counter("new.metric"), 2);
    }
}
