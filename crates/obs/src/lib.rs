//! `sg-obs`: workspace-wide observability with zero external dependencies.
//!
//! Three layers:
//!
//! 1. **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]) —
//!    named lock-free instruments. Handles are `Arc`s handed out by the
//!    registry; the hot path touches only atomics. Histograms bucket
//!    values by base-2 magnitude (HDR-style) and snapshot into mergeable
//!    [`HistogramSnapshot`]s.
//! 2. **Exporters** ([`export`]) — Prometheus text format and JSON, both
//!    hand-rolled (no serde).
//! 3. **Tracing** ([`trace::QueryTrace`]) — per-query EXPLAIN-style
//!    breakdown: per-tree-level nodes visited / entries pruned / exact
//!    distances computed, plus buffer-pool hit rate. Renders human-
//!    readable and round-trips through JSON.
//! 4. **Spans** ([`span`]) — causal request spans recorded lock-free
//!    into per-thread ring buffers (the **flight recorder**), dumped as
//!    Chrome/Perfetto `trace_event` JSON, plus a slow-query log that
//!    retains the full span tree and EXPLAIN trace of any request over
//!    a latency threshold.

pub mod cost;
pub mod export;
pub mod history;
pub mod json;
pub mod metrics;
pub mod prof;
#[cfg(test)]
mod proptests;
pub mod span;
pub mod trace;

pub use cost::{CostModel, CostObs, CostStats, ResourceVec};
pub use history::{MetricHistory, Sampler};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, IndexObs, IngestObs, MetricSnapshot, MetricValue,
    PoolObs, Registry, RegistrySnapshot, ServeObs, StoreObs,
};
pub use prof::{FoldedProfile, FoldedStack, ProfOverflow, StackCount};
pub use span::{Span, SpanCtx, SpanData};
pub use trace::{record_trace_levels, trace_level_aggregates, LevelTrace, QueryTrace, TraceSink};
