//! `sg-trace`: causal spans and an always-on flight recorder.
//!
//! A **span** is one timed stage of a request — frame decode, queue
//! wait, a shard task, a tree descent, a WAL fsync — with a causal
//! parent, so the spans of one request form a tree keyed by `trace_id`.
//! Spans are recorded into fixed-size **per-thread ring buffers** (the
//! flight recorder): the last few thousand spans per thread are always
//! available for dumping, with old records silently overwritten.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled cost ≈ zero.** Every instrumentation site starts with
//!    a single relaxed atomic load ([`enabled`]); when tracing is off a
//!    [`Span`] is a `None` and its `Drop` does nothing.
//! 2. **Enabled cost is lock-free.** A thread writes only its own ring.
//!    Each slot is a fixed array of `AtomicU64` words guarded by a
//!    seqlock sequence word, so concurrent dumpers can never observe a
//!    torn record — a slot caught mid-write is skipped.
//! 3. **No allocation on the hot path.** Span names, categories and
//!    attribute keys are `&'static str`s interned to small indices;
//!    attribute values are `u64`.
//!
//! Parenting is implicit within a thread (a thread-local stack of open
//! spans) and explicit across threads ([`Span::with_parent`] carries a
//! [`SpanCtx`] over a channel or into a closure).
//!
//! The recorder dumps as Chrome/Perfetto `trace_event` JSON
//! ([`flight_trace_json`]) and feeds the slow-query log
//! ([`observe_slow`]), which retains the full span tree plus the
//! EXPLAIN trace for any request over a configurable threshold.

use crate::json::Json;
use std::cell::{OnceCell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum key=value attributes per span; extras are dropped.
pub const MAX_ATTRS: usize = 4;

/// Default per-thread ring capacity, in spans.
pub const DEFAULT_RING_SPANS: usize = 4096;

/// Maximum live-span-stack depth mirrored per thread for the sampling
/// profiler; the root-most frames are kept and deeper leaves dropped.
pub const MAX_LIVE_DEPTH: usize = 32;

// ---------------------------------------------------------------------------
// Globals
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROFILING: AtomicBool = AtomicBool::new(false);
/// `ENABLED || PROFILING`, maintained by the two setters so every
/// instrumentation site still pays exactly one relaxed load when idle.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_SPANS);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_SEQ: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn interner() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    // Index 0 is reserved so 0 can mean "no attribute".
    NAMES.get_or_init(|| Mutex::new(vec![""]))
}

/// One frame of a thread's open-span stack: causal coordinates plus the
/// interned name/category the sampling profiler folds into stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LiveFrame {
    ctx: SpanCtx,
    name: u16,
    cat: u16,
}

thread_local! {
    static LOCAL_RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
    static SPAN_STACK: RefCell<Vec<LiveFrame>> = const { RefCell::new(Vec::new()) };
}

/// Turns span recording on or off, process-wide. Off is the default;
/// the only residual cost at every instrumentation site is one relaxed
/// atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    ACTIVE.store(on || PROFILING.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Whether spans are currently being recorded into the flight rings.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the profiler's live-stack maintenance on or off, process-wide.
/// While on, every open [`Span`] mirrors its interned name onto a
/// lock-free per-thread stack the sampler reads cross-thread; the ring
/// buffers stay untouched unless [`set_enabled`] is also on.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
    ACTIVE.store(on || ENABLED.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Whether the sampling profiler's live stacks are being maintained.
#[inline]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Whether spans have any consumer at all (rings or profiler).
#[inline]
fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Sets the per-thread ring capacity (in spans) for rings created
/// *after* this call. Clamped to at least 16.
pub fn set_ring_capacity(spans: usize) {
    RING_CAP.store(spans.max(16), Ordering::Relaxed);
}

/// Nanoseconds since the recorder's process-wide epoch. All span
/// timestamps share this timebase.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Allocates a fresh trace id (for requests that did not supply one).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

fn intern(s: &'static str) -> u16 {
    let mut table = interner().lock().unwrap();
    if let Some(i) = table.iter().position(|&t| std::ptr::eq(t, s) || t == s) {
        return i as u16;
    }
    let i = table.len();
    // The table only ever holds distinct instrumentation-site literals;
    // 65k of them would mean something is very wrong.
    assert!(i <= u16::MAX as usize, "span name intern table overflow");
    table.push(s);
    i as u16
}

pub(crate) fn resolve(idx: u16) -> &'static str {
    interner().lock().unwrap()[idx as usize]
}

/// Interns a name through the production table (test support for the
/// profiler's aggregation tests).
#[cfg(test)]
pub(crate) fn intern_for_test(s: &'static str) -> u16 {
    intern(s)
}

// ---------------------------------------------------------------------------
// The per-thread ring
// ---------------------------------------------------------------------------

/// Words per record: trace, span, parent, start, dur, meta, then
/// `MAX_ATTRS` (key, value) pairs.
const WORDS: usize = 6 + 2 * MAX_ATTRS;

/// One ring slot: a seqlock sequence word plus the record words. The
/// sequence is odd while the owning thread is writing; a reader that
/// sees an odd value, or a value that changed across its read, discards
/// the slot. Every word is an atomic, so a torn *word* is impossible
/// and a torn *record* is detected.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

pub(crate) struct ThreadRing {
    /// Small dense id for the owning thread (Perfetto `tid`).
    tid: u64,
    /// Total records ever written; `head % cap` is the next slot.
    head: AtomicU64,
    slots: Vec<Slot>,
    /// The owning thread's CPU clock, readable cross-thread by the
    /// sampling profiler. Reads fail once the owner exits.
    clock: cputime::ThreadClock,
    /// Seqlock over the live-span-stack mirror below: odd while the
    /// owning thread rewrites it, even when committed.
    live_seq: AtomicU64,
    /// Open frames currently mirrored in `live` (root first).
    live_len: AtomicUsize,
    /// Interned `name | cat << 16` per open span, root at index 0.
    live: [AtomicU64; MAX_LIVE_DEPTH],
}

impl ThreadRing {
    pub(crate) fn new(cap: usize) -> Self {
        ThreadRing {
            tid: NEXT_THREAD_SEQ.fetch_add(1, Ordering::Relaxed),
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
            clock: cputime::ThreadClock::for_current_thread(),
            live_seq: AtomicU64::new(0),
            live_len: AtomicUsize::new(0),
            live: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The owning thread's dense id.
    pub(crate) fn tid(&self) -> u64 {
        self.tid
    }

    /// The owning thread's cumulative CPU nanoseconds, if its clock is
    /// still readable.
    pub(crate) fn cpu_ns(&self) -> Option<u64> {
        self.clock.cpu_ns()
    }

    /// Rewrites the live-stack mirror from the thread-local span stack.
    /// Owning thread only; readers detect the in-progress window via the
    /// seqlock.
    fn sync_live(&self, stack: &[LiveFrame]) {
        let n = stack.len().min(MAX_LIVE_DEPTH);
        self.live_seq.fetch_add(1, Ordering::AcqRel); // odd: rewrite in progress
        for (slot, f) in self.live[..n].iter().zip(stack) {
            slot.store(f.name as u64 | (f.cat as u64) << 16, Ordering::Relaxed);
        }
        self.live_len.store(n, Ordering::Relaxed);
        self.live_seq.fetch_add(1, Ordering::Release); // even: committed
    }

    /// Snapshot of the live span stack as interned `(name, cat)` pairs,
    /// root first. `None` when the owner was mid-rewrite on every retry
    /// — the sampler skips the thread for this tick rather than block.
    pub(crate) fn live_stack(&self) -> Option<Vec<(u16, u16)>> {
        for _ in 0..3 {
            let s1 = self.live_seq.load(Ordering::Acquire);
            if s1 % 2 != 0 {
                std::hint::spin_loop();
                continue;
            }
            let n = self.live_len.load(Ordering::Relaxed).min(MAX_LIVE_DEPTH);
            let mut out = Vec::with_capacity(n);
            for slot in &self.live[..n] {
                let w = slot.load(Ordering::Relaxed);
                out.push((w as u16, (w >> 16) as u16));
            }
            let s2 = self.live_seq.load(Ordering::Acquire);
            if s1 == s2 {
                return Some(out);
            }
        }
        None
    }

    /// Single-writer append (owning thread only).
    pub(crate) fn push(&self, rec: &RawRecord) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        slot.seq.fetch_add(1, Ordering::AcqRel); // now odd: write in progress
        for (w, v) in slot.words.iter().zip(rec.words()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.fetch_add(1, Ordering::Release); // even again: committed
        self.head.store(h + 1, Ordering::Release);
    }

    /// Reads every committed record, oldest first, skipping any slot
    /// the writer is concurrently overwriting.
    pub(crate) fn drain(&self) -> Vec<SpanData> {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let oldest = h.saturating_sub(cap);
        let mut out = Vec::with_capacity((h - oldest) as usize);
        for i in oldest..h {
            let slot = &self.slots[(i % cap) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 % 2 != 0 {
                continue; // mid-write
            }
            let words: [u64; WORDS] =
                std::array::from_fn(|w| slot.words[w].load(Ordering::Relaxed));
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue; // overwritten while reading
            }
            let rec = RawRecord::from_words(&words);
            if rec.span_id == 0 {
                continue; // never written
            }
            out.push(rec.decode(self.tid));
        }
        out
    }
}

fn local_ring() -> Arc<ThreadRing> {
    LOCAL_RING.with(|cell| {
        cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing::new(RING_CAP.load(Ordering::Relaxed)));
            rings().lock().unwrap().push(Arc::clone(&ring));
            ring
        })
        .clone()
    })
}

/// The fixed-width on-ring representation of a span.
pub(crate) struct RawRecord {
    pub(crate) trace_id: u64,
    pub(crate) span_id: u64,
    pub(crate) parent: u64,
    pub(crate) start_ns: u64,
    pub(crate) dur_ns: u64,
    pub(crate) name: u16,
    pub(crate) cat: u16,
    pub(crate) nattrs: u8,
    pub(crate) attrs: [(u16, u64); MAX_ATTRS],
}

impl RawRecord {
    fn words(&self) -> [u64; WORDS] {
        let mut w = [0u64; WORDS];
        w[0] = self.trace_id;
        w[1] = self.span_id;
        w[2] = self.parent;
        w[3] = self.start_ns;
        w[4] = self.dur_ns;
        w[5] = self.name as u64 | (self.cat as u64) << 16 | (self.nattrs as u64) << 32;
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            w[6 + 2 * i] = *k as u64;
            w[7 + 2 * i] = *v;
        }
        w
    }

    fn from_words(w: &[u64; WORDS]) -> Self {
        RawRecord {
            trace_id: w[0],
            span_id: w[1],
            parent: w[2],
            start_ns: w[3],
            dur_ns: w[4],
            name: w[5] as u16,
            cat: (w[5] >> 16) as u16,
            nattrs: (w[5] >> 32) as u8,
            attrs: std::array::from_fn(|i| (w[6 + 2 * i] as u16, w[7 + 2 * i])),
        }
    }

    fn decode(&self, tid: u64) -> SpanData {
        SpanData {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent: self.parent,
            name: resolve(self.name),
            cat: resolve(self.cat),
            start_ns: self.start_ns,
            dur_ns: self.dur_ns,
            tid,
            attrs: self.attrs[..(self.nattrs as usize).min(MAX_ATTRS)]
                .iter()
                .map(|&(k, v)| (resolve(k), v))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Public span API
// ---------------------------------------------------------------------------

/// The causal coordinates of an open span: enough to parent children
/// started on another thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    pub trace_id: u64,
    pub span_id: u64,
}

/// A decoded span, as returned by [`flight_spans`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanData {
    pub trace_id: u64,
    pub span_id: u64,
    /// Parent span id within the same trace; 0 for a root.
    pub parent: u64,
    pub name: &'static str,
    pub cat: &'static str,
    /// Nanoseconds since the recorder epoch ([`now_ns`] timebase).
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Dense id of the recording thread.
    pub tid: u64,
    pub attrs: Vec<(&'static str, u64)>,
}

/// The innermost open span on this thread, if any — the implicit
/// parent for [`Span::start`].
pub fn current_ctx() -> Option<SpanCtx> {
    SPAN_STACK.with(|s| s.borrow().last().map(|f| f.ctx))
}

struct ActiveSpan {
    ctx: SpanCtx,
    parent: u64,
    name: u16,
    cat: u16,
    start_ns: u64,
    attrs: [(u16, u64); MAX_ATTRS],
    nattrs: u8,
}

/// A RAII span guard. Created no-op when recording is disabled; on
/// drop, records `[start, now)` into this thread's ring.
pub struct Span {
    inner: Option<ActiveSpan>,
}

impl Span {
    fn open(trace_id: u64, parent: u64, name: &'static str, cat: &'static str) -> Span {
        Span::open_at(trace_id, parent, name, cat, now_ns())
    }

    fn open_at(
        trace_id: u64,
        parent: u64,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
    ) -> Span {
        let ctx = SpanCtx {
            trace_id,
            span_id: next_span_id(),
        };
        // Interned here (not at drop) so the live-stack mirror carries
        // names the sampler can resolve; drop reuses the indices.
        let frame = LiveFrame {
            ctx,
            name: intern(name),
            cat: intern(cat),
        };
        let ring = local_ring();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.push(frame);
            ring.sync_live(&stack);
        });
        Span {
            inner: Some(ActiveSpan {
                ctx,
                parent,
                name: frame.name,
                cat: frame.cat,
                start_ns,
                attrs: [(0, 0); MAX_ATTRS],
                nattrs: 0,
            }),
        }
    }

    /// Starts a root span of a fresh or caller-supplied trace.
    pub fn root(trace_id: u64, name: &'static str, cat: &'static str) -> Span {
        if !active() {
            return Span { inner: None };
        }
        Span::open(trace_id, 0, name, cat)
    }

    /// Starts a root span whose start was measured earlier (e.g. before
    /// frame decode resolved the request's own `trace_id`).
    pub fn root_at(trace_id: u64, name: &'static str, cat: &'static str, start_ns: u64) -> Span {
        if !active() {
            return Span { inner: None };
        }
        Span::open_at(trace_id, 0, name, cat, start_ns)
    }

    /// Starts a span parented to the innermost open span on this
    /// thread; with no open span it starts a root of a fresh trace.
    pub fn start(name: &'static str, cat: &'static str) -> Span {
        if !active() {
            return Span { inner: None };
        }
        match current_ctx() {
            Some(p) => Span::open(p.trace_id, p.span_id, name, cat),
            None => Span::open(next_trace_id(), 0, name, cat),
        }
    }

    /// Starts a span under an explicitly carried parent (cross-thread
    /// hand-off); `None` behaves like [`Span::start`].
    pub fn with_parent(parent: Option<SpanCtx>, name: &'static str, cat: &'static str) -> Span {
        if !active() {
            return Span { inner: None };
        }
        match parent {
            Some(p) => Span::open(p.trace_id, p.span_id, name, cat),
            None => Span::start(name, cat),
        }
    }

    /// The span's causal coordinates, for handing to another thread.
    pub fn ctx(&self) -> Option<SpanCtx> {
        self.inner.as_ref().map(|a| a.ctx)
    }

    /// Attaches a `key=value` attribute (at most [`MAX_ATTRS`]; extras
    /// are dropped).
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(a) = self.inner.as_mut() {
            if (a.nattrs as usize) < MAX_ATTRS {
                a.attrs[a.nattrs as usize] = (intern(key), value);
                a.nattrs += 1;
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.inner.take() else { return };
        let ring = local_ring();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop LIFO, so this is almost always a pop; the
            // retain covers a guard outliving a later sibling.
            if stack.last().map(|f| f.ctx) == Some(a.ctx) {
                stack.pop();
            } else {
                stack.retain(|f| f.ctx != a.ctx);
            }
            ring.sync_live(&stack);
        });
        // The live stack must stay balanced whenever spans are active,
        // but the flight rings only record when tracing proper is on.
        if !enabled() {
            return;
        }
        let rec = RawRecord {
            trace_id: a.ctx.trace_id,
            span_id: a.ctx.span_id,
            parent: a.parent,
            start_ns: a.start_ns,
            dur_ns: now_ns().saturating_sub(a.start_ns),
            name: a.name,
            cat: a.cat,
            nattrs: a.nattrs,
            attrs: a.attrs,
        };
        ring.push(&rec);
    }
}

/// Records a fully-specified span directly (used to synthesize spans
/// whose timing was measured out-of-band, e.g. queue waits and
/// per-level tree descents). Returns the span id.
pub fn emit(
    trace_id: u64,
    parent: u64,
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    dur_ns: u64,
    attrs: &[(&'static str, u64)],
) -> u64 {
    if !enabled() {
        return 0;
    }
    let span_id = next_span_id();
    let mut packed = [(0u16, 0u64); MAX_ATTRS];
    let n = attrs.len().min(MAX_ATTRS);
    for (slot, &(k, v)) in packed.iter_mut().zip(&attrs[..n]) {
        *slot = (intern(k), v);
    }
    let rec = RawRecord {
        trace_id,
        span_id,
        parent,
        start_ns,
        dur_ns,
        name: intern(name),
        cat: intern(cat),
        nattrs: n as u8,
        attrs: packed,
    };
    local_ring().push(&rec);
    span_id
}

// ---------------------------------------------------------------------------
// Flight dump
// ---------------------------------------------------------------------------

/// Snapshot of every committed span across all threads' rings, sorted
/// by start time. Concurrent writers keep writing; a record caught
/// mid-overwrite is skipped rather than torn.
pub fn flight_spans() -> Vec<SpanData> {
    let rings: Vec<Arc<ThreadRing>> = rings().lock().unwrap().clone();
    let mut out: Vec<SpanData> = rings.iter().flat_map(|r| r.drain()).collect();
    out.sort_by_key(|s| (s.start_ns, s.span_id));
    out
}

/// Spans of one trace, sorted by start time.
pub fn trace_spans(trace_id: u64) -> Vec<SpanData> {
    let mut out = flight_spans();
    out.retain(|s| s.trace_id == trace_id);
    out
}

fn span_event(s: &SpanData) -> Json {
    let mut args = vec![
        ("trace_id".to_string(), Json::U64(s.trace_id)),
        ("span_id".to_string(), Json::U64(s.span_id)),
        ("parent".to_string(), Json::U64(s.parent)),
    ];
    for (k, v) in &s.attrs {
        args.push((k.to_string(), Json::U64(*v)));
    }
    Json::Obj(vec![
        ("name".to_string(), Json::Str(s.name.to_string())),
        ("cat".to_string(), Json::Str(s.cat.to_string())),
        ("ph".to_string(), Json::Str("X".to_string())),
        ("ts".to_string(), Json::F64(s.start_ns as f64 / 1_000.0)),
        ("dur".to_string(), Json::F64(s.dur_ns as f64 / 1_000.0)),
        ("pid".to_string(), Json::U64(1)),
        ("tid".to_string(), Json::U64(s.tid)),
        ("args".to_string(), Json::Obj(args)),
    ])
}

/// The flight recorder's contents as Chrome/Perfetto `trace_event`
/// JSON (`ph:"X"` complete events, microsecond timestamps).
pub fn flight_trace_json() -> Json {
    let events: Vec<Json> = flight_spans().iter().map(span_event).collect();
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
}

/// Why [`flight_trace_json_bounded`] refused to serialize: the document
/// would have exceeded `max_bytes`. Carries enough context for the
/// caller to suggest a workable `limit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightOverflow {
    /// Events available after applying the caller's `limit`.
    pub events_total: usize,
    /// Events that fit within `max_bytes` before the bail-out.
    pub events_fit: usize,
    /// The byte cap that was exceeded.
    pub max_bytes: usize,
}

/// Serializes the flight recorder as `trace_event` JSON without ever
/// building a document larger than `max_bytes`: events are appended
/// one at a time and serialization bails as soon as the next event
/// would not fit. `limit` keeps only the most recent N events (they
/// are sorted by start time, so the tail is the newest activity).
pub fn flight_trace_json_bounded(
    max_bytes: usize,
    limit: Option<usize>,
) -> Result<String, FlightOverflow> {
    const HEAD: &str = "{\"traceEvents\":[";
    const TAIL: &str = "],\"displayTimeUnit\":\"ms\"}";
    let spans = flight_spans();
    let start = limit.map_or(0, |n| spans.len().saturating_sub(n));
    let slice = &spans[start..];
    let mut out = String::from(HEAD);
    for (i, s) in slice.iter().enumerate() {
        let event = span_event(s).to_string_compact();
        let sep = usize::from(i > 0);
        if out.len() + sep + event.len() + TAIL.len() > max_bytes {
            return Err(FlightOverflow {
                events_total: slice.len(),
                events_fit: i,
                max_bytes,
            });
        }
        if i > 0 {
            out.push(',');
        }
        out.push_str(&event);
    }
    out.push_str(TAIL);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// A request promoted to the slow-query log: its root identity, the
/// full span tree collected from the flight recorder at promotion
/// time, and the EXPLAIN trace if one was produced.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    pub trace_id: u64,
    pub name: String,
    pub dur_ns: u64,
    /// Wall-clock capture time (Unix ms), for postmortem correlation.
    pub unix_ms: u64,
    pub spans: Vec<SpanData>,
    pub explain: Option<Json>,
}

struct SlowLog {
    threshold_ns: AtomicU64,
    cap: AtomicUsize,
    entries: Mutex<std::collections::VecDeque<SlowEntry>>,
}

fn slow_log() -> &'static SlowLog {
    static SLOW: OnceLock<SlowLog> = OnceLock::new();
    SLOW.get_or_init(|| SlowLog {
        threshold_ns: AtomicU64::new(u64::MAX),
        cap: AtomicUsize::new(64),
        entries: Mutex::new(std::collections::VecDeque::new()),
    })
}

/// Sets the slow-query latency threshold; `u64::MAX` disables capture.
pub fn set_slow_threshold_ns(ns: u64) {
    slow_log().threshold_ns.store(ns, Ordering::Relaxed);
}

/// The current slow-query threshold in nanoseconds.
pub fn slow_threshold_ns() -> u64 {
    slow_log().threshold_ns.load(Ordering::Relaxed)
}

/// Sets how many slow entries are retained (oldest evicted first).
pub fn set_slow_capacity(cap: usize) {
    slow_log().cap.store(cap.max(1), Ordering::Relaxed);
}

/// Offers a finished request to the slow-query log. Promoted (and
/// retained with its span tree and EXPLAIN trace) iff `dur_ns` meets
/// the threshold. Returns whether it was promoted.
pub fn observe_slow(trace_id: u64, name: &str, dur_ns: u64, explain: Option<Json>) -> bool {
    let log = slow_log();
    if dur_ns < log.threshold_ns.load(Ordering::Relaxed) {
        return false;
    }
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let entry = SlowEntry {
        trace_id,
        name: name.to_string(),
        dur_ns,
        unix_ms,
        spans: trace_spans(trace_id),
        explain,
    };
    let mut entries = log.entries.lock().unwrap();
    entries.push_back(entry);
    let cap = log.cap.load(Ordering::Relaxed);
    while entries.len() > cap {
        entries.pop_front();
    }
    true
}

/// Retained slow-query entries, oldest first.
pub fn slow_entries() -> Vec<SlowEntry> {
    slow_log().entries.lock().unwrap().iter().cloned().collect()
}

/// Empties the slow-query log (tests, admin reset).
pub fn clear_slow() {
    slow_log().entries.lock().unwrap().clear();
}

fn slow_entry_json(e: &SlowEntry) -> Json {
    Json::Obj(vec![
        ("trace_id".to_string(), Json::U64(e.trace_id)),
        ("name".to_string(), Json::Str(e.name.clone())),
        ("dur_us".to_string(), Json::U64(e.dur_ns / 1_000)),
        ("unix_ms".to_string(), Json::U64(e.unix_ms)),
        (
            "spans".to_string(),
            Json::Arr(e.spans.iter().map(span_event).collect()),
        ),
        (
            "explain".to_string(),
            e.explain.clone().unwrap_or(Json::Null),
        ),
    ])
}

/// The slow-query log as a JSON array, newest last.
pub fn slow_entries_json() -> Json {
    Json::Arr(slow_entries().iter().map(slow_entry_json).collect())
}

/// Overflow report from [`slow_entries_json_bounded`]: the log held
/// `entries_total` entries but only the newest `entries_fit` fit under
/// `max_bytes` — the retry hint for `/debug/slow?limit=`.
#[derive(Debug, Clone, Copy)]
pub struct SlowOverflow {
    /// Entries in the slow-query log.
    pub entries_total: usize,
    /// How many of the newest entries fit under the cap.
    pub entries_fit: usize,
    /// The byte cap that was exceeded.
    pub max_bytes: usize,
}

/// Like [`slow_entries_json`], but serialized under a byte cap. `limit`
/// keeps only the newest N entries (slow entries retain whole span
/// trees, so a few deep requests can dominate the payload). Err carries
/// how many entries *would* have fit, so callers can retry bounded.
pub fn slow_entries_json_bounded(
    max_bytes: usize,
    limit: Option<usize>,
) -> Result<String, SlowOverflow> {
    let entries = slow_entries();
    let total = entries.len();
    let take = limit.unwrap_or(total).min(total);
    let mut out = String::from("[");
    for (i, e) in entries[total - take..].iter().enumerate() {
        let doc = slow_entry_json(e).to_string_compact();
        if out.len() + doc.len() + 2 > max_bytes {
            return Err(SlowOverflow {
                entries_total: total,
                entries_fit: i,
                max_bytes,
            });
        }
        if i > 0 {
            out.push(',');
        }
        out.push_str(&doc);
    }
    out.push(']');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global recorder.
    fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = recorder_lock();
        set_enabled(false);
        let tid = next_trace_id() + 1_000_000; // never allocated to anyone
        {
            let mut s = Span::root(tid, "ghost", "test");
            s.attr("k", 1);
        }
        assert!(trace_spans(tid).is_empty());
        assert!(current_ctx().is_none());
    }

    #[test]
    fn nested_guards_build_a_connected_tree() {
        let _g = recorder_lock();
        set_enabled(true);
        let trace = next_trace_id();
        {
            let root = Span::root(trace, "request", "serve");
            let rctx = root.ctx().unwrap();
            {
                let child = Span::start("decode", "serve");
                assert_eq!(child.ctx().unwrap().trace_id, trace);
                {
                    let mut grand = Span::start("tree_descent", "core");
                    grand.attr("nodes", 42);
                }
            }
            // Cross-thread hand-off: explicit parent.
            let handoff = rctx;
            std::thread::spawn(move || {
                let _s = Span::with_parent(Some(handoff), "shard_task", "exec");
            })
            .join()
            .unwrap();
        }
        set_enabled(false);

        let spans = trace_spans(trace);
        assert_eq!(spans.len(), 4, "spans: {spans:#?}");
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("request");
        assert_eq!(root.parent, 0);
        assert_eq!(by_name("decode").parent, root.span_id);
        assert_eq!(by_name("shard_task").parent, root.span_id);
        let grand = by_name("tree_descent");
        assert_eq!(grand.parent, by_name("decode").span_id);
        assert_eq!(grand.attrs, vec![("nodes", 42)]);

        // Every parent resolves within the trace, and every child's
        // interval nests inside its parent's.
        for s in &spans {
            if s.parent == 0 {
                continue;
            }
            let p = spans
                .iter()
                .find(|c| c.span_id == s.parent)
                .unwrap_or_else(|| panic!("dangling parent for {}", s.name));
            assert!(p.start_ns <= s.start_ns, "{} starts before parent", s.name);
            assert!(
                s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns,
                "{} ends after parent {}",
                s.name,
                p.name
            );
        }
    }

    #[test]
    fn emit_records_synthesized_spans() {
        let _g = recorder_lock();
        set_enabled(true);
        let trace = next_trace_id();
        let parent = emit(trace, 0, "root", "test", 100, 50, &[("a", 1)]);
        let child = emit(trace, parent, "leaf", "test", 110, 10, &[]);
        set_enabled(false);
        assert_ne!(parent, 0);
        assert_ne!(child, 0);
        let spans = trace_spans(trace);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].attrs, vec![("a", 1)]);
        assert_eq!(spans[1].parent, parent);
    }

    #[test]
    fn trace_json_is_valid_and_parseable() {
        let _g = recorder_lock();
        set_enabled(true);
        let trace = next_trace_id();
        emit(trace, 0, "evt", "test", 5_000, 2_000, &[("n", 7)]);
        set_enabled(false);
        let doc = flight_trace_json();
        let text = doc.to_string_compact();
        let parsed = crate::json::parse(&text).expect("flight JSON must parse");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let ev = events
            .iter()
            .find(|e| e.get("args").unwrap().get("trace_id").unwrap().as_u64() == Some(trace))
            .expect("our event present");
        assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(ev.get("ts").unwrap().as_f64(), Some(5.0));
        assert_eq!(ev.get("dur").unwrap().as_f64(), Some(2.0));
        assert_eq!(ev.get("args").unwrap().get("n").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn bounded_trace_json_caps_bytes_and_honours_limit() {
        let _g = recorder_lock();
        set_enabled(true);
        let trace = next_trace_id();
        for i in 0..32 {
            emit(trace, 0, "evt", "test", 1_000 * i, 500, &[("i", i)]);
        }
        set_enabled(false);
        // Generous cap: identical content to the unbounded dump.
        let full = flight_trace_json_bounded(64 << 20, None).unwrap();
        let parsed = crate::json::parse(&full).expect("bounded JSON must parse");
        let n_all = parsed.get("traceEvents").unwrap().as_arr().unwrap().len();
        assert!(n_all >= 32, "expected our 32 events, got {n_all}");
        assert_eq!(full, flight_trace_json().to_string_compact());
        // Tiny cap: refuses with a useful fit estimate instead of
        // allocating the whole document.
        let err = flight_trace_json_bounded(256, None).unwrap_err();
        assert_eq!(err.max_bytes, 256);
        assert_eq!(err.events_total, n_all);
        assert!(err.events_fit < n_all);
        // A limit keeps only the newest events and still parses.
        let tail = flight_trace_json_bounded(64 << 20, Some(3)).unwrap();
        let parsed = crate::json::parse(&tail).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
        let last_i = events[2].get("args").unwrap().get("i").unwrap().as_u64();
        assert_eq!(last_i, Some(31));
        // Every returned document respects the cap.
        let capped = flight_trace_json_bounded(1_000, Some(2)).unwrap();
        assert!(capped.len() <= 1_000);
    }

    #[test]
    fn slow_log_promotes_exactly_the_requests_over_threshold() {
        let _g = recorder_lock();
        clear_slow();
        set_slow_threshold_ns(1_000_000); // 1ms
        let t1 = next_trace_id();
        let t2 = next_trace_id();
        assert!(!observe_slow(t1, "fast", 999_999, None));
        assert!(observe_slow(t2, "slow", 1_000_000, None));
        let entries = slow_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].trace_id, t2);
        assert_eq!(entries[0].name, "slow");
        set_slow_threshold_ns(u64::MAX);
        assert!(!observe_slow(t2, "slow", u64::MAX - 1, None));
        clear_slow();
    }

    #[test]
    fn slow_log_retention_evicts_oldest() {
        let _g = recorder_lock();
        clear_slow();
        set_slow_capacity(3);
        set_slow_threshold_ns(0);
        for i in 0..5u64 {
            observe_slow(i + 1, "q", i, None);
        }
        let entries = slow_entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries.iter().map(|e| e.trace_id).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        set_slow_threshold_ns(u64::MAX);
        set_slow_capacity(64);
        clear_slow();
    }

    #[test]
    fn ring_overwrite_keeps_newest() {
        // A private ring (not the thread-local one) so the test fully
        // controls capacity and contents.
        let ring = ThreadRing::new(16);
        for i in 0..100u64 {
            let rec = RawRecord {
                trace_id: i + 1,
                span_id: i + 1,
                parent: 0,
                start_ns: i * 10,
                dur_ns: 1,
                name: 0,
                cat: 0,
                nattrs: 0,
                attrs: [(0, 0); MAX_ATTRS],
            };
            ring.push(&rec);
        }
        let spans = ring.drain();
        assert_eq!(spans.len(), 16);
        assert_eq!(
            spans.iter().map(|s| s.trace_id).collect::<Vec<_>>(),
            (85..=100).collect::<Vec<_>>()
        );
    }
}
