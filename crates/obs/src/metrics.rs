//! Lock-free metric instruments and the named registry.
//!
//! The registry hands out `Arc` handles; creation takes a mutex, but
//! every recording operation afterwards is a relaxed atomic — safe to
//! call from query hot loops.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of base-2 magnitude buckets: value 0 plus one bucket per
/// leading-bit position of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`, so
/// bucket `b >= 1` covers `[2^(b-1), 2^b)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (e.g. cached frames, open cursors).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log-bucketed (base-2, HDR-style) value distribution.
///
/// Records are lock-free; bucket boundaries are powers of two, so the
/// relative quantile error is at most 2x — plenty for latency triage.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable, mergeable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self`; the result equals a histogram that
    /// recorded the union of both observation streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        self.count += other.count;
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1): the geometric midpoint of
    /// the bucket holding the q-th observation. Within 2x of exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_midpoint(b).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Representative value for a bucket: 0, or the geometric-ish midpoint
/// `1.5 * 2^(b-1)` of `[2^(b-1), 2^b)`.
fn bucket_midpoint(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        1 => 1,
        b => {
            let lo = 1u64 << (b - 1);
            lo + (lo >> 1)
        }
    }
}

/// Inclusive upper bound of a bucket's value range (the Prometheus
/// exporter's `le` label): bucket 0 holds only 0, bucket `b` holds
/// `[2^(b-1), 2^b - 1]`.
pub(crate) fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named metric store. Lookup/creation locks a mutex; the returned
/// handles are lock-free to record into.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry (what the bench harness exports).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Gets or creates the counter `name`.
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.metrics.lock().unwrap().entry(name.to_string()) {
            Entry::Occupied(e) => match e.get() {
                Metric::Counter(c) => c.clone(),
                _ => panic!("metric `{name}` already registered with a different type"),
            },
            Entry::Vacant(v) => {
                let c = Arc::new(Counter::new());
                v.insert(Metric::Counter(c.clone()));
                c
            }
        }
    }

    /// Gets or creates the gauge `name`.
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.metrics.lock().unwrap().entry(name.to_string()) {
            Entry::Occupied(e) => match e.get() {
                Metric::Gauge(g) => g.clone(),
                _ => panic!("metric `{name}` already registered with a different type"),
            },
            Entry::Vacant(v) => {
                let g = Arc::new(Gauge::new());
                v.insert(Metric::Gauge(g.clone()));
                g
            }
        }
    }

    /// Gets or creates the histogram `name`.
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.metrics.lock().unwrap().entry(name.to_string()) {
            Entry::Occupied(e) => match e.get() {
                Metric::Histogram(h) => h.clone(),
                _ => panic!("metric `{name}` already registered with a different type"),
            },
            Entry::Vacant(v) => {
                let h = Arc::new(Histogram::new());
                v.insert(Metric::Histogram(h.clone()));
                h
            }
        }
    }

    /// Point-in-time copy of every metric written into `out`, reusing
    /// its existing allocations.
    ///
    /// This is the sampler's hot path: once the metric set has
    /// stabilized, refreshing an already-populated snapshot touches no
    /// allocator at all — counter/gauge slots are overwritten in place
    /// and a [`HistogramSnapshot`] is an inline array. Only a metric
    /// registered since the previous call costs one key clone.
    pub fn snapshot_into(&self, out: &mut RegistrySnapshot) {
        let metrics = self.metrics.lock().unwrap();
        if out.metrics.len() != metrics.len() {
            // Registries never un-register today, but a caller may hand
            // us a snapshot taken from a different registry.
            out.metrics.retain(|k, _| metrics.contains_key(k));
        }
        for (name, m) in metrics.iter() {
            let updated = match (out.metrics.get_mut(name), m) {
                (Some(MetricValue::Counter(v)), Metric::Counter(c)) => {
                    *v = c.get();
                    true
                }
                (Some(MetricValue::Gauge(v)), Metric::Gauge(g)) => {
                    *v = g.get();
                    true
                }
                (Some(MetricValue::Histogram(hs)), Metric::Histogram(h)) => {
                    *hs = h.snapshot();
                    true
                }
                _ => false,
            };
            if !updated {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                out.metrics.insert(name.clone(), value);
            }
        }
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().unwrap();
        RegistrySnapshot {
            metrics: metrics
                .iter()
                .map(|(name, m)| {
                    let value = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One metric's value inside a [`RegistrySnapshot`].
// Snapshots are cold-path; the inline histogram beats boxing for merge/diff.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// Named snapshot of one metric (exporter convenience).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Captured value.
    pub value: MetricValue,
}

/// Point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Metric name → captured value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl RegistrySnapshot {
    /// Folds `other` into `self`: counters/gauges add, histograms merge,
    /// metrics present only in `other` are copied in.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.metrics {
            match self.metrics.entry(name.clone()) {
                Entry::Vacant(slot) => {
                    slot.insert(v.clone());
                }
                Entry::Occupied(mut slot) => match (slot.get_mut(), v) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    _ => panic!("metric `{name}` changed type between snapshots"),
                },
            }
        }
    }

    /// Difference since `earlier`: counters subtract (saturating),
    /// gauges keep their current level, histogram bucket counts and
    /// count/sum subtract (min/max are kept from `self` — they cannot
    /// be un-observed).
    pub fn since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let mut out = BTreeMap::new();
        for (name, now) in &self.metrics {
            let delta = match (now, earlier.metrics.get(name)) {
                (v, None) => v.clone(),
                (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                    MetricValue::Counter(a.saturating_sub(*b))
                }
                (MetricValue::Gauge(a), Some(MetricValue::Gauge(_))) => MetricValue::Gauge(*a),
                (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                    let mut h = a.clone();
                    for (dst, src) in h.buckets.iter_mut().zip(&b.buckets) {
                        *dst = dst.saturating_sub(*src);
                    }
                    h.count = h.count.saturating_sub(b.count);
                    h.sum = h.sum.saturating_sub(b.sum);
                    MetricValue::Histogram(h)
                }
                (_, Some(_)) => panic!("metric `{name}` changed type between snapshots"),
            };
            out.insert(name.clone(), delta);
        }
        RegistrySnapshot { metrics: out }
    }

    /// Counter value by name (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }
}

/// The shared instrument set every index backend registers, so SG-tree,
/// sequential-scan, signature-table, inverted-file, and MinHash costs
/// line up under comparable metric names (`<prefix>.queries`, ...).
#[derive(Debug)]
pub struct IndexObs {
    /// Queries executed.
    pub queries: Arc<Counter>,
    /// Per-query wall time, nanoseconds.
    pub query_ns: Arc<Histogram>,
    /// Index nodes/pages/buckets visited while answering queries.
    pub nodes_accessed: Arc<Counter>,
    /// Stored objects compared exactly against the query.
    pub data_compared: Arc<Counter>,
    /// Distance/bound evaluations (directory + data level).
    pub dist_computations: Arc<Counter>,
    /// Pages served from the buffer pool or backing store.
    pub logical_reads: Arc<Counter>,
    /// Pages that missed the pool (random I/Os in the paper's terms).
    pub physical_reads: Arc<Counter>,
    /// Objects inserted.
    pub inserts: Arc<Counter>,
    /// Per-insert wall time, nanoseconds.
    pub insert_ns: Arc<Histogram>,
    /// Objects deleted.
    pub deletes: Arc<Counter>,
    /// Node splits performed by inserts.
    pub splits: Arc<Counter>,
    /// Forced-reinsert rounds performed by inserts.
    pub reinserts: Arc<Counter>,
    /// Directory entries scanned by ChooseSubtree.
    pub choose_entries_scanned: Arc<Counter>,
}

impl IndexObs {
    /// Registers the instrument set under `<prefix>.<name>` metric names.
    pub fn register(registry: &Registry, prefix: &str) -> Arc<IndexObs> {
        let c = |name: &str| registry.counter(&format!("{prefix}.{name}"));
        let h = |name: &str| registry.histogram(&format!("{prefix}.{name}"));
        Arc::new(IndexObs {
            queries: c("queries"),
            query_ns: h("query_ns"),
            nodes_accessed: c("nodes_accessed"),
            data_compared: c("data_compared"),
            dist_computations: c("dist_computations"),
            logical_reads: c("logical_reads"),
            physical_reads: c("physical_reads"),
            inserts: c("inserts"),
            insert_ns: h("insert_ns"),
            deletes: c("deletes"),
            splits: c("splits"),
            reinserts: c("reinserts"),
            choose_entries_scanned: c("choose_entries_scanned"),
        })
    }

    /// Records one finished query's aggregate costs.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_query(
        &self,
        nodes_accessed: u64,
        data_compared: u64,
        dist_computations: u64,
        logical_reads: u64,
        physical_reads: u64,
        duration_ns: u64,
    ) {
        self.queries.inc();
        self.query_ns.record(duration_ns);
        self.nodes_accessed.add(nodes_accessed);
        self.data_compared.add(data_compared);
        self.dist_computations.add(dist_computations);
        self.logical_reads.add(logical_reads);
        self.physical_reads.add(physical_reads);
    }
}

/// Buffer-pool instrument set (`<prefix>.hits`, `.misses`, `.evictions`,
/// `.writes`).
#[derive(Debug)]
pub struct PoolObs {
    /// Reads served from a cached frame.
    pub hits: Arc<Counter>,
    /// Reads that had to touch the backing store.
    pub misses: Arc<Counter>,
    /// Frames evicted to make room.
    pub evictions: Arc<Counter>,
    /// Pages written through to the store.
    pub writes: Arc<Counter>,
}

impl PoolObs {
    /// Registers the pool instrument set under `<prefix>.<name>`.
    pub fn register(registry: &Registry, prefix: &str) -> Arc<PoolObs> {
        let c = |name: &str| registry.counter(&format!("{prefix}.{name}"));
        Arc::new(PoolObs {
            hits: c("hits"),
            misses: c("misses"),
            evictions: c("evictions"),
            writes: c("writes"),
        })
    }
}

/// Network-serving instrument set (`sg-serve`): connection and request
/// counters, micro-batch shape, admission-queue depth, and drain state.
#[derive(Debug)]
pub struct ServeObs {
    /// Connections accepted (`<prefix>.accepted`).
    pub accepted: Arc<Counter>,
    /// Requests admitted to the batch queue (`<prefix>.requests`).
    pub requests: Arc<Counter>,
    /// Requests refused with `SERVER_BUSY` (`<prefix>.busy_rejected`).
    pub busy_rejected: Arc<Counter>,
    /// Requests whose deadline expired before the answer was ready
    /// (`<prefix>.timeouts`).
    pub timeouts: Arc<Counter>,
    /// Protocol or internal errors sent to clients (`<prefix>.errors`).
    pub errors: Arc<Counter>,
    /// Micro-batches dispatched to the executor (`<prefix>.batches`).
    pub batches: Arc<Counter>,
    /// Requests per dispatched micro-batch (`<prefix>.batch_size`).
    pub batch_size: Arc<Histogram>,
    /// Queue-to-reply latency per served request, ns
    /// (`<prefix>.request_ns`).
    pub request_ns: Arc<Histogram>,
    /// Instantaneous admission-queue depth (`<prefix>.queue.depth`).
    pub queue_depth: Arc<Gauge>,
    /// Currently open client connections (`<prefix>.connections`).
    pub connections: Arc<Gauge>,
    /// `1` while the server is draining, else `0` (`<prefix>.draining`).
    pub draining: Arc<Gauge>,
}

impl ServeObs {
    /// Registers the serving instrument set under `<prefix>.<name>`.
    pub fn register(registry: &Registry, prefix: &str) -> Arc<ServeObs> {
        let c = |name: &str| registry.counter(&format!("{prefix}.{name}"));
        Arc::new(ServeObs {
            accepted: c("accepted"),
            requests: c("requests"),
            busy_rejected: c("busy_rejected"),
            timeouts: c("timeouts"),
            errors: c("errors"),
            batches: c("batches"),
            batch_size: registry.histogram(&format!("{prefix}.batch_size")),
            request_ns: registry.histogram(&format!("{prefix}.request_ns")),
            queue_depth: registry.gauge(&format!("{prefix}.queue.depth")),
            connections: registry.gauge(&format!("{prefix}.connections")),
            draining: registry.gauge(&format!("{prefix}.draining")),
        })
    }
}

/// Instrument set for the live write path (WAL + shard mutation +
/// recovery), registered under a caller-chosen prefix (`"ingest"` in the
/// serve layer).
#[derive(Debug)]
pub struct IngestObs {
    /// Acknowledged write operations of any kind (`<prefix>.writes`).
    pub writes: Arc<Counter>,
    /// Acknowledged inserts (`<prefix>.inserts`).
    pub inserts: Arc<Counter>,
    /// Acknowledged deletes (`<prefix>.deletes`).
    pub deletes: Arc<Counter>,
    /// Acknowledged upserts (`<prefix>.upserts`).
    pub upserts: Arc<Counter>,
    /// Writes rejected before reaching the WAL (`<prefix>.rejected`).
    pub rejected: Arc<Counter>,
    /// Bytes appended to write-ahead logs (`<prefix>.wal_bytes`).
    pub wal_bytes: Arc<Counter>,
    /// WAL sync (group-commit) operations (`<prefix>.wal_syncs`).
    pub wal_syncs: Arc<Counter>,
    /// WAL *tail* records replayed on open — records past the last
    /// checkpoint, the true restart debt (`<prefix>.replayed`).
    pub replayed: Arc<Counter>,
    /// Entries restored from the checkpoint snapshot (or mmap store) on
    /// open, already durable before the tail (`<prefix>.snapshot_entries`).
    pub snapshot_entries: Arc<Counter>,
    /// Checkpoints taken (`<prefix>.checkpoints`).
    pub checkpoints: Arc<Counter>,
    /// Torn/corrupt WAL tail bytes discarded on open
    /// (`<prefix>.truncated_bytes`).
    pub truncated_bytes: Arc<Counter>,
    /// End-to-end latency of one durable write (WAL append + sync + apply),
    /// ns (`<prefix>.write_ns`).
    pub write_ns: Arc<Histogram>,
    /// Recovery (replay) time per shard on open, ns (`<prefix>.replay_ns`).
    pub replay_ns: Arc<Histogram>,
    /// Time spent writing a checkpoint, ns (`<prefix>.checkpoint_ns`).
    pub checkpoint_ns: Arc<Histogram>,
}

impl IngestObs {
    /// Registers the ingest instrument set under `<prefix>.<name>`.
    pub fn register(registry: &Registry, prefix: &str) -> Arc<IngestObs> {
        let c = |name: &str| registry.counter(&format!("{prefix}.{name}"));
        let h = |name: &str| registry.histogram(&format!("{prefix}.{name}"));
        Arc::new(IngestObs {
            writes: c("writes"),
            inserts: c("inserts"),
            deletes: c("deletes"),
            upserts: c("upserts"),
            rejected: c("rejected"),
            wal_bytes: c("wal_bytes"),
            wal_syncs: c("wal_syncs"),
            replayed: c("replayed"),
            snapshot_entries: c("snapshot_entries"),
            checkpoints: c("checkpoints"),
            truncated_bytes: c("truncated_bytes"),
            write_ns: h("write_ns"),
            replay_ns: h("replay_ns"),
            checkpoint_ns: h("checkpoint_ns"),
        })
    }
}

/// Instrument set for the mmap'd copy-on-write page store (`sg-store`),
/// registered under a caller-chosen prefix (`"store"` in the serve
/// layer). Gauges are updated with deltas so several shard stores can
/// share one instrument set and the exported value is the fleet total.
#[derive(Debug)]
pub struct StoreObs {
    /// Physical pages currently mapped across all store files
    /// (`<prefix>.pages_mapped`).
    pub pages_mapped: Arc<Gauge>,
    /// Pages written (COW'd or freshly allocated) since the last durable
    /// commit (`<prefix>.pages_dirty`).
    pub pages_dirty: Arc<Gauge>,
    /// Pages retired to the freelist over the store's lifetime
    /// (`<prefix>.pages_freed`).
    pub pages_freed: Arc<Counter>,
    /// Snapshot epochs currently pinned by readers
    /// (`<prefix>.snapshot_pins`).
    pub snapshot_pins: Arc<Gauge>,
    /// Durable meta-slot flips, i.e. committed checkpoints
    /// (`<prefix>.meta_flips`).
    pub meta_flips: Arc<Counter>,
    /// WAL records not yet folded into COW pages: the replay debt a crash
    /// right now would incur, in LSNs (`<prefix>.checkpoint_lag`).
    pub checkpoint_lag: Arc<Gauge>,
    /// Time spent in one durable commit (serialize table + msync + meta
    /// flip), ns (`<prefix>.commit_ns`).
    pub commit_ns: Arc<Histogram>,
}

impl StoreObs {
    /// Registers the store instrument set under `<prefix>.<name>`.
    pub fn register(registry: &Registry, prefix: &str) -> Arc<StoreObs> {
        let c = |name: &str| registry.counter(&format!("{prefix}.{name}"));
        let g = |name: &str| registry.gauge(&format!("{prefix}.{name}"));
        Arc::new(StoreObs {
            pages_mapped: g("pages_mapped"),
            pages_dirty: g("pages_dirty"),
            pages_freed: c("pages_freed"),
            snapshot_pins: g("snapshot_pins"),
            meta_flips: c("meta_flips"),
            checkpoint_lag: g("checkpoint_lag"),
            commit_ns: registry.histogram(&format!("{prefix}.commit_ns")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn counter_and_gauge_basic() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
        // p50 lands in the bucket containing the 3rd observation (value 3).
        let p50 = s.quantile(0.5);
        assert!((2..=4).contains(&p50), "p50 = {p50}");
        // p100 approximates the max within a factor of 2.
        let p100 = s.quantile(1.0);
        assert!((512..=1000).contains(&p100), "p100 = {p100}");
    }

    #[test]
    fn registry_reuses_handles_and_snapshots() {
        let r = Registry::new();
        let a = r.counter("x.events");
        let b = r.counter("x.events");
        a.inc();
        b.inc();
        r.gauge("x.level").set(-2);
        r.histogram("x.lat").record(5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x.events"), 2);
        assert_eq!(snap.metrics.get("x.level"), Some(&MetricValue::Gauge(-2)),);
        match snap.metrics.get("x.lat") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn registry_rejects_type_confusion() {
        let r = Registry::new();
        r.counter("m");
        r.gauge("m");
    }

    #[test]
    fn snapshot_since_subtracts() {
        let r = Registry::new();
        let c = r.counter("n");
        let h = r.histogram("t");
        c.add(3);
        h.record(10);
        let before = r.snapshot();
        c.add(2);
        h.record(20);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.counter("n"), 2);
        match delta.metrics.get("t") {
            Some(MetricValue::Histogram(hs)) => {
                assert_eq!(hs.count, 1);
                assert_eq!(hs.sum, 20);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn merge_handles_empty_sides() {
        let empty = HistogramSnapshot::default();
        let mut acc = HistogramSnapshot::default();
        let h = Histogram::new();
        h.record(42);
        let one = h.snapshot();
        acc.merge(&one);
        assert_eq!(acc, one);
        acc.merge(&empty);
        assert_eq!(acc, one);
    }
}
