//! Minimal JSON value, writer, and parser — no serde, no dependencies.
//!
//! Covers everything the exporters and [`crate::trace::QueryTrace`]
//! round-trip need: objects (insertion-ordered), arrays, strings with
//! escapes, integer and float numbers, booleans, null.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (kept exact; most sg metrics are u64 counts).
    U64(u64),
    /// Signed integer (gauges).
    I64(i64),
    /// Floating point (rates, means).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Unsigned value, accepting any non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Signed value, accepting any in-range integral number (gauges).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) => i64::try_from(v).ok(),
            Json::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// Numeric value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a decimal point / exponent so the value
                    // re-parses as a float.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and description.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "bad escape `\\{}` at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("knn k=5 \"q\"\n".into())),
            ("count".into(), Json::U64(18_446_744_073_709_551_615)),
            ("delta".into(), Json::I64(-42)),
            ("rate".into(), Json::F64(0.625)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("nested".into(), Json::Obj(vec![("k".into(), Json::U64(0))])),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "failed on: {text}");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , \"x\\u0041\\n\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("xA\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_precision_preserved() {
        let text = Json::U64(u64::MAX).to_string_compact();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }
}
