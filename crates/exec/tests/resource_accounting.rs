//! Per-query resource accounting through the sharded executor: the
//! per-shard [`ResourceVec`]s must sum exactly to the batch total, the
//! physical counters must actually move for real traffic, and repeated
//! accumulation through [`QueryStats::add`] must stay monotone and
//! lossless.

use sg_exec::{ExecConfig, Partitioner, QueryOptions, QueryOutput, QueryRequest, ShardedExecutor};
use sg_obs::ResourceVec;
use sg_sig::{Metric, Signature};

const NBITS: u32 = 128;
const SHARDS: usize = 3;

fn items_for(tid: u64) -> Vec<u32> {
    vec![
        (tid % 16) as u32,
        16 + (tid % 16) as u32,
        32 + (tid % 48) as u32,
        80 + (tid / 48) as u32,
    ]
}

fn build_exec(rows: u64) -> ShardedExecutor {
    let data: Vec<_> = (0..rows)
        .map(|tid| (tid, Signature::from_items(NBITS, &items_for(tid))))
        .collect();
    ShardedExecutor::build(
        NBITS,
        &data,
        &ExecConfig {
            shards: SHARDS,
            partitioner: Partitioner::RoundRobin,
            ..ExecConfig::default()
        },
    )
    .expect("build executor")
}

fn knn(tid: u64, k: usize) -> QueryRequest {
    QueryRequest::Knn {
        q: Signature::from_items(NBITS, &items_for(tid)),
        k,
        metric: Metric::hamming(),
    }
}

#[test]
fn per_shard_resources_sum_to_batch_total() {
    let exec = build_exec(600);
    for tid in 0..8u64 {
        let resp = exec
            .query(&knn(tid, 5), &QueryOptions::default())
            .expect("knn");
        match &resp.output {
            QueryOutput::Neighbors(pairs) => assert_eq!(pairs.len(), 5),
            other => panic!("knn got {other:?}"),
        }
        assert_eq!(resp.per_shard.len(), SHARDS);

        let mut summed = ResourceVec::default();
        for s in &resp.per_shard {
            summed.add(&s.resources);
        }
        let total = &resp.stats.resources;
        assert_eq!(summed.cpu_ns, total.cpu_ns, "cpu_ns mismatch");
        assert_eq!(summed.visits, total.visits, "visits mismatch");
        assert_eq!(summed.lane_ops, total.lane_ops, "lane_ops mismatch");
        assert_eq!(summed.pages_pinned, total.pages_pinned, "pages mismatch");
        assert_eq!(
            summed.bytes_decoded, total.bytes_decoded,
            "bytes_decoded mismatch"
        );
        assert_eq!(summed.wal_bytes, total.wal_bytes, "wal_bytes mismatch");

        // A real k-NN over 600 rows walks nodes, sweeps lanes, and
        // decodes pages on every shard.
        assert!(total.visits > 0, "no node visits accounted");
        assert!(total.lane_ops > 0, "no lane ops accounted");
        assert!(total.bytes_decoded > 0, "no decode bytes accounted");
        assert!(total.pages_pinned > 0, "no page reads accounted");
        assert_eq!(total.wal_bytes, 0, "reads must not bill WAL bytes");
    }
}

#[test]
fn accumulated_resources_are_monotone_and_lossless() {
    let exec = build_exec(400);
    let mut running = ResourceVec::default();
    let mut cpu_total = 0u64;
    let mut prev_visits = 0u64;
    for tid in 0..12u64 {
        let resp = exec
            .query(&knn(tid, 3), &QueryOptions::default())
            .expect("knn");
        let r = &resp.stats.resources;
        running.add(r);
        cpu_total += r.cpu_ns;

        // Accumulation never goes backwards, and each query moves the
        // structural counters by a visible amount.
        assert!(running.visits > prev_visits, "visits did not advance");
        prev_visits = running.visits;
    }
    // Thread CPU time has nanosecond resolution; 12 real queries cannot
    // round to zero collectively even if a single one might.
    assert!(cpu_total > 0, "no CPU time accounted across 12 queries");
    assert_eq!(running.visits, prev_visits);
    assert!(
        running.bytes_decoded >= running.pages_pinned,
        "decoded bytes below page count"
    );
}
