//! The sharded executor: partition, fan out, merge — now with a live,
//! optionally durable write path.
//!
//! Reads and writes share the same shards: each shard is a reader-writer
//! lock, so queries run against a consistent per-shard snapshot while
//! writers mutate other shards (or queue briefly on the same one). Writes
//! are routed by [`Partitioner::route`], logged append-before-apply to a
//! per-shard WAL when the executor was opened durable, and acknowledged
//! only after the log reaches disk.

use crate::merge::{self, ExecStats};
use crate::obs::ExecObs;
use crate::partition::Partitioner;
use crate::pool::ThreadPool;
use crate::shard::{
    read_meta, write_meta, DurabilityConfig, RecoveryReport, Shard, StorageMode, WriteAck, WriteOp,
};
use sg_obs::json::Json;
use sg_obs::{
    span, CostModel, CostObs, IngestObs, QueryTrace, Registry, ResourceVec, Span, SpanCtx,
};
use sg_pager::{MemStore, SgError, SgResult};
use sg_sig::{Metric, Signature};
use sg_tree::{
    CancelFlag, HealthReport, Neighbor, QueryOptions, QueryOutput, QueryRequest, QueryResponse,
    QueryStats, SetIndex, SgTree, SharedBound, Tid, TreeConfig,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Instant;

/// One query of a heterogeneous batch.
#[deprecated(
    since = "0.3.0",
    note = "use `QueryRequest` (re-exported by this crate)"
)]
pub type BatchQuery = QueryRequest;

/// A batch query's merged answer.
#[deprecated(
    since = "0.3.0",
    note = "use `QueryOutput` (re-exported by this crate)"
)]
pub type BatchOutput = QueryOutput;

/// Construction parameters for a [`ShardedExecutor`].
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of SG-tree shards the dataset is split across.
    pub shards: usize,
    /// Worker threads in the fan-out pool; `0` means one per shard.
    pub threads: usize,
    /// How transactions are assigned to shards.
    pub partitioner: Partitioner,
    /// Page size of each shard's backing store.
    pub page_size: usize,
    /// Buffer-pool frames per shard.
    pub pool_frames: usize,
    /// Per-shard tree configuration; defaults to `TreeConfig::new(nbits)`.
    pub tree: Option<TreeConfig>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            shards: 4,
            threads: 0,
            partitioner: Partitioner::RoundRobin,
            page_size: 4096,
            pool_frames: 1024,
            tree: None,
        }
    }
}

impl ExecConfig {
    fn tree_config(&self, nbits: u32) -> TreeConfig {
        self.tree
            .clone()
            .unwrap_or_else(|| TreeConfig::new(nbits))
            .pool_frames(self.pool_frames)
    }

    fn pool_threads(&self) -> usize {
        if self.threads == 0 {
            self.shards
        } else {
            self.threads
        }
    }
}

/// One shard's share of a fan-out query: runs against that shard's tree.
type ShardTask<R> = dyn Fn(&SgTree) -> (R, QueryStats) + Send + Sync;

struct Inner {
    shards: Vec<Shard>,
    obs: OnceLock<Arc<ExecObs>>,
    ingest_obs: OnceLock<Arc<IngestObs>>,
    cost_obs: OnceLock<Arc<CostObs>>,
}

impl Inner {
    fn record_shard(&self, idx: usize, stats: &QueryStats) {
        if let Some(obs) = self.obs.get() {
            obs.shard_visits[idx].add(stats.nodes_accessed);
        }
    }

    /// Feeds one finished executor-level operation into the global cost
    /// model (under index `"exec"`) and, when registered, the `cost.*`
    /// resource-total counters.
    fn record_cost(&self, kind: &'static str, wall_ns: u64, res: &ResourceVec) {
        CostModel::global().record("exec", kind, wall_ns, res);
        if let Some(c) = self.cost_obs.get() {
            c.observe(res);
        }
    }
}

/// A dataset partitioned across `K` SG-tree shards: queries fan out over a
/// fixed worker pool and merge into the canonical global answer; writes
/// route to one shard by tid and, for executors opened with
/// [`ShardedExecutor::open_durable`], are WAL-logged before they are
/// applied and acknowledged.
///
/// Every method takes `&self`: the executor is `Sync` and may be shared
/// (e.g. behind an [`Arc`]) by any number of reader *and* writer threads.
pub struct ShardedExecutor {
    inner: Arc<Inner>,
    pool: ThreadPool,
    nbits: u32,
    len: AtomicI64,
    partitioner: Partitioner,
    recovery: Option<RecoveryReport>,
}

impl ShardedExecutor {
    /// Partitions `data` and builds one memory-backed SG-tree per shard.
    pub fn build(
        nbits: u32,
        data: &[(Tid, Signature)],
        config: &ExecConfig,
    ) -> Result<ShardedExecutor, SgError> {
        let parts = config.partitioner.partition(data, config.shards);
        let mut shards = Vec::with_capacity(parts.len());
        for part in &parts {
            let mut tree = SgTree::create(
                Arc::new(MemStore::new(config.page_size)),
                config.tree_config(nbits),
            )?;
            let mut catalog = HashMap::with_capacity(part.len());
            for (tid, sig) in part {
                tree.insert(*tid, sig);
                catalog.insert(*tid, sig.clone());
            }
            shards.push(Shard::memory(tree, catalog));
        }
        Ok(ShardedExecutor {
            inner: Arc::new(Inner {
                shards,
                obs: OnceLock::new(),
                ingest_obs: OnceLock::new(),
                cost_obs: OnceLock::new(),
            }),
            pool: ThreadPool::new(config.pool_threads()),
            nbits,
            len: AtomicI64::new(data.len() as i64),
            partitioner: config.partitioner,
            recovery: None,
        })
    }

    /// Opens (creating if absent) a durable executor rooted at
    /// `durability.dir`: one WAL + checkpoint snapshot per shard plus a
    /// meta file pinning the layout. Reopening replays each shard's
    /// snapshot and log, so the executor recovers to the last acknowledged
    /// write after a crash; [`ShardedExecutor::recovery`] reports what was
    /// replayed.
    ///
    /// An existing directory's shard count and partitioner override
    /// `config` — routing must match the layout the data was written
    /// under — but a `nbits` mismatch is refused outright.
    pub fn open_durable(
        nbits: u32,
        config: &ExecConfig,
        durability: &DurabilityConfig,
    ) -> SgResult<ShardedExecutor> {
        std::fs::create_dir_all(&durability.dir)
            .map_err(|e| SgError::io("creating the durable executor directory", e))?;
        let (shard_count, partitioner) = match read_meta(&durability.dir)? {
            Some((meta_nbits, shards, partitioner)) => {
                if meta_nbits != nbits {
                    return Err(SgError::BadMeta(format!(
                        "durable executor at {:?} was written with nbits={meta_nbits}, \
                         reopened with nbits={nbits}",
                        durability.dir
                    )));
                }
                (shards as usize, partitioner)
            }
            None => {
                write_meta(
                    &durability.dir,
                    nbits,
                    config.shards as u32,
                    config.partitioner,
                )?;
                (config.shards, config.partitioner)
            }
        };
        let tree_config = config.tree_config(nbits);
        let mut shards = Vec::with_capacity(shard_count);
        let mut report = RecoveryReport::default();
        let mut len = 0i64;
        for idx in 0..shard_count {
            let (shard, rec) = Shard::open_durable(
                &durability.dir,
                idx,
                durability.fsync,
                durability.storage,
                nbits,
                &tree_config,
                config.page_size,
            )?;
            report.replayed += rec.snapshot_entries + rec.wal_records;
            report.snapshot_entries += rec.snapshot_entries;
            report.wal_records += rec.wal_records;
            report.truncated_bytes += rec.truncated_bytes;
            report.replay_ns.push(rec.replay_ns);
            len += shard.len() as i64;
            shards.push(shard);
        }
        Ok(ShardedExecutor {
            inner: Arc::new(Inner {
                shards,
                obs: OnceLock::new(),
                ingest_obs: OnceLock::new(),
                cost_obs: OnceLock::new(),
            }),
            pool: ThreadPool::new(config.pool_threads().max(shard_count)),
            nbits,
            len: AtomicI64::new(len),
            partitioner,
            recovery: Some(report),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Worker threads serving the fan-out pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Total transactions indexed across all shards.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::SeqCst).max(0) as u64
    }

    /// Whether the executor indexes no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Signature width shared by every shard.
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// The partitioner the dataset was laid out with.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// What [`ShardedExecutor::open_durable`] recovered; `None` for a
    /// memory-only executor.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Runs `f` against one shard's tree under that shard's read lock
    /// (used by tests and tools; queries should go through
    /// [`ShardedExecutor::query`]).
    pub fn with_shard<R>(&self, idx: usize, f: impl FnOnce(&SgTree) -> R) -> R {
        let st = self.inner.shards[idx].state.read();
        f(&st.tree)
    }

    /// One [`HealthReport`] per shard, each computed in a single tree
    /// walk under that shard's read lock (locks are taken one shard at
    /// a time, so writes keep flowing on the other shards).
    pub fn health_reports(&self) -> Vec<HealthReport> {
        (0..self.shards())
            .map(|i| self.with_shard(i, |t| t.health_report()))
            .collect()
    }

    /// The `/debug/tree` document: per-shard health reports, an
    /// entry-weighted merged summary (whose findings are re-derived
    /// from the merged levels), and the *observed* per-level prune
    /// behaviour from the process-wide trace aggregates — so the
    /// paper's estimated false-drop probability sits next to what the
    /// executed queries actually did.
    pub fn health_json(&self) -> Json {
        let reports = self.health_reports();
        let merged = HealthReport::merged(reports.iter());
        let (traces, observed) = sg_obs::trace_level_aggregates();
        let shard_docs: Vec<Json> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut doc = vec![("shard".to_string(), Json::U64(i as u64))];
                let mut visits = None;
                if let Some(obs) = self.inner.obs.get() {
                    if let Some(c) = obs.shard_visits.get(i) {
                        visits = Some(c.get());
                    }
                }
                doc.push(("visits".to_string(), visits.map_or(Json::Null, Json::U64)));
                doc.push(("report".to_string(), r.to_json_value()));
                Json::Obj(doc)
            })
            .collect();
        let observed_docs: Vec<Json> = observed
            .iter()
            .map(|l| {
                let prune_rate = if l.lower_bound_evals > 0 {
                    l.entries_pruned as f64 / l.lower_bound_evals as f64
                } else {
                    0.0
                };
                let est = merged
                    .levels
                    .get(l.level as usize)
                    .map(|m| m.est_false_drop);
                Json::Obj(vec![
                    ("level".to_string(), Json::U64(l.level as u64)),
                    ("nodes_visited".to_string(), Json::U64(l.nodes_visited)),
                    ("entries_pruned".to_string(), Json::U64(l.entries_pruned)),
                    (
                        "lower_bound_evals".to_string(),
                        Json::U64(l.lower_bound_evals),
                    ),
                    ("exact_distances".to_string(), Json::U64(l.exact_distances)),
                    ("observed_prune_rate".to_string(), Json::F64(prune_rate)),
                    (
                        "observed_pass_rate".to_string(),
                        Json::F64(1.0 - prune_rate),
                    ),
                    (
                        "est_false_drop".to_string(),
                        est.map_or(Json::Null, Json::F64),
                    ),
                ])
            })
            .collect();
        let store_docs: Vec<Json> = self
            .store_stats()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Json::Obj(vec![
                    ("shard".to_string(), Json::U64(i as u64)),
                    ("pages_mapped".to_string(), Json::U64(s.pages_mapped)),
                    ("pages_allocated".to_string(), Json::U64(s.pages_allocated)),
                    (
                        "pages_pending_free".to_string(),
                        Json::U64(s.pages_pending_free),
                    ),
                    ("pages_reusable".to_string(), Json::U64(s.pages_reusable)),
                    (
                        "dirty_since_commit".to_string(),
                        Json::U64(s.dirty_since_commit.max(0) as u64),
                    ),
                    ("snapshot_pins".to_string(), Json::U64(s.snapshot_pins)),
                    ("tx_id".to_string(), Json::U64(s.tx_id)),
                    ("checkpoint_lsn".to_string(), Json::U64(s.checkpoint_lsn)),
                    ("epoch".to_string(), Json::U64(s.epoch)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("status".to_string(), Json::Str(merged.status().to_string())),
            ("shards".to_string(), Json::Arr(shard_docs)),
            ("summary".to_string(), merged.to_json_value()),
            (
                "observed".to_string(),
                Json::Obj(vec![
                    ("traces".to_string(), Json::U64(traces)),
                    ("levels".to_string(), Json::Arr(observed_docs)),
                ]),
            ),
            (
                "storage".to_string(),
                Json::Obj(vec![
                    (
                        "mode".to_string(),
                        Json::Str(self.storage_mode().as_str().to_string()),
                    ),
                    ("stores".to_string(), Json::Arr(store_docs)),
                ]),
            ),
        ])
    }

    /// Registers executor instruments (and the pool's queue-depth gauge)
    /// under `<prefix>.*`. Effective once; later calls return the first
    /// instrument set.
    pub fn register_obs(&self, registry: &Registry, prefix: &str) -> Arc<ExecObs> {
        let obs = ExecObs::register(registry, prefix, self.shards());
        let obs = self.inner.obs.get_or_init(|| obs);
        self.pool.set_depth_gauge(Arc::clone(&obs.queue_depth));
        Arc::clone(obs)
    }

    /// Registers ingest instruments under `<prefix>.*` and flushes the
    /// recovery report (replayed records, replay time, discarded tail
    /// bytes) into them. Effective once; later calls return the first
    /// instrument set.
    pub fn register_ingest_obs(&self, registry: &Registry, prefix: &str) -> Arc<IngestObs> {
        let obs = self.inner.ingest_obs.get_or_init(|| {
            let obs = IngestObs::register(registry, prefix);
            if let Some(rep) = &self.recovery {
                // `replayed` counts only WAL *tail* records actually
                // re-applied on open; entries restored wholesale from a
                // checkpoint are reported separately. (The old behaviour
                // folded both into `replayed`, which made a freshly
                // checkpointed reopen look like a long replay.)
                obs.replayed.add(rep.wal_records);
                obs.snapshot_entries.add(rep.snapshot_entries);
                obs.truncated_bytes.add(rep.truncated_bytes);
                for &ns in &rep.replay_ns {
                    obs.replay_ns.record(ns);
                }
            }
            obs
        });
        Arc::clone(obs)
    }

    /// Registers query/write resource-total counters (`<prefix>.cpu_ns`,
    /// `<prefix>.lane_ops`, …) fed by per-operation [`ResourceVec`]s.
    /// Effective once; later calls return the first instrument set.
    pub fn register_cost_obs(&self, registry: &Registry, prefix: &str) -> Arc<CostObs> {
        let obs = self
            .inner
            .cost_obs
            .get_or_init(|| CostObs::register(registry, prefix));
        Arc::clone(obs)
    }

    /// Registers page-store instruments under `<prefix>.*` and attaches
    /// them to every mmap shard's store (gauges are adjusted by delta, so
    /// all shards share one instrument set). Returns `None` when no shard
    /// uses the mmap store. Effective once per store.
    pub fn register_store_obs(
        &self,
        registry: &Registry,
        prefix: &str,
    ) -> Option<Arc<sg_obs::StoreObs>> {
        if !self.inner.shards.iter().any(|s| s.store().is_some()) {
            return None;
        }
        let obs = sg_obs::StoreObs::register(registry, prefix);
        for shard in &self.inner.shards {
            if let Some(store) = shard.store() {
                store.attach_obs(Arc::clone(&obs));
            }
        }
        Some(obs)
    }

    /// Per-shard page-store statistics; empty for heap storage.
    pub fn store_stats(&self) -> Vec<sg_store::StoreStats> {
        self.inner
            .shards
            .iter()
            .filter_map(|s| s.store().map(|st| st.stats()))
            .collect()
    }

    /// The storage mode the shards run on.
    pub fn storage_mode(&self) -> StorageMode {
        if self.inner.shards.iter().any(|s| s.store().is_some()) {
            StorageMode::Mmap
        } else {
            StorageMode::Heap
        }
    }

    fn ingest_obs(&self) -> Option<&IngestObs> {
        self.inner.ingest_obs.get().map(|o| o.as_ref())
    }

    fn check_sig(&self, sig: &Signature) -> SgResult<()> {
        if sig.nbits() != self.nbits {
            return Err(SgError::invalid(format!(
                "signature has {} bits; executor expects {}",
                sig.nbits(),
                self.nbits
            )));
        }
        Ok(())
    }

    /// The shard currently holding `tid`, if any: the routed shard first
    /// (the only possibility for live-written data), then the rest (bulk
    /// loads place by position or clustering, not by tid).
    fn owner_of(&self, tid: Tid) -> Option<usize> {
        let k = self.shards();
        let routed = self.partitioner.route(tid, k);
        if self.inner.shards[routed].contains(tid) {
            return Some(routed);
        }
        (0..k).find(|&i| i != routed && self.inner.shards[i].contains(tid))
    }

    fn record_write(&self, op: &WriteOp, started: Instant) {
        if let Some(o) = self.ingest_obs() {
            o.writes.inc();
            match op {
                WriteOp::Insert { .. } => o.inserts.inc(),
                WriteOp::Delete { .. } => o.deletes.inc(),
                WriteOp::Upsert { .. } => o.upserts.inc(),
            }
            o.write_ns.record(started.elapsed().as_nanos() as u64);
        }
    }

    /// Bills one applied write (or write group) to the cost model under
    /// `("exec", "write")`: its wall time and the WAL bytes it appended.
    fn record_write_cost(&self, started: Instant, wal_bytes: u64) {
        let res = ResourceVec {
            wal_bytes,
            ..ResourceVec::default()
        };
        self.inner
            .record_cost("write", started.elapsed().as_nanos() as u64, &res);
    }

    /// Adds a new transaction, durably when the executor is durable.
    /// Rejects a tid that is already indexed (use
    /// [`ShardedExecutor::upsert`] to replace).
    pub fn insert(&self, tid: Tid, sig: &Signature) -> SgResult<WriteAck> {
        self.check_sig(sig)?;
        let started = Instant::now();
        let k = self.shards();
        let routed = self.partitioner.route(tid, k);
        // Legacy bulk placement: the routed shard's own duplicate check is
        // authoritative for live data, but a bulk-loaded copy may live in
        // any shard. Scan the rest first (read locks, one at a time).
        if (0..k).any(|i| i != routed && self.inner.shards[i].contains(tid)) {
            if let Some(o) = self.ingest_obs() {
                o.rejected.inc();
            }
            return Err(SgError::invalid(format!("insert of duplicate tid {tid}")));
        }
        let op = WriteOp::Insert {
            tid,
            sig: sig.clone(),
        };
        let (mut results, delta, wal_bytes) = self.inner.shards[routed].apply_batch(
            std::slice::from_ref(&op),
            &[],
            self.ingest_obs(),
        );
        self.len.fetch_add(delta, Ordering::SeqCst);
        let ack = results.pop().expect("one op in, one result out")?;
        self.record_write(&op, started);
        self.record_write_cost(started, wal_bytes);
        Ok(ack)
    }

    /// Removes a transaction by id. `applied` is `false` when no such tid
    /// is indexed.
    pub fn delete(&self, tid: Tid) -> SgResult<WriteAck> {
        self.delete_matching(tid, None)
    }

    fn delete_matching(&self, tid: Tid, expected: Option<&Signature>) -> SgResult<WriteAck> {
        let started = Instant::now();
        let op = WriteOp::Delete { tid };
        let idx = self.owner_of(tid);
        let ack = match idx {
            Some(idx) => {
                let expected = vec![expected.cloned()];
                let (mut results, delta, wal_bytes) = self.inner.shards[idx].apply_batch(
                    std::slice::from_ref(&op),
                    &expected,
                    self.ingest_obs(),
                );
                self.len.fetch_add(delta, Ordering::SeqCst);
                self.record_write_cost(started, wal_bytes);
                results.pop().expect("one op in, one result out")?
            }
            None => WriteAck {
                tid,
                applied: false,
                lsn: None,
            },
        };
        self.record_write(&op, started);
        Ok(ack)
    }

    /// Inserts or replaces a transaction. `applied` is always `true`.
    pub fn upsert(&self, tid: Tid, sig: &Signature) -> SgResult<WriteAck> {
        self.check_sig(sig)?;
        let started = Instant::now();
        let k = self.shards();
        let routed = self.partitioner.route(tid, k);
        // A bulk-loaded copy in a foreign shard must go first, or the
        // routed insert would create a duplicate. The two steps are
        // separately logged; a crash between them loses only the (never
        // co-acknowledged) intermediate state.
        let mut evict_wal = 0u64;
        if let Some(owner) = self.owner_of(tid) {
            if owner != routed {
                let del = WriteOp::Delete { tid };
                let (_, delta, wal) = self.inner.shards[owner].apply_batch(
                    std::slice::from_ref(&del),
                    &[],
                    self.ingest_obs(),
                );
                self.len.fetch_add(delta, Ordering::SeqCst);
                evict_wal = wal;
            }
        }
        let op = WriteOp::Upsert {
            tid,
            sig: sig.clone(),
        };
        let (mut results, delta, wal_bytes) = self.inner.shards[routed].apply_batch(
            std::slice::from_ref(&op),
            &[],
            self.ingest_obs(),
        );
        self.len.fetch_add(delta, Ordering::SeqCst);
        let ack = results.pop().expect("one op in, one result out")?;
        self.record_write(&op, started);
        self.record_write_cost(started, evict_wal + wal_bytes);
        Ok(ack)
    }

    /// Applies a batch of writes, grouped by destination shard and
    /// group-committed: each shard involved does **one** WAL append and
    /// one sync for its whole sub-batch, and the sub-batches run in
    /// parallel on the worker pool. Results come back in input order.
    ///
    /// Ops targeting the same tid land in the same shard group and apply
    /// in input order; ops for different tids may interleave across
    /// shards.
    pub fn write_batch(&self, ops: Vec<WriteOp>) -> Vec<SgResult<WriteAck>> {
        self.write_batch_spanned(ops, None)
    }

    /// [`ShardedExecutor::write_batch`] with a causal span parent: each
    /// per-shard group commit runs under an `exec.write_group` span, so
    /// the pager's WAL append/fsync spans nest beneath it. Because the
    /// group shares one WAL sync, its pager work is attributed to the one
    /// carried trace.
    pub fn write_batch_spanned(
        &self,
        ops: Vec<WriteOp>,
        parent: Option<SpanCtx>,
    ) -> Vec<SgResult<WriteAck>> {
        let started = Instant::now();
        let k = self.shards();
        let n = ops.len();
        let mut slots: Vec<Option<SgResult<WriteAck>>> = (0..n).map(|_| None).collect();
        let mut groups: Vec<Vec<(usize, WriteOp)>> = (0..k).map(|_| Vec::new()).collect();
        for (i, op) in ops.into_iter().enumerate() {
            if let Some(sig) = op.signature() {
                if let Err(e) = self.check_sig(sig) {
                    if let Some(o) = self.ingest_obs() {
                        o.rejected.inc();
                    }
                    slots[i] = Some(Err(e));
                    continue;
                }
            }
            let tid = op.tid();
            let routed = self.partitioner.route(tid, k);
            let dest = match &op {
                // Deletes chase bulk-loaded tids to whichever shard holds
                // them; a tid indexed nowhere still resolves to the routed
                // shard, which acknowledges `applied = false`.
                WriteOp::Delete { .. } => self.owner_of(tid).unwrap_or(routed),
                WriteOp::Insert { .. } | WriteOp::Upsert { .. } => {
                    // Evict a bulk-loaded copy from a foreign shard before
                    // the routed shard takes over (see `upsert`). For
                    // inserts the duplicate is rejected instead.
                    if let Some(owner) = self.owner_of(tid) {
                        if owner != routed {
                            if matches!(op, WriteOp::Insert { .. }) {
                                if let Some(o) = self.ingest_obs() {
                                    o.rejected.inc();
                                }
                                slots[i] = Some(Err(SgError::invalid(format!(
                                    "insert of duplicate tid {tid}"
                                ))));
                                continue;
                            }
                            let del = WriteOp::Delete { tid };
                            let (_, delta, _) = self.inner.shards[owner].apply_batch(
                                std::slice::from_ref(&del),
                                &[],
                                self.ingest_obs(),
                            );
                            self.len.fetch_add(delta, Ordering::SeqCst);
                        }
                    }
                    routed
                }
            };
            groups[dest].push((i, op));
        }
        // Fan the per-shard groups out over the pool; each worker holds
        // its shard's write lock once and commits its group as a unit.
        let (tx, rx) = mpsc::channel();
        let mut submitted = 0usize;
        for (shard_idx, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            submitted += 1;
            let inner = Arc::clone(&self.inner);
            let tx = tx.clone();
            self.pool.submit(move || {
                let _sp = parent.map(|p| {
                    let mut s = Span::with_parent(Some(p), "exec.write_group", "exec");
                    s.attr("shard", shard_idx as u64);
                    s.attr("ops", group.len() as u64);
                    s
                });
                let (indices, ops): (Vec<usize>, Vec<WriteOp>) = group.into_iter().unzip();
                let (results, delta, wal_bytes) = inner.shards[shard_idx].apply_batch(
                    &ops,
                    &[],
                    inner.ingest_obs.get().map(|o| o.as_ref()),
                );
                let _ = tx.send((indices, ops, results, delta, wal_bytes));
            });
        }
        drop(tx);
        for _ in 0..submitted {
            let (indices, ops, results, delta, wal_bytes) =
                rx.recv().expect("every write group reports");
            self.len.fetch_add(delta, Ordering::SeqCst);
            self.record_write_cost(started, wal_bytes);
            for ((i, op), result) in indices.into_iter().zip(ops).zip(results) {
                if result.is_ok() {
                    self.record_write(&op, started);
                } else if let Some(o) = self.ingest_obs() {
                    o.rejected.inc();
                }
                slots[i] = Some(result);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every op resolves"))
            .collect()
    }

    /// Checkpoints every durable shard — snapshots its catalog and
    /// truncates its WAL — bounding both log size and recovery time.
    /// A no-op for memory-only executors.
    pub fn checkpoint(&self) -> SgResult<()> {
        for shard in &self.inner.shards {
            shard.checkpoint(self.ingest_obs())?;
        }
        Ok(())
    }

    /// Flushes all durable state: today synonymous with
    /// [`ShardedExecutor::checkpoint`].
    pub fn flush(&self) -> SgResult<()> {
        self.checkpoint()
    }

    /// Spawns a background checkpointer that folds the group-committed
    /// WAL into each shard's checkpoint every `every` — for mmap shards,
    /// one copy-on-write meta-page flip per shard — bounding both log
    /// size and restart time without blocking writers for long (each
    /// shard is checkpointed under its read lock, one at a time).
    /// Stops when the returned handle is dropped.
    pub fn start_checkpointer(self: &Arc<Self>, every: std::time::Duration) -> Checkpointer {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("sg-checkpointer".into())
            .spawn(move || {
                let slice = std::time::Duration::from_millis(25);
                loop {
                    // Sleep in slices so drop/stop is prompt.
                    let mut slept = std::time::Duration::ZERO;
                    while slept < every {
                        if flag.load(Ordering::Relaxed) {
                            return;
                        }
                        let nap = slice.min(every - slept);
                        std::thread::sleep(nap);
                        slept += nap;
                    }
                    if flag.load(Ordering::Relaxed) {
                        return;
                    }
                    // A failed checkpoint (e.g. disk full) leaves the WAL
                    // intact; the next tick retries.
                    let _ = exec.checkpoint();
                }
            })
            .expect("spawning the checkpointer thread");
        Checkpointer {
            stop,
            handle: Some(handle),
        }
    }

    /// Fans `run` out over every shard and collects `(result, stats)` per
    /// shard, in shard order. Each shard task holds that shard's read
    /// lock only while it runs, so writers interleave between tasks.
    fn fan_out<R: Send + 'static>(&self, run: Arc<ShardTask<R>>) -> (Vec<R>, Vec<QueryStats>) {
        let n = self.shards();
        let (tx, rx) = mpsc::channel();
        for idx in 0..n {
            let inner = Arc::clone(&self.inner);
            let run = Arc::clone(&run);
            let tx = tx.clone();
            self.pool.submit(move || {
                let (r, stats) = match inner.shards[idx].read_view() {
                    // Mmap shard: run on the published snapshot view —
                    // no shard lock, so writers never block this query
                    // (and an in-flight checkpoint can't move its pages).
                    Some(view) => run(&view),
                    None => {
                        let st = inner.shards[idx].state.read();
                        run(&st.tree)
                    }
                };
                inner.record_shard(idx, &stats);
                let _ = tx.send((idx, r, stats));
            });
        }
        drop(tx);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut per_shard = vec![QueryStats::default(); n];
        for (idx, r, stats) in rx {
            results[idx] = Some(r);
            per_shard[idx] = stats;
        }
        let results = results
            .into_iter()
            .map(|r| r.expect("every shard task reports"))
            .collect();
        (results, per_shard)
    }

    fn finish<R>(
        &self,
        started: Instant,
        per_shard: Vec<QueryStats>,
        merge: impl FnOnce() -> R,
    ) -> (R, ExecStats) {
        let m0 = Instant::now();
        let merged = merge();
        let merge_ns = m0.elapsed().as_nanos() as u64;
        let mut stats = ExecStats::from_shards(per_shard);
        stats.merge_ns = merge_ns;
        if let Some(obs) = self.inner.obs.get() {
            obs.queries.inc();
            obs.query_ns.record(started.elapsed().as_nanos() as u64);
            obs.merge_ns.record(merge_ns);
        }
        (merged, stats)
    }

    /// Answers `req` under `opts` — the unified entry point. k-NN shards
    /// cooperate through a [`SharedBound`]; `opts.trace` produces a parent
    /// trace whose children are the per-shard traces in shard order.
    pub fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse> {
        self.check_sig(req.signature())?;
        if opts.expired() {
            return Err(SgError::Cancelled);
        }
        let started = Instant::now();
        let shard_req = Arc::new(req.clone());
        let shard_opts = opts.clone();
        let bound = Arc::new(SharedBound::new());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| {
            match tree.query_shared(&shard_req, &shard_opts, &bound) {
                Ok(resp) => (Ok((resp.output, resp.trace)), resp.stats),
                Err(e) => (Err(e), QueryStats::default()),
            }
        }));
        let mut outputs = Vec::with_capacity(parts.len());
        let mut children = Vec::with_capacity(parts.len());
        for part in parts {
            let (output, trace) = part?;
            outputs.push(output);
            children.push(trace);
        }
        let (output, stats) = self.finish(started, per_shard, || merge_outputs(req, outputs));
        self.inner.record_cost(
            req.kind(),
            started.elapsed().as_nanos() as u64,
            &stats.total.resources,
        );
        let trace = if opts.trace {
            let mut trace = QueryTrace::new(
                format!("{} shards={}", req.label(), self.shards()),
                "sg-exec",
            );
            trace.nodes_accessed = stats.total.nodes_accessed;
            trace.data_compared = stats.total.data_compared;
            trace.dist_computations = stats.total.dist_computations;
            trace.logical_reads = stats.total.io.logical_reads;
            trace.physical_reads = stats.total.io.physical_reads;
            trace.duration_ns = started.elapsed().as_nanos() as u64;
            trace.results = output.len() as u64;
            for child in children.into_iter().flatten() {
                trace.push_child(child);
            }
            Some(trace)
        } else {
            None
        };
        Ok(QueryResponse {
            output,
            stats: stats.total,
            per_shard: stats.per_shard,
            merge_ns: stats.merge_ns,
            trace,
        })
    }

    /// Global `k`-NN: each shard runs a depth-first k-NN cooperating
    /// through a [`SharedBound`], so a shard that already found `k` close
    /// neighbors shrinks every other shard's search. The merged answer is
    /// exactly the single-tree (canonical) k-NN result.
    pub fn knn(&self, q: &Signature, k: usize, metric: &Metric) -> (Vec<Neighbor>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let m = *metric;
        let bound = Arc::new(SharedBound::new());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| {
            tree.knn_shared(&q, k, &m, &bound)
        }));
        let out = self.finish(started, per_shard, || merge::merge_knn(parts, k));
        self.inner.record_cost(
            "knn",
            started.elapsed().as_nanos() as u64,
            &out.1.total.resources,
        );
        out
    }

    /// Global similarity range query (distance ≤ `eps`).
    pub fn range(&self, q: &Signature, eps: f64, metric: &Metric) -> (Vec<Neighbor>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let m = *metric;
        let (parts, per_shard) =
            self.fan_out(Arc::new(move |tree: &SgTree| tree.range(&q, eps, &m)));
        let out = self.finish(started, per_shard, || merge::merge_range(parts));
        self.inner.record_cost(
            "range",
            started.elapsed().as_nanos() as u64,
            &out.1.total.resources,
        );
        out
    }

    /// Transactions whose signature is a superset of `q`.
    pub fn containing(&self, q: &Signature) -> (Vec<Tid>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| tree.containing(&q)));
        let out = self.finish(started, per_shard, || merge::merge_tids(parts));
        self.inner.record_cost(
            "containing",
            started.elapsed().as_nanos() as u64,
            &out.1.total.resources,
        );
        out
    }

    /// Transactions whose signature is a subset of `q`.
    pub fn contained_in(&self, q: &Signature) -> (Vec<Tid>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| tree.contained_in(&q)));
        let out = self.finish(started, per_shard, || merge::merge_tids(parts));
        self.inner.record_cost(
            "contained_in",
            started.elapsed().as_nanos() as u64,
            &out.1.total.resources,
        );
        out
    }

    /// Transactions whose signature equals `q` exactly.
    pub fn exact(&self, q: &Signature) -> (Vec<Tid>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| tree.exact(&q)));
        let out = self.finish(started, per_shard, || merge::merge_tids(parts));
        self.inner.record_cost(
            "exact",
            started.elapsed().as_nanos() as u64,
            &out.1.total.resources,
        );
        out
    }

    /// [`ShardedExecutor::knn`] with an EXPLAIN trace whose children are
    /// the per-shard traces, one per shard in shard order.
    #[deprecated(
        since = "0.3.0",
        note = "use `query(&QueryRequest::Knn { .. }, &QueryOptions::traced())`"
    )]
    pub fn knn_explain(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
    ) -> (Vec<Neighbor>, ExecStats, QueryTrace) {
        let resp = self
            .query(
                &QueryRequest::Knn {
                    q: q.clone(),
                    k,
                    metric: *metric,
                },
                &QueryOptions::traced(),
            )
            .expect("in-width, un-cancelled k-NN cannot fail");
        let hits = match resp.output {
            QueryOutput::Neighbors(v) => v,
            QueryOutput::Tids(_) => unreachable!("k-NN answers are neighbors"),
        };
        let stats = ExecStats {
            total: resp.stats,
            per_shard: resp.per_shard,
            merge_ns: resp.merge_ns,
        };
        (
            hits,
            stats,
            resp.trace.expect("traced query carries a trace"),
        )
    }

    /// Runs a batch of heterogeneous queries through the pool, pipelined:
    /// all `queries.len() × shards` shard-tasks are enqueued up front, and
    /// whichever task finishes a query last performs that query's merge.
    /// Results come back in input order.
    pub fn execute_batch(&self, queries: Vec<QueryRequest>) -> Vec<SgResult<QueryResponse>> {
        let items = queries
            .into_iter()
            .map(|q| (q, CancelFlag::new()))
            .collect();
        self.execute_batch_cancellable(items)
    }

    /// [`ShardedExecutor::execute_batch`] with a per-query [`CancelFlag`].
    ///
    /// A query whose flag is cancelled before all of its shard tasks ran
    /// skips the remaining shard work and its merge, and reports
    /// [`SgError::Cancelled`] in its output slot. A query whose signature
    /// does not match the executor's width reports [`SgError::Invalid`]
    /// without running at all.
    pub fn execute_batch_cancellable(
        &self,
        queries: Vec<(QueryRequest, CancelFlag)>,
    ) -> Vec<SgResult<QueryResponse>> {
        let items = queries
            .into_iter()
            .map(|(q, cancel)| {
                (
                    q,
                    QueryOptions {
                        cancel: Some(cancel),
                        ..QueryOptions::default()
                    },
                )
            })
            .collect();
        self.execute_batch_with(items)
    }

    /// [`ShardedExecutor::execute_batch_cancellable`] with full per-query
    /// [`QueryOptions`]: cancellation, a deadline, EXPLAIN tracing (the
    /// merged response carries a parent trace whose children are the
    /// per-shard traces), and a causal span parent under which each shard
    /// task records an `exec.shard` span and the merge an `exec.merge`
    /// span.
    pub fn execute_batch_with(
        &self,
        queries: Vec<(QueryRequest, QueryOptions)>,
    ) -> Vec<SgResult<QueryResponse>> {
        let n_shards = self.shards();
        let n_queries = queries.len();
        if n_queries == 0 {
            return Vec::new();
        }
        if let Some(obs) = self.inner.obs.get() {
            obs.batches.inc();
        }
        let (tx, rx) = mpsc::channel();
        let mut resolved: Vec<Option<SgResult<QueryResponse>>> =
            (0..n_queries).map(|_| None).collect();
        let mut submitted = 0usize;
        for (qi, (query, opts)) in queries.into_iter().enumerate() {
            if let Err(e) = self.check_sig(query.signature()) {
                resolved[qi] = Some(Err(e));
                continue;
            }
            submitted += 1;
            let state = Arc::new(BatchState {
                parts: Mutex::new((0..n_shards).map(|_| None).collect()),
                remaining: AtomicUsize::new(n_shards),
                started: Instant::now(),
                cancel: opts.cancel.clone().unwrap_or_default(),
                trace: opts.trace,
                deadline: opts.deadline,
                span: opts.span,
            });
            let query = Arc::new(query);
            let bound = Arc::new(SharedBound::new());
            for si in 0..n_shards {
                let inner = Arc::clone(&self.inner);
                let state = Arc::clone(&state);
                let query = Arc::clone(&query);
                let bound = Arc::clone(&bound);
                let tx = tx.clone();
                self.pool.submit(move || {
                    let part = if state.cancel.is_cancelled() {
                        if let Some(p) = state.span {
                            // Record the skip so a cancelled request's
                            // trace shows where work stopped.
                            span::emit(
                                p.trace_id,
                                p.span_id,
                                "exec.shard",
                                "exec",
                                span::now_ns(),
                                0,
                                &[("shard", si as u64), ("cancelled", 1)],
                            );
                        }
                        None
                    } else {
                        let mut sp = state.span.map(|p| {
                            let mut s = Span::with_parent(Some(p), "exec.shard", "exec");
                            s.attr("shard", si as u64);
                            s
                        });
                        let st = inner.shards[si].state.read();
                        let opts = QueryOptions {
                            trace: state.trace,
                            cancel: Some(state.cancel.clone()),
                            deadline: state.deadline,
                            span: None,
                        };
                        match st.tree.query_shared(&query, &opts, &bound) {
                            Ok(resp) => {
                                inner.record_shard(si, &resp.stats);
                                if let Some(s) = sp.as_mut() {
                                    s.attr("nodes", resp.stats.nodes_accessed);
                                }
                                Some((resp.output, resp.stats, resp.trace))
                            }
                            Err(_) => None, // cancelled mid-flight
                        }
                    };
                    {
                        let mut parts = state.parts.lock().expect("batch state poisoned");
                        parts[si] = part;
                    }
                    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let result = finish_batch_query(&inner, &state, &query);
                        let _ = tx.send((qi, result));
                    }
                });
            }
        }
        drop(tx);
        if submitted > 0 {
            for (qi, result) in rx {
                resolved[qi] = Some(result);
            }
        }
        resolved
            .into_iter()
            .map(|r| r.expect("every batch query reports"))
            .collect()
    }
}

/// Handle to the background checkpointer thread spawned by
/// [`ShardedExecutor::start_checkpointer`]. Dropping it stops the thread
/// (waiting for any in-flight checkpoint to finish).
pub struct Checkpointer {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Checkpointer {
    /// Stops the checkpointer and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl SetIndex for ShardedExecutor {
    fn name(&self) -> &'static str {
        "sg-exec"
    }

    fn len(&self) -> u64 {
        ShardedExecutor::len(self)
    }

    fn nbits(&self) -> u32 {
        ShardedExecutor::nbits(self)
    }

    fn insert(&mut self, tid: Tid, sig: &Signature) -> SgResult<()> {
        ShardedExecutor::insert(self, tid, sig).map(|_| ())
    }

    fn delete(&mut self, tid: Tid, sig: &Signature) -> SgResult<bool> {
        self.check_sig(sig)?;
        self.delete_matching(tid, Some(sig)).map(|ack| ack.applied)
    }

    fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse> {
        ShardedExecutor::query(self, req, opts)
    }
}

/// Merges per-shard outputs into the canonical global answer for `req`.
fn merge_outputs(req: &QueryRequest, outputs: Vec<QueryOutput>) -> QueryOutput {
    let mut neighbor_parts = Vec::new();
    let mut tid_parts = Vec::new();
    for out in outputs {
        match out {
            QueryOutput::Neighbors(v) => neighbor_parts.push(v),
            QueryOutput::Tids(v) => tid_parts.push(v),
        }
    }
    match req {
        QueryRequest::Knn { k, .. } => QueryOutput::Neighbors(merge::merge_knn(neighbor_parts, *k)),
        QueryRequest::Range { .. } => QueryOutput::Neighbors(merge::merge_range(neighbor_parts)),
        QueryRequest::Containing { .. }
        | QueryRequest::ContainedIn { .. }
        | QueryRequest::Exact { .. } => QueryOutput::Tids(merge::merge_tids(tid_parts)),
    }
}

/// One shard's contribution to a batched query: its partial output,
/// stats, and (when tracing) per-shard EXPLAIN subtree.
type ShardPart = (QueryOutput, QueryStats, Option<QueryTrace>);

struct BatchState {
    parts: Mutex<Vec<Option<ShardPart>>>,
    remaining: AtomicUsize,
    started: Instant,
    cancel: CancelFlag,
    trace: bool,
    deadline: Option<Instant>,
    span: Option<SpanCtx>,
}

/// Runs on whichever worker finished a batch query's last shard-task:
/// merges the per-shard parts and records executor metrics. Reports
/// [`SgError::Cancelled`] (skipping the merge) if any shard task was
/// skipped by cancellation.
fn finish_batch_query(
    inner: &Inner,
    state: &BatchState,
    query: &QueryRequest,
) -> SgResult<QueryResponse> {
    let raw: Vec<Option<ShardPart>> = state
        .parts
        .lock()
        .expect("batch state poisoned")
        .drain(..)
        .collect();
    if raw.iter().any(|p| p.is_none()) {
        // At least one shard observed the cancel flag: the answer would be
        // incomplete, and nobody is waiting for it anyway.
        return Err(SgError::Cancelled);
    }
    let n_shards = raw.len();
    let mut per_shard = Vec::with_capacity(raw.len());
    let mut outputs = Vec::with_capacity(raw.len());
    let mut children = Vec::with_capacity(raw.len());
    for (out, stats, trace) in raw.into_iter().flatten() {
        per_shard.push(stats);
        outputs.push(out);
        children.push(trace);
    }
    let m0 = Instant::now();
    let merge_start_ns = span::now_ns();
    let output = merge_outputs(query, outputs);
    let merge_ns = m0.elapsed().as_nanos() as u64;
    if let Some(p) = state.span {
        span::emit(
            p.trace_id,
            p.span_id,
            "exec.merge",
            "exec",
            merge_start_ns,
            merge_ns,
            &[
                ("shards", n_shards as u64),
                ("results", output.len() as u64),
            ],
        );
    }
    let mut stats = ExecStats::from_shards(per_shard);
    stats.merge_ns = merge_ns;
    if let Some(obs) = inner.obs.get() {
        obs.queries.inc();
        obs.query_ns
            .record(state.started.elapsed().as_nanos() as u64);
        obs.merge_ns.record(merge_ns);
    }
    inner.record_cost(
        query.kind(),
        state.started.elapsed().as_nanos() as u64,
        &stats.total.resources,
    );
    let trace = if state.trace {
        let mut trace = QueryTrace::new(format!("{} shards={n_shards}", query.label()), "sg-exec");
        trace.nodes_accessed = stats.total.nodes_accessed;
        trace.data_compared = stats.total.data_compared;
        trace.dist_computations = stats.total.dist_computations;
        trace.logical_reads = stats.total.io.logical_reads;
        trace.physical_reads = stats.total.io.physical_reads;
        trace.duration_ns = state.started.elapsed().as_nanos() as u64;
        trace.results = output.len() as u64;
        for child in children.into_iter().flatten() {
            trace.push_child(child);
        }
        Some(trace)
    } else {
        None
    };
    Ok(QueryResponse {
        output,
        stats: stats.total,
        per_shard: stats.per_shard,
        merge_ns,
        trace,
    })
}

// The executor is shared across caller threads; fail the build if a
// non-thread-safe field ever sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedExecutor>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sig(nbits: u32, items: &[u32]) -> Signature {
        Signature::from_items(nbits, items)
    }

    fn sample(n: u64, nbits: u32) -> Vec<(Tid, Signature)> {
        (0..n)
            .map(|tid| {
                let base = (tid % 4) as u32 * 8;
                (
                    tid,
                    sig(
                        nbits,
                        &[base + (tid % 5) as u32, base + (tid % 3) as u32 + 1],
                    ),
                )
            })
            .collect()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sg-exec-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Reference answer: brute-force exact matches over `data`.
    fn oracle_exact(data: &[(Tid, Signature)], q: &Signature) -> Vec<Tid> {
        let mut tids: Vec<Tid> = data
            .iter()
            .filter(|(_, s)| s == q)
            .map(|(t, _)| *t)
            .collect();
        tids.sort_unstable();
        tids
    }

    #[test]
    fn health_reports_cover_every_shard_and_merge() {
        let nbits = 64;
        let data = sample(400, nbits);
        let exec = ShardedExecutor::build(nbits, &data, &ExecConfig::default()).unwrap();
        let registry = Registry::new();
        exec.register_obs(&registry, "exec");
        let reports = exec.health_reports();
        assert_eq!(reports.len(), exec.shards());
        assert_eq!(reports.iter().map(|r| r.len).sum::<u64>(), 400);
        for r in &reports {
            assert_eq!(r.nbits, nbits);
            for l in &r.levels {
                assert!((0.0..=1.0).contains(&l.avg_saturation));
                assert!((0.0..=1.0).contains(&l.est_false_drop));
            }
        }
        let doc = exec.health_json();
        let text = doc.to_string_compact();
        let parsed = sg_obs::json::parse(&text).unwrap();
        let shards = parsed.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(shards.len(), exec.shards());
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.get("shard").and_then(Json::as_u64), Some(i as u64));
            assert!(s.get("visits").and_then(Json::as_u64).is_some());
            assert!(s.get("report").and_then(|r| r.get("levels")).is_some());
        }
        let summary = parsed.get("summary").unwrap();
        assert_eq!(summary.get("len").and_then(Json::as_u64), Some(400));
        assert!(parsed
            .get("observed")
            .and_then(|o| o.get("traces"))
            .and_then(Json::as_u64)
            .is_some());
        // Traced queries feed the observed per-level aggregates.
        let (traces_before, _) = sg_obs::trace_level_aggregates();
        let q = sig(nbits, &[1, 9]);
        let r = exec
            .query(
                &QueryRequest::Knn {
                    q,
                    k: 5,
                    metric: Metric::hamming(),
                },
                &QueryOptions {
                    trace: true,
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        sg_obs::record_trace_levels(r.trace.as_ref().expect("trace requested"));
        let (traces_after, levels) = sg_obs::trace_level_aggregates();
        assert_eq!(traces_after, traces_before + 1);
        assert!(
            levels.iter().any(|l| l.nodes_visited > 0),
            "expected visits in {levels:?}"
        );
    }

    #[test]
    fn live_writes_show_up_in_queries() {
        let nbits = 64;
        let exec = ShardedExecutor::build(nbits, &[], &ExecConfig::default()).unwrap();
        let mut data = Vec::new();
        for (tid, s) in sample(40, nbits) {
            let ack = exec.insert(tid, &s).unwrap();
            assert!(ack.applied);
            data.push((tid, s));
        }
        assert_eq!(exec.len(), 40);
        for probe in [
            sig(nbits, &[0, 1]),
            sig(nbits, &[8, 9]),
            sig(nbits, &[1, 2]),
        ] {
            let resp = exec
                .query(
                    &QueryRequest::Exact { q: probe.clone() },
                    &QueryOptions::default(),
                )
                .unwrap();
            assert_eq!(resp.output.tids().unwrap(), oracle_exact(&data, &probe));
        }
        // Delete a few and re-check.
        for tid in [0u64, 7, 13] {
            assert!(exec.delete(tid).unwrap().applied);
            data.retain(|(t, _)| *t != tid);
        }
        assert!(!exec.delete(999).unwrap().applied);
        assert_eq!(exec.len(), 37);
        for probe in [sig(nbits, &[0, 1]), sig(nbits, &[8, 9])] {
            let resp = exec
                .query(
                    &QueryRequest::Exact { q: probe.clone() },
                    &QueryOptions::default(),
                )
                .unwrap();
            assert_eq!(resp.output.tids().unwrap(), oracle_exact(&data, &probe));
        }
    }

    #[test]
    fn duplicate_insert_is_rejected_everywhere() {
        let nbits = 64;
        let data = sample(20, nbits);
        // Bulk-loaded data is placed positionally, so some tids live off
        // their routed shard — the duplicate check must still find them.
        for partitioner in [Partitioner::RoundRobin, Partitioner::SignatureClustered] {
            let exec = ShardedExecutor::build(
                nbits,
                &data,
                &ExecConfig {
                    shards: 3,
                    partitioner,
                    ..ExecConfig::default()
                },
            )
            .unwrap();
            for tid in 0..20u64 {
                assert!(exec.insert(tid, &sig(nbits, &[1])).is_err(), "tid {tid}");
            }
            assert_eq!(exec.len(), 20);
        }
    }

    #[test]
    fn upsert_replaces_and_relocates() {
        let nbits = 64;
        let data = sample(20, nbits);
        let exec = ShardedExecutor::build(
            nbits,
            &data,
            &ExecConfig {
                shards: 3,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let fresh = sig(nbits, &[60, 61]);
        // Replace every bulk-loaded signature (many live off their routed
        // shard, exercising the relocation path), then verify exactly the
        // 20 upserted tids answer the probe.
        for tid in 0..20u64 {
            assert!(exec.upsert(tid, &fresh).unwrap().applied);
        }
        assert_eq!(exec.len(), 20);
        let resp = exec
            .query(
                &QueryRequest::Exact { q: fresh.clone() },
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(resp.output.tids().unwrap(), (0..20u64).collect::<Vec<_>>());
        // Upsert of a brand-new tid inserts.
        assert!(exec.upsert(100, &fresh).unwrap().applied);
        assert_eq!(exec.len(), 21);
    }

    #[test]
    fn write_batch_group_commits_in_input_order() {
        let nbits = 64;
        let exec = ShardedExecutor::build(nbits, &[], &ExecConfig::default()).unwrap();
        let s = |i: u64| sig(nbits, &[(i % 60) as u32, ((i * 7) % 60) as u32]);
        let mut ops: Vec<WriteOp> = (0..50u64)
            .map(|tid| WriteOp::Insert { tid, sig: s(tid) })
            .collect();
        ops.push(WriteOp::Delete { tid: 3 });
        ops.push(WriteOp::Upsert {
            tid: 4,
            sig: s(400),
        });
        ops.push(WriteOp::Delete { tid: 777 }); // missing → applied=false
        let results = exec.write_batch(ops);
        assert_eq!(results.len(), 53);
        for r in &results[..50] {
            assert!(r.as_ref().unwrap().applied);
        }
        assert!(results[50].as_ref().unwrap().applied);
        assert!(results[51].as_ref().unwrap().applied);
        assert!(!results[52].as_ref().unwrap().applied);
        assert_eq!(exec.len(), 49);
        // A duplicate insert inside a batch fails its slot only.
        let again = exec.write_batch(vec![
            WriteOp::Insert { tid: 5, sig: s(5) },
            WriteOp::Insert {
                tid: 500,
                sig: s(500),
            },
        ]);
        assert!(again[0].is_err());
        assert!(again[1].as_ref().unwrap().applied);
    }

    #[test]
    fn durable_executor_recovers_acknowledged_writes() {
        let nbits = 64;
        let dir = tmpdir("recover");
        let durability = DurabilityConfig::os_only(&dir);
        let config = ExecConfig {
            shards: 3,
            ..ExecConfig::default()
        };
        let mut expect: Vec<(Tid, Signature)> = Vec::new();
        {
            let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
            assert_eq!(exec.recovery().unwrap().replayed, 0);
            for (tid, s) in sample(30, nbits) {
                let ack = exec.insert(tid, &s).unwrap();
                assert!(ack.lsn.is_some(), "durable writes carry an LSN");
                expect.push((tid, s));
            }
            exec.delete(5).unwrap();
            expect.retain(|(t, _)| *t != 5);
            // No flush/checkpoint: recovery must come from the WAL alone.
        }
        {
            let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
            let rec = exec.recovery().unwrap();
            assert_eq!(rec.wal_records, 31, "30 inserts + 1 delete replayed");
            assert_eq!(exec.len(), 29);
            let mut dumped: Vec<(Tid, Signature)> = (0..exec.shards())
                .flat_map(|i| exec.with_shard(i, |t| t.dump()))
                .collect();
            dumped.sort_by_key(|(t, _)| *t);
            let mut want = expect.clone();
            want.sort_by_key(|(t, _)| *t);
            assert_eq!(dumped, want, "recovered state == acknowledged writes");
            // Checkpoint, write more, crash again: snapshot + tail replay.
            exec.checkpoint().unwrap();
            exec.insert(100, &sig(nbits, &[9, 10])).unwrap();
            expect.push((100, sig(nbits, &[9, 10])));
        }
        {
            let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
            let rec = exec.recovery().unwrap();
            assert_eq!(
                rec.wal_records, 1,
                "only the post-checkpoint insert replays"
            );
            assert_eq!(rec.replayed, 30, "29 snapshot entries + 1 WAL record");
            assert_eq!(exec.len(), 30);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_executor_recovers_from_store_plus_wal_tail() {
        let nbits = 64;
        let dir = tmpdir("mmap-recover");
        let durability = DurabilityConfig::os_only(&dir).storage(StorageMode::Mmap);
        let config = ExecConfig {
            shards: 3,
            ..ExecConfig::default()
        };
        let mut expect: Vec<(Tid, Signature)> = Vec::new();
        {
            let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
            assert_eq!(exec.storage_mode(), StorageMode::Mmap);
            assert_eq!(exec.recovery().unwrap().replayed, 0);
            for (tid, s) in sample(30, nbits) {
                let ack = exec.insert(tid, &s).unwrap();
                assert!(ack.lsn.is_some(), "durable writes carry an LSN");
                expect.push((tid, s));
            }
            exec.delete(5).unwrap();
            exec.upsert(6, &sig(nbits, &[50, 51])).unwrap();
            expect.retain(|(t, _)| *t != 5 && *t != 6);
            expect.push((6, sig(nbits, &[50, 51])));
            // No checkpoint: recovery must come from the WAL tail alone.
        }
        {
            let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
            let rec = exec.recovery().unwrap();
            assert_eq!(rec.wal_records, 32, "30 inserts + delete + upsert");
            assert_eq!(rec.snapshot_entries, 0, "nothing was checkpointed yet");
            assert_eq!(exec.len(), 29);
            let mut dumped: Vec<(Tid, Signature)> = (0..exec.shards())
                .flat_map(|i| exec.with_shard(i, |t| t.dump()))
                .collect();
            dumped.sort_by_key(|(t, _)| *t);
            let mut want = expect.clone();
            want.sort_by_key(|(t, _)| *t);
            assert_eq!(dumped, want, "recovered state == acknowledged writes");
            // Checkpoint (one meta-page flip per shard), write one more,
            // crash again: only the tail past the flip may replay.
            exec.checkpoint().unwrap();
            exec.insert(100, &sig(nbits, &[9, 10])).unwrap();
            expect.push((100, sig(nbits, &[9, 10])));
        }
        {
            let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
            let rec = exec.recovery().unwrap();
            assert_eq!(
                rec.wal_records, 1,
                "only the post-checkpoint insert replays"
            );
            assert_eq!(
                rec.snapshot_entries, 29,
                "the rest is restored from the committed page store"
            );
            assert_eq!(exec.len(), 30);
            let mut dumped: Vec<(Tid, Signature)> = (0..exec.shards())
                .flat_map(|i| exec.with_shard(i, |t| t.dump()))
                .collect();
            dumped.sort_by_key(|(t, _)| *t);
            expect.sort_by_key(|(t, _)| *t);
            assert_eq!(dumped, expect);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression test: `ingest_replayed` must count only WAL *tail*
    /// records actually re-applied on open, not entries restored from a
    /// checkpoint (the old accounting folded both in, so a freshly
    /// checkpointed reopen looked like a full replay).
    #[test]
    fn ingest_replayed_counts_only_the_wal_tail() {
        let nbits = 64;
        let dir = tmpdir("replay-count");
        let durability = DurabilityConfig::os_only(&dir);
        let config = ExecConfig {
            shards: 2,
            ..ExecConfig::default()
        };
        {
            let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
            for (tid, s) in sample(20, nbits) {
                exec.insert(tid, &s).unwrap();
            }
            exec.checkpoint().unwrap();
            exec.insert(100, &sig(nbits, &[9, 10])).unwrap();
            exec.insert(101, &sig(nbits, &[9, 11])).unwrap();
        }
        let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
        let registry = Registry::new();
        let obs = exec.register_ingest_obs(&registry, "ingest");
        assert_eq!(
            obs.replayed.get(),
            2,
            "only the two post-checkpoint inserts count as replayed"
        );
        assert_eq!(obs.snapshot_entries.get(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_live_writes_are_visible_through_snapshot_views() {
        let nbits = 64;
        let dir = tmpdir("mmap-live");
        let durability = DurabilityConfig::os_only(&dir).storage(StorageMode::Mmap);
        let config = ExecConfig {
            shards: 2,
            ..ExecConfig::default()
        };
        let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
        let mut data = Vec::new();
        for (tid, s) in sample(40, nbits) {
            assert!(exec.insert(tid, &s).unwrap().applied);
            data.push((tid, s));
        }
        // Queries run on published snapshot views, so every acknowledged
        // write must already be visible.
        for probe in [
            sig(nbits, &[0, 1]),
            sig(nbits, &[8, 9]),
            sig(nbits, &[16, 17]),
        ] {
            let resp = exec
                .query(
                    &QueryRequest::Exact { q: probe.clone() },
                    &QueryOptions::default(),
                )
                .unwrap();
            assert_eq!(resp.output.tids().unwrap(), oracle_exact(&data, &probe));
        }
        // Deletes and upserts republish too.
        let gone = data[7].clone();
        assert!(exec.delete(gone.0).unwrap().applied);
        data.retain(|(t, _)| *t != gone.0);
        let resp = exec
            .query(
                &QueryRequest::Exact { q: gone.1.clone() },
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(resp.output.tids().unwrap(), oracle_exact(&data, &gone.1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_checkpointer_truncates_the_wal() {
        let nbits = 64;
        let dir = tmpdir("mmap-ckpt");
        let durability = DurabilityConfig::os_only(&dir).storage(StorageMode::Mmap);
        let config = ExecConfig {
            shards: 2,
            ..ExecConfig::default()
        };
        {
            let exec =
                Arc::new(ShardedExecutor::open_durable(nbits, &config, &durability).unwrap());
            for (tid, s) in sample(25, nbits) {
                exec.insert(tid, &s).unwrap();
            }
            let ckpt = exec.start_checkpointer(std::time::Duration::from_millis(10));
            // Wait for at least one commit to land on every shard.
            let deadline = Instant::now() + std::time::Duration::from_secs(10);
            loop {
                let stats = exec.store_stats();
                if stats.iter().all(|s| s.tx_id > 0) {
                    break;
                }
                assert!(Instant::now() < deadline, "checkpointer never committed");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            ckpt.stop();
        }
        let exec = ShardedExecutor::open_durable(nbits, &config, &durability).unwrap();
        let rec = exec.recovery().unwrap();
        assert_eq!(rec.wal_records, 0, "the WAL was folded into the store");
        assert_eq!(rec.snapshot_entries, 25);
        assert_eq!(exec.len(), 25);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_reopen_refuses_nbits_mismatch() {
        let dir = tmpdir("meta");
        let durability = DurabilityConfig::os_only(&dir);
        let config = ExecConfig::default();
        {
            ShardedExecutor::open_durable(64, &config, &durability).unwrap();
        }
        let err = match ShardedExecutor::open_durable(128, &config, &durability) {
            Err(e) => e,
            Ok(_) => panic!("nbits mismatch must be refused"),
        };
        assert!(matches!(err, SgError::BadMeta(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_reopen_keeps_stored_layout() {
        let nbits = 64;
        let dir = tmpdir("layout");
        let durability = DurabilityConfig::os_only(&dir);
        {
            let exec = ShardedExecutor::open_durable(
                nbits,
                &ExecConfig {
                    shards: 5,
                    partitioner: Partitioner::SignatureClustered,
                    ..ExecConfig::default()
                },
                &durability,
            )
            .unwrap();
            exec.insert(1, &sig(nbits, &[1, 2])).unwrap();
        }
        // Reopening with a different config must honor the on-disk layout.
        let exec = ShardedExecutor::open_durable(
            nbits,
            &ExecConfig {
                shards: 2,
                partitioner: Partitioner::RoundRobin,
                ..ExecConfig::default()
            },
            &durability,
        )
        .unwrap();
        assert_eq!(exec.shards(), 5);
        assert_eq!(exec.partitioner(), Partitioner::SignatureClustered);
        assert_eq!(exec.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_index_object_mutates_and_queries() {
        let nbits = 64;
        let exec = ShardedExecutor::build(nbits, &[], &ExecConfig::default()).unwrap();
        let mut idx: Box<dyn SetIndex> = Box::new(exec);
        let s = sig(nbits, &[1, 2, 3]);
        idx.insert(7, &s).unwrap();
        assert_eq!(idx.len(), 1);
        let resp = idx
            .query(
                &QueryRequest::Exact { q: s.clone() },
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(resp.output.tids().unwrap(), &[7]);
        // delete with the wrong signature is a no-op…
        assert!(!idx.delete(7, &sig(nbits, &[4])).unwrap());
        // …with the right one it lands.
        assert!(idx.delete(7, &s).unwrap());
        assert!(idx.is_empty());
    }

    #[test]
    fn concurrent_writers_and_readers_stay_sound() {
        use std::sync::atomic::AtomicU64;
        let nbits = 64;
        let exec = Arc::new(
            ShardedExecutor::build(
                nbits,
                &[],
                &ExecConfig {
                    shards: 4,
                    threads: 8,
                    ..ExecConfig::default()
                },
            )
            .unwrap(),
        );
        let probe = sig(nbits, &[1, 2]);
        let acked = Arc::new(AtomicU64::new(0)); // tids 0..acked are acknowledged
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let exec = Arc::clone(&exec);
                let acked = Arc::clone(&acked);
                let probe = probe.clone();
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let tid = w * 1000 + i;
                        exec.insert(tid, &probe).unwrap();
                        acked.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let exec = Arc::clone(&exec);
                let acked = Arc::clone(&acked);
                let probe = probe.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let before = acked.load(Ordering::SeqCst);
                        let resp = exec
                            .query(
                                &QueryRequest::Exact { q: probe.clone() },
                                &QueryOptions::default(),
                            )
                            .unwrap();
                        let n = resp.output.tids().unwrap().len() as u64;
                        let after = acked.load(Ordering::SeqCst);
                        // Soundness + monotonic visibility: the answer holds
                        // at least every write acked before the query began,
                        // and nothing that was never submitted.
                        assert!(n >= before, "saw {n} < {before} acked");
                        assert!(n <= after + 4, "saw {n} > {after} acked (+4 in flight)");
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        for t in readers {
            t.join().unwrap();
        }
        assert_eq!(exec.len(), 200);
    }
}
