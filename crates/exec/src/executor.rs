//! The sharded executor: partition, fan out, merge.

use crate::merge::{self, ExecStats};
use crate::obs::ExecObs;
use crate::partition::Partitioner;
use crate::pool::ThreadPool;
use sg_obs::{QueryTrace, Registry};
use sg_pager::MemStore;
use sg_sig::{Metric, Signature};
use sg_tree::{Neighbor, QueryStats, SgTree, SharedBound, Tid, TreeConfig, TreeError};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Instant;

/// A shared cancellation flag for one in-flight batch query.
///
/// A serving layer hands one of these to [`ShardedExecutor::execute_batch_cancellable`]
/// per query and flips it when the caller stops waiting (deadline passed,
/// connection gone). Shard tasks that have not started yet observe the flag
/// and return immediately, and the final merge for the query is skipped —
/// abandoned work costs close to nothing.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation. Idempotent; already-running shard tasks
    /// finish, but pending ones and the merge are skipped.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Construction parameters for a [`ShardedExecutor`].
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of SG-tree shards the dataset is split across.
    pub shards: usize,
    /// Worker threads in the fan-out pool; `0` means one per shard.
    pub threads: usize,
    /// How transactions are assigned to shards.
    pub partitioner: Partitioner,
    /// Page size of each shard's backing store.
    pub page_size: usize,
    /// Buffer-pool frames per shard.
    pub pool_frames: usize,
    /// Per-shard tree configuration; defaults to `TreeConfig::new(nbits)`.
    pub tree: Option<TreeConfig>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            shards: 4,
            threads: 0,
            partitioner: Partitioner::RoundRobin,
            page_size: 4096,
            pool_frames: 1024,
            tree: None,
        }
    }
}

/// One shard's share of a fan-out query: runs against that shard's tree.
type ShardTask<R> = dyn Fn(&SgTree) -> (R, QueryStats) + Send + Sync;

struct Inner {
    shards: Vec<SgTree>,
    obs: OnceLock<Arc<ExecObs>>,
}

impl Inner {
    fn record_shard(&self, idx: usize, stats: &QueryStats) {
        if let Some(obs) = self.obs.get() {
            obs.shard_visits[idx].add(stats.nodes_accessed);
        }
    }
}

/// A dataset partitioned across `K` independent SG-tree shards, queried by
/// fanning each request out over a fixed worker pool and merging the
/// per-shard answers into the canonical global answer.
///
/// All query methods take `&self`: the executor is `Sync` and may be
/// shared (e.g. behind an [`Arc`]) by any number of caller threads.
pub struct ShardedExecutor {
    inner: Arc<Inner>,
    pool: ThreadPool,
    nbits: u32,
    len: u64,
    partitioner: Partitioner,
}

impl ShardedExecutor {
    /// Partitions `data` and builds one SG-tree per shard.
    pub fn build(
        nbits: u32,
        data: &[(Tid, Signature)],
        config: &ExecConfig,
    ) -> Result<ShardedExecutor, TreeError> {
        let parts = config.partitioner.partition(data, config.shards);
        let mut shards = Vec::with_capacity(parts.len());
        for part in &parts {
            let cfg = config
                .tree
                .clone()
                .unwrap_or_else(|| TreeConfig::new(nbits))
                .pool_frames(config.pool_frames);
            let mut tree = SgTree::create(Arc::new(MemStore::new(config.page_size)), cfg)?;
            for (tid, sig) in part {
                tree.insert(*tid, sig);
            }
            shards.push(tree);
        }
        let threads = if config.threads == 0 {
            config.shards
        } else {
            config.threads
        };
        Ok(ShardedExecutor {
            inner: Arc::new(Inner {
                shards,
                obs: OnceLock::new(),
            }),
            pool: ThreadPool::new(threads),
            nbits,
            len: data.len() as u64,
            partitioner: config.partitioner,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Worker threads serving the fan-out pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Total transactions indexed across all shards.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the executor indexes no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Signature width shared by every shard.
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// The partitioner the dataset was laid out with.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Read access to an individual shard (used by tests and tools).
    pub fn shard(&self, idx: usize) -> &SgTree {
        &self.inner.shards[idx]
    }

    /// Registers executor instruments (and the pool's queue-depth gauge)
    /// under `<prefix>.*`. Effective once; later calls return the first
    /// instrument set.
    pub fn register_obs(&self, registry: &Registry, prefix: &str) -> Arc<ExecObs> {
        let obs = ExecObs::register(registry, prefix, self.shards());
        let obs = self.inner.obs.get_or_init(|| obs);
        self.pool.set_depth_gauge(Arc::clone(&obs.queue_depth));
        Arc::clone(obs)
    }

    /// Fans `run` out over every shard and collects `(result, stats)` per
    /// shard, in shard order.
    fn fan_out<R: Send + 'static>(&self, run: Arc<ShardTask<R>>) -> (Vec<R>, Vec<QueryStats>) {
        let n = self.shards();
        let (tx, rx) = mpsc::channel();
        for idx in 0..n {
            let inner = Arc::clone(&self.inner);
            let run = Arc::clone(&run);
            let tx = tx.clone();
            self.pool.submit(move || {
                let (r, stats) = run(&inner.shards[idx]);
                inner.record_shard(idx, &stats);
                let _ = tx.send((idx, r, stats));
            });
        }
        drop(tx);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut per_shard = vec![QueryStats::default(); n];
        for (idx, r, stats) in rx {
            results[idx] = Some(r);
            per_shard[idx] = stats;
        }
        let results = results
            .into_iter()
            .map(|r| r.expect("every shard task reports"))
            .collect();
        (results, per_shard)
    }

    fn finish<R>(
        &self,
        started: Instant,
        per_shard: Vec<QueryStats>,
        merge: impl FnOnce() -> R,
    ) -> (R, ExecStats) {
        let m0 = Instant::now();
        let merged = merge();
        let merge_ns = m0.elapsed().as_nanos() as u64;
        let mut stats = ExecStats::from_shards(per_shard);
        stats.merge_ns = merge_ns;
        if let Some(obs) = self.inner.obs.get() {
            obs.queries.inc();
            obs.query_ns.record(started.elapsed().as_nanos() as u64);
            obs.merge_ns.record(merge_ns);
        }
        (merged, stats)
    }

    /// Global `k`-NN: each shard runs a depth-first k-NN cooperating
    /// through a [`SharedBound`], so a shard that already found `k` close
    /// neighbors shrinks every other shard's search. The merged answer is
    /// exactly the single-tree (canonical) k-NN result.
    pub fn knn(&self, q: &Signature, k: usize, metric: &Metric) -> (Vec<Neighbor>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let m = *metric;
        let bound = Arc::new(SharedBound::new());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| {
            tree.knn_shared(&q, k, &m, &bound)
        }));
        self.finish(started, per_shard, || merge::merge_knn(parts, k))
    }

    /// Global similarity range query (distance ≤ `eps`).
    pub fn range(&self, q: &Signature, eps: f64, metric: &Metric) -> (Vec<Neighbor>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let m = *metric;
        let (parts, per_shard) =
            self.fan_out(Arc::new(move |tree: &SgTree| tree.range(&q, eps, &m)));
        self.finish(started, per_shard, || merge::merge_range(parts))
    }

    /// Transactions whose signature is a superset of `q`.
    pub fn containing(&self, q: &Signature) -> (Vec<Tid>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| tree.containing(&q)));
        self.finish(started, per_shard, || merge::merge_tids(parts))
    }

    /// Transactions whose signature is a subset of `q`.
    pub fn contained_in(&self, q: &Signature) -> (Vec<Tid>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| tree.contained_in(&q)));
        self.finish(started, per_shard, || merge::merge_tids(parts))
    }

    /// Transactions whose signature equals `q` exactly.
    pub fn exact(&self, q: &Signature) -> (Vec<Tid>, ExecStats) {
        let started = Instant::now();
        let q = Arc::new(q.clone());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| tree.exact(&q)));
        self.finish(started, per_shard, || merge::merge_tids(parts))
    }

    /// [`ShardedExecutor::knn`] with an EXPLAIN trace whose children are
    /// the per-shard traces, one per shard in shard order.
    pub fn knn_explain(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
    ) -> (Vec<Neighbor>, ExecStats, QueryTrace) {
        let started = Instant::now();
        let qa = Arc::new(q.clone());
        let m = *metric;
        let bound = Arc::new(SharedBound::new());
        let (parts, per_shard) = self.fan_out(Arc::new(move |tree: &SgTree| {
            let (hits, stats, trace) = tree.knn_shared_explain(&qa, k, &m, &bound);
            ((hits, trace), stats)
        }));
        let mut children = Vec::with_capacity(parts.len());
        let mut hit_parts = Vec::with_capacity(parts.len());
        for (hits, trace) in parts {
            hit_parts.push(hits);
            children.push(trace);
        }
        let (merged, stats) = self.finish(started, per_shard, || merge::merge_knn(hit_parts, k));
        let mut trace = QueryTrace::new(
            format!("knn k={k} metric={:?} shards={}", m.kind(), self.shards()),
            "sg-exec",
        );
        trace.nodes_accessed = stats.total.nodes_accessed;
        trace.data_compared = stats.total.data_compared;
        trace.dist_computations = stats.total.dist_computations;
        trace.logical_reads = stats.total.io.logical_reads;
        trace.physical_reads = stats.total.io.physical_reads;
        trace.duration_ns = started.elapsed().as_nanos() as u64;
        trace.results = merged.len() as u64;
        for child in children {
            trace.push_child(child);
        }
        (merged, stats, trace)
    }

    /// Runs a batch of heterogeneous queries through the pool, pipelined:
    /// all `queries.len() × shards` shard-tasks are enqueued up front, and
    /// whichever task finishes a query last performs that query's merge.
    /// Results come back in input order.
    pub fn execute_batch(&self, queries: Vec<BatchQuery>) -> Vec<BatchResult> {
        let items = queries
            .into_iter()
            .map(|q| (q, CancelFlag::new()))
            .collect();
        self.execute_batch_cancellable(items)
            .into_iter()
            .map(|r| r.expect("uncancelled batch query reports"))
            .collect()
    }

    /// [`ShardedExecutor::execute_batch`] with a per-query [`CancelFlag`].
    ///
    /// A query whose flag is cancelled before all of its shard tasks ran
    /// skips the remaining shard work and its merge, and reports `None` in
    /// the output slot. Queries whose flag is never cancelled behave
    /// exactly like `execute_batch` and report `Some`.
    pub fn execute_batch_cancellable(
        &self,
        queries: Vec<(BatchQuery, CancelFlag)>,
    ) -> Vec<Option<BatchResult>> {
        let n_shards = self.shards();
        let n_queries = queries.len();
        if n_queries == 0 {
            return Vec::new();
        }
        if let Some(obs) = self.inner.obs.get() {
            obs.batches.inc();
        }
        let (tx, rx) = mpsc::channel();
        for (qi, (query, cancel)) in queries.into_iter().enumerate() {
            let state = Arc::new(BatchState {
                parts: Mutex::new((0..n_shards).map(|_| None).collect()),
                remaining: AtomicUsize::new(n_shards),
                started: Instant::now(),
                cancel,
            });
            let query = Arc::new(query);
            let bound = Arc::new(SharedBound::new());
            for si in 0..n_shards {
                let inner = Arc::clone(&self.inner);
                let state = Arc::clone(&state);
                let query = Arc::clone(&query);
                let bound = Arc::clone(&bound);
                let tx = tx.clone();
                self.pool.submit(move || {
                    let part = if state.cancel.is_cancelled() {
                        None
                    } else {
                        let tree = &inner.shards[si];
                        let (out, stats) = run_one(tree, &query, &bound);
                        inner.record_shard(si, &stats);
                        Some((out, stats))
                    };
                    {
                        let mut parts = state.parts.lock().expect("batch state poisoned");
                        parts[si] = part;
                    }
                    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let result = finish_batch_query(&inner, &state, &query);
                        let _ = tx.send((qi, result));
                    }
                });
            }
        }
        drop(tx);
        let mut out: Vec<Option<Option<BatchResult>>> = (0..n_queries).map(|_| None).collect();
        for (qi, result) in rx {
            out[qi] = Some(result);
        }
        out.into_iter()
            .map(|r| r.expect("every batch query reports"))
            .collect()
    }
}

/// One query of a heterogeneous batch.
#[derive(Debug, Clone)]
pub enum BatchQuery {
    /// `k` nearest neighbors of `q` under `metric`.
    Knn {
        /// Query signature.
        q: Signature,
        /// Result size.
        k: usize,
        /// Distance function.
        metric: Metric,
    },
    /// Everything within distance `eps` of `q` under `metric`.
    Range {
        /// Query signature.
        q: Signature,
        /// Inclusive distance threshold.
        eps: f64,
        /// Distance function.
        metric: Metric,
    },
    /// Supersets of `q`.
    Containing {
        /// Query signature.
        q: Signature,
    },
    /// Subsets of `q`.
    ContainedIn {
        /// Query signature.
        q: Signature,
    },
    /// Exact matches of `q`.
    Exact {
        /// Query signature.
        q: Signature,
    },
}

/// A batch query's merged answer.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutput {
    /// Distance-ranked answer (k-NN, range).
    Neighbors(Vec<Neighbor>),
    /// Id-set answer (containment, exact match).
    Tids(Vec<Tid>),
}

/// Merged answer plus the fan-out cost breakdown for one batch query.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The merged, canonically ordered answer.
    pub output: BatchOutput,
    /// Per-shard and aggregate costs.
    pub stats: ExecStats,
}

struct BatchState {
    parts: Mutex<Vec<Option<(BatchOutput, QueryStats)>>>,
    remaining: AtomicUsize,
    started: Instant,
    cancel: CancelFlag,
}

fn run_one(tree: &SgTree, query: &BatchQuery, bound: &SharedBound) -> (BatchOutput, QueryStats) {
    match query {
        BatchQuery::Knn { q, k, metric } => {
            let (r, s) = tree.knn_shared(q, *k, metric, bound);
            (BatchOutput::Neighbors(r), s)
        }
        BatchQuery::Range { q, eps, metric } => {
            let (r, s) = tree.range(q, *eps, metric);
            (BatchOutput::Neighbors(r), s)
        }
        BatchQuery::Containing { q } => {
            let (r, s) = tree.containing(q);
            (BatchOutput::Tids(r), s)
        }
        BatchQuery::ContainedIn { q } => {
            let (r, s) = tree.contained_in(q);
            (BatchOutput::Tids(r), s)
        }
        BatchQuery::Exact { q } => {
            let (r, s) = tree.exact(q);
            (BatchOutput::Tids(r), s)
        }
    }
}

/// Runs on whichever worker finished a batch query's last shard-task:
/// merges the per-shard parts and records executor metrics. Returns `None`
/// (skipping the merge) if any shard task was skipped by cancellation.
fn finish_batch_query(
    inner: &Inner,
    state: &BatchState,
    query: &BatchQuery,
) -> Option<BatchResult> {
    let raw: Vec<Option<(BatchOutput, QueryStats)>> = state
        .parts
        .lock()
        .expect("batch state poisoned")
        .drain(..)
        .collect();
    if raw.iter().any(|p| p.is_none()) {
        // At least one shard observed the cancel flag: the answer would be
        // incomplete, and nobody is waiting for it anyway.
        return None;
    }
    let parts: Vec<(BatchOutput, QueryStats)> = raw.into_iter().map(|p| p.unwrap()).collect();
    let mut per_shard = Vec::with_capacity(parts.len());
    let mut neighbor_parts = Vec::new();
    let mut tid_parts = Vec::new();
    for (out, stats) in parts {
        per_shard.push(stats);
        match out {
            BatchOutput::Neighbors(v) => neighbor_parts.push(v),
            BatchOutput::Tids(v) => tid_parts.push(v),
        }
    }
    let m0 = Instant::now();
    let output = match query {
        BatchQuery::Knn { k, .. } => BatchOutput::Neighbors(merge::merge_knn(neighbor_parts, *k)),
        BatchQuery::Range { .. } => BatchOutput::Neighbors(merge::merge_range(neighbor_parts)),
        BatchQuery::Containing { .. }
        | BatchQuery::ContainedIn { .. }
        | BatchQuery::Exact { .. } => BatchOutput::Tids(merge::merge_tids(tid_parts)),
    };
    let merge_ns = m0.elapsed().as_nanos() as u64;
    let mut stats = ExecStats::from_shards(per_shard);
    stats.merge_ns = merge_ns;
    if let Some(obs) = inner.obs.get() {
        obs.queries.inc();
        obs.query_ns
            .record(state.started.elapsed().as_nanos() as u64);
        obs.merge_ns.record(merge_ns);
    }
    Some(BatchResult { output, stats })
}

// The executor is shared across caller threads; fail the build if a
// non-thread-safe field ever sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedExecutor>();
};
