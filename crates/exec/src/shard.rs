//! One shard of the executor: a reader-writer protected SG-tree plus an
//! optional durability sidecar (write-ahead log + checkpoint snapshot).
//!
//! ## Concurrency
//!
//! Each shard is an independent [`parking_lot::RwLock`] over
//! `{ tree, catalog }`. Queries take the read lock for the duration of one
//! shard task, so every query sees an atomic snapshot of that shard while
//! writers mutate other shards (or wait their turn on this one). Writers
//! take the write lock, log to the WAL, apply, and release — a write is
//! observable only after its WAL record is on disk, so an acknowledged
//! write is always recoverable.
//!
//! Lock order (deadlock freedom): the state lock is always acquired
//! **before** the WAL mutex, and no thread ever holds two shards' state
//! locks at once — cross-shard operations (legacy-placement upserts)
//! decompose into single-shard steps.
//!
//! ## Durability
//!
//! A durable shard always owns `shard-NNN.wal` (CRC-framed redo log, see
//! [`sg_pager::Wal`]); what sits *under* the log depends on
//! [`StorageMode`]:
//!
//! * **`Heap`** — `shard-NNN.ckpt` holds an atomic snapshot of the whole
//!   catalog at some LSN. [`Shard::checkpoint`] writes the snapshot with
//!   the WAL's *next LSN* as its watermark, then truncates the log;
//!   [`Shard::open_durable`] loads the snapshot (if any), replays every
//!   WAL record at or past the watermark, and discards a torn tail. A
//!   crash between snapshot rename and log truncation merely replays
//!   records the snapshot already covers — replay skips anything below
//!   the watermark, so recovery is idempotent.
//! * **`Mmap`** — `shard-NNN.pages` is an [`sg_store::CowStore`]: the
//!   tree's node pages live in a memory-mapped copy-on-write page file,
//!   so a checkpoint is a single dual-meta-page flip ([`CowStore::commit`]
//!   with the WAL's next LSN as the watermark) instead of a full catalog
//!   rewrite, and reopen replays only the WAL tail past that watermark —
//!   restart cost is O(tail), not O(dataset). After every applied batch
//!   the shard *publishes* the store and re-opens a read-only tree view
//!   over a pinned [`sg_store::Snapshot`]; queries run on that view
//!   without ever touching this shard's write lock.

use crate::partition::Partitioner;
use parking_lot::{Mutex, RwLock};
use sg_obs::IngestObs;
use sg_pager::{
    read_snapshot, write_snapshot, FsyncPolicy, MemStore, PageStore, SgError, SgResult, Wal, WalOp,
};
use sg_sig::{codec, Signature};
use sg_store::CowStore;
use sg_tree::{SgTree, Tid, TreeConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// What a durable shard keeps under its WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Heap trees rebuilt on open from a catalog snapshot + full WAL
    /// replay (the original durability scheme).
    #[default]
    Heap,
    /// Memory-mapped copy-on-write page store ([`sg_store::CowStore`]):
    /// snapshot-isolated reads and O(WAL-tail) restart.
    Mmap,
}

impl StorageMode {
    /// Parses the `--storage=` flag value.
    pub fn parse(s: &str) -> Option<StorageMode> {
        match s {
            "heap" => Some(StorageMode::Heap),
            "mmap" => Some(StorageMode::Mmap),
            _ => None,
        }
    }

    /// The flag spelling (`heap` / `mmap`).
    pub fn as_str(self) -> &'static str {
        match self {
            StorageMode::Heap => "heap",
            StorageMode::Mmap => "mmap",
        }
    }
}

/// Where (and how hard) a durable executor persists its writes.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the meta file plus one WAL + snapshot per shard.
    pub dir: PathBuf,
    /// `Always` fsyncs every group commit (survives power loss); `OsOnly`
    /// leaves flushing to the OS (survives process kill, not power loss).
    pub fsync: FsyncPolicy,
    /// What the WAL checkpoints into (heap snapshots or the mmap'd
    /// copy-on-write page store).
    pub storage: StorageMode,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with per-commit fsync.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            storage: StorageMode::Heap,
        }
    }

    /// Same, but leaving flushing to the OS page cache.
    pub fn os_only(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::OsOnly,
            storage: StorageMode::Heap,
        }
    }

    /// Durability rooted at `dir` over the mmap'd page store, with
    /// per-commit fsync.
    pub fn mmap(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig::new(dir).storage(StorageMode::Mmap)
    }

    /// Selects the storage mode (builder style).
    pub fn storage(mut self, storage: StorageMode) -> DurabilityConfig {
        self.storage = storage;
        self
    }
}

/// One mutation bound for a shard, routed by tid.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Add a new transaction; rejects a tid that is already indexed.
    Insert {
        /// Transaction id.
        tid: Tid,
        /// Its signature.
        sig: Signature,
    },
    /// Remove a transaction by id; a missing tid is not an error
    /// (`applied` comes back `false`).
    Delete {
        /// Transaction id.
        tid: Tid,
    },
    /// Insert-or-replace a transaction.
    Upsert {
        /// Transaction id.
        tid: Tid,
        /// Its new signature.
        sig: Signature,
    },
}

impl WriteOp {
    /// The tid the op targets.
    pub fn tid(&self) -> Tid {
        match self {
            WriteOp::Insert { tid, .. } | WriteOp::Delete { tid } | WriteOp::Upsert { tid, .. } => {
                *tid
            }
        }
    }

    /// The signature carried by the op, if any.
    pub fn signature(&self) -> Option<&Signature> {
        match self {
            WriteOp::Insert { sig, .. } | WriteOp::Upsert { sig, .. } => Some(sig),
            WriteOp::Delete { .. } => None,
        }
    }
}

/// Acknowledgement of one [`WriteOp`]. Once returned, the write is as
/// durable as the shard's [`FsyncPolicy`] promises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteAck {
    /// The tid the op targeted.
    pub tid: Tid,
    /// Whether the index changed (`false` only for a delete of a missing
    /// tid).
    pub applied: bool,
    /// LSN of the WAL record that covers the op; `None` for a memory-only
    /// executor or an op that logged nothing (no-op delete).
    pub lsn: Option<u64>,
}

/// What [`Shard::open_durable`] recovered, aggregated per executor into
/// [`crate::ShardedExecutor::recovery`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Entries restored on open: snapshot entries + replayed WAL records.
    pub replayed: u64,
    /// Entries restored from checkpoints — heap catalog snapshots or (for
    /// mmap shards) the committed page store — *without* replaying a log
    /// record.
    pub snapshot_entries: u64,
    /// Of which, records replayed from WALs (past the snapshot watermark).
    pub wal_records: u64,
    /// Torn/corrupt WAL tail bytes discarded across all shards.
    pub truncated_bytes: u64,
    /// Per-shard replay wall time, ns.
    pub replay_ns: Vec<u64>,
}

/// Per-shard recovery outcome, folded into a [`RecoveryReport`].
pub(crate) struct ShardRecovery {
    pub(crate) snapshot_entries: u64,
    pub(crate) wal_records: u64,
    pub(crate) truncated_bytes: u64,
    pub(crate) replay_ns: u64,
}

/// The mutable heart of a shard: the tree plus a tid → signature catalog.
///
/// The catalog makes deletes and upserts self-contained (the tree's
/// `delete` needs the exact signature) and is what checkpoints serialize.
pub(crate) struct ShardState {
    pub(crate) tree: SgTree,
    pub(crate) catalog: HashMap<Tid, Signature>,
    /// Whether `catalog` mirrors the tree. Mmap shards skip catalog
    /// construction on open (restart stays O(WAL tail)) and hydrate it
    /// from [`SgTree::dump`] on the first write — queries never need it.
    pub(crate) catalog_ready: bool,
}

impl ShardState {
    /// Hydrates the catalog from the tree if it has not been built yet
    /// (the mmap write-warmup; a no-op for heap shards).
    pub(crate) fn ensure_catalog(&mut self) {
        if self.catalog_ready {
            return;
        }
        self.catalog = self.tree.dump().into_iter().collect();
        self.catalog_ready = true;
    }
}

struct DurableSide {
    wal: Wal,
    snapshot_path: PathBuf,
}

/// The mmap-storage sidecar: the copy-on-write page store the shard's
/// tree lives in, plus the published read-only view queries run against.
struct MmapSide {
    store: Arc<CowStore>,
    /// Read-only tree over a pinned [`sg_store::Snapshot`], swapped after
    /// every applied batch. Queries clone the `Arc` and drop the lock —
    /// they never contend with the shard's state lock.
    view: Mutex<Arc<SgTree>>,
    /// Tree-config hints for re-opening views.
    hints: TreeConfig,
    fsync: FsyncPolicy,
}

/// One executor shard: reader-writer state plus an optional WAL.
pub(crate) struct Shard {
    pub(crate) state: RwLock<ShardState>,
    durable: Option<Mutex<DurableSide>>,
    mmap: Option<MmapSide>,
}

/// Applies one staged mutation to `st`, returning the net change in entry
/// count. Shared by the live write path and WAL replay so both produce
/// identical states.
fn apply_op(st: &mut ShardState, op: &WriteOp) -> i64 {
    match op {
        WriteOp::Insert { tid, sig } => {
            st.tree.insert(*tid, sig);
            st.catalog.insert(*tid, sig.clone());
            1
        }
        WriteOp::Delete { tid } => match st.catalog.remove(tid) {
            Some(old) => {
                st.tree.delete(*tid, &old);
                -1
            }
            None => 0,
        },
        WriteOp::Upsert { tid, sig } => {
            let replaced = match st.catalog.remove(tid) {
                Some(old) => {
                    st.tree.delete(*tid, &old);
                    true
                }
                None => false,
            };
            st.tree.insert(*tid, sig);
            st.catalog.insert(*tid, sig.clone());
            if replaced {
                0
            } else {
                1
            }
        }
    }
}

fn wal_op(op: &WriteOp) -> WalOp {
    match op {
        WriteOp::Insert { .. } => WalOp::Insert,
        WriteOp::Delete { .. } => WalOp::Delete,
        WriteOp::Upsert { .. } => WalOp::Upsert,
    }
}

/// WAL payload of an op, **self-contained** so replay never needs a
/// catalog: inserts log the new signature, deletes log the signature
/// being removed, and upserts log the new signature followed by the
/// replaced one (when a previous value existed). Heap replay decodes
/// only the leading signature — [`codec::decode`] reports how many bytes
/// it consumed and ignores the rest — while mmap replay uses the trailing
/// old signature to undo the replaced entry directly in the tree.
fn wal_payload(op: &WriteOp, old: Option<&Signature>) -> Vec<u8> {
    let mut out = Vec::new();
    match op {
        WriteOp::Insert { sig, .. } => {
            codec::encode(sig, &mut out);
        }
        WriteOp::Delete { .. } => {
            if let Some(old) = old {
                codec::encode(old, &mut out);
            }
        }
        WriteOp::Upsert { sig, .. } => {
            codec::encode(sig, &mut out);
            if let Some(old) = old {
                codec::encode(old, &mut out);
            }
        }
    }
    out
}

/// Opens a read-only tree over a freshly pinned snapshot of `store`
/// (the mmap query view; the snapshot stays pinned until the view drops).
fn open_view(store: &Arc<CowStore>, hints: &TreeConfig) -> SgResult<SgTree> {
    SgTree::open(Arc::new(store.snapshot()), 0, hints.clone())
}

impl Shard {
    /// A memory-only shard (no WAL, no snapshot).
    pub(crate) fn memory(tree: SgTree, catalog: HashMap<Tid, Signature>) -> Shard {
        Shard {
            state: RwLock::new(ShardState {
                tree,
                catalog,
                catalog_ready: true,
            }),
            durable: None,
            mmap: None,
        }
    }

    /// Opens (or creates) durable shard `idx` under `dir`: loads the
    /// checkpoint (heap snapshot or committed page store), replays the
    /// WAL past its watermark, truncates any torn tail, and floors the
    /// LSN counter so reused LSNs can never collide with checkpointed
    /// ones.
    pub(crate) fn open_durable(
        dir: &Path,
        idx: usize,
        fsync: FsyncPolicy,
        storage: StorageMode,
        nbits: u32,
        tree_config: &TreeConfig,
        page_size: usize,
    ) -> SgResult<(Shard, ShardRecovery)> {
        match storage {
            StorageMode::Heap => {
                Shard::open_durable_heap(dir, idx, fsync, nbits, tree_config, page_size)
            }
            StorageMode::Mmap => {
                Shard::open_durable_mmap(dir, idx, fsync, nbits, tree_config, page_size)
            }
        }
    }

    fn open_durable_heap(
        dir: &Path,
        idx: usize,
        fsync: FsyncPolicy,
        nbits: u32,
        tree_config: &TreeConfig,
        page_size: usize,
    ) -> SgResult<(Shard, ShardRecovery)> {
        let snapshot_path = dir.join(format!("shard-{idx:03}.ckpt"));
        let wal_path = dir.join(format!("shard-{idx:03}.wal"));
        let t0 = Instant::now();
        let snap = read_snapshot(&snapshot_path)?;
        // The snapshot stores the WAL's next-LSN at checkpoint time:
        // records below it are already folded into the snapshot.
        let watermark = snap.as_ref().map(|(w, _)| *w).unwrap_or(0);
        let (wal, replay) = Wal::open(&wal_path, fsync, watermark)?;
        let mut st = ShardState {
            tree: SgTree::create(Arc::new(MemStore::new(page_size)), tree_config.clone())?,
            catalog: HashMap::new(),
            catalog_ready: true,
        };
        let mut snapshot_entries = 0u64;
        if let Some((_, entries)) = snap {
            for (tid, payload) in entries {
                let (sig, _) = codec::decode(nbits, &payload).map_err(|e| {
                    SgError::corrupt(format!(
                        "snapshot {snapshot_path:?} entry for tid {tid}: {e}"
                    ))
                })?;
                st.tree.insert(tid, &sig);
                st.catalog.insert(tid, sig);
                snapshot_entries += 1;
            }
        }
        let mut wal_records = 0u64;
        for rec in &replay.records {
            if rec.lsn < watermark {
                continue; // crash between snapshot rename and truncation
            }
            let op = match rec.op {
                WalOp::Insert => {
                    let (sig, _) = codec::decode(nbits, &rec.payload).map_err(|e| {
                        SgError::corrupt(format!("wal {wal_path:?} record lsn {}: {e}", rec.lsn))
                    })?;
                    WriteOp::Insert { tid: rec.tid, sig }
                }
                WalOp::Delete => WriteOp::Delete { tid: rec.tid },
                WalOp::Upsert => {
                    let (sig, _) = codec::decode(nbits, &rec.payload).map_err(|e| {
                        SgError::corrupt(format!("wal {wal_path:?} record lsn {}: {e}", rec.lsn))
                    })?;
                    WriteOp::Upsert { tid: rec.tid, sig }
                }
            };
            // A replayed insert may collide with itself if the same record
            // is somehow applied twice; route inserts through upsert
            // semantics so replay is idempotent.
            match op {
                WriteOp::Insert { tid, sig } => {
                    apply_op(&mut st, &WriteOp::Upsert { tid, sig });
                }
                other => {
                    apply_op(&mut st, &other);
                }
            }
            wal_records += 1;
        }
        let recovery = ShardRecovery {
            snapshot_entries,
            wal_records,
            truncated_bytes: replay.truncated_bytes,
            replay_ns: t0.elapsed().as_nanos() as u64,
        };
        Ok((
            Shard {
                state: RwLock::new(st),
                durable: Some(Mutex::new(DurableSide { wal, snapshot_path })),
                mmap: None,
            },
            recovery,
        ))
    }

    /// Opens shard `idx` over the mmap'd copy-on-write page store. The
    /// committed store already holds every write covered by its meta
    /// page's WAL watermark, so only the log tail past it is replayed —
    /// restart work is proportional to the un-checkpointed tail, not to
    /// the dataset.
    fn open_durable_mmap(
        dir: &Path,
        idx: usize,
        fsync: FsyncPolicy,
        nbits: u32,
        tree_config: &TreeConfig,
        page_size: usize,
    ) -> SgResult<(Shard, ShardRecovery)> {
        let store_path = dir.join(format!("shard-{idx:03}.pages"));
        let wal_path = dir.join(format!("shard-{idx:03}.wal"));
        let t0 = Instant::now();
        let (store, rep) = CowStore::open(&store_path, page_size)
            .map_err(|e| SgError::io(format!("opening the shard page store {store_path:?}"), e))?;
        // The store's meta page records the WAL next-LSN at commit time:
        // everything below it is already in the committed pages.
        let watermark = rep.checkpoint_lsn;
        let (wal, replay) = Wal::open(&wal_path, fsync, watermark)?;
        let page_store: Arc<dyn PageStore> = Arc::clone(&store) as Arc<dyn PageStore>;
        let mut tree = if rep.n_logical == 0 {
            SgTree::create(page_store, tree_config.clone())?
        } else {
            SgTree::open(page_store, 0, tree_config.clone())?
        };
        let snapshot_entries = tree.len();
        let mut wal_records = 0u64;
        for rec in &replay.records {
            if rec.lsn < watermark {
                continue; // crash between commit and truncation
            }
            // Replay is self-contained: payloads carry every signature
            // needed (see `wal_payload`), so no catalog is built here.
            let decode_at = |off: usize| {
                codec::decode(nbits, &rec.payload[off..]).map_err(|e| {
                    SgError::corrupt(format!("wal {wal_path:?} record lsn {}: {e}", rec.lsn))
                })
            };
            match rec.op {
                WalOp::Insert => {
                    let (sig, _) = decode_at(0)?;
                    tree.insert(rec.tid, &sig);
                }
                WalOp::Delete => {
                    if !rec.payload.is_empty() {
                        let (old, _) = decode_at(0)?;
                        tree.delete(rec.tid, &old);
                    }
                }
                WalOp::Upsert => {
                    let (sig, used) = decode_at(0)?;
                    if rec.payload.len() > used {
                        let (old, _) = decode_at(used)?;
                        tree.delete(rec.tid, &old);
                    }
                    tree.insert(rec.tid, &sig);
                }
            }
            wal_records += 1;
        }
        tree.flush();
        store.publish();
        let view = Arc::new(open_view(&store, tree_config)?);
        let recovery = ShardRecovery {
            snapshot_entries,
            wal_records,
            truncated_bytes: replay.truncated_bytes,
            replay_ns: t0.elapsed().as_nanos() as u64,
        };
        let snapshot_path = dir.join(format!("shard-{idx:03}.ckpt"));
        Ok((
            Shard {
                state: RwLock::new(ShardState {
                    tree,
                    catalog: HashMap::new(),
                    catalog_ready: false,
                }),
                durable: Some(Mutex::new(DurableSide { wal, snapshot_path })),
                mmap: Some(MmapSide {
                    store,
                    view: Mutex::new(view),
                    hints: tree_config.clone(),
                    fsync,
                }),
            },
            recovery,
        ))
    }

    /// Number of transactions currently in the shard.
    pub(crate) fn len(&self) -> u64 {
        self.state.read().tree.len()
    }

    /// Whether this shard holds `tid`.
    pub(crate) fn contains(&self, tid: Tid) -> bool {
        {
            let st = self.state.read();
            if st.catalog_ready {
                return st.catalog.contains_key(&tid);
            }
        }
        // Mmap shard before its first write: hydrate the catalog once.
        let mut st = self.state.write();
        st.ensure_catalog();
        st.catalog.contains_key(&tid)
    }

    /// The published read-only tree view (mmap shards only): a pinned,
    /// lock-free snapshot of the last applied batch. `None` means queries
    /// must take the state read lock instead.
    pub(crate) fn read_view(&self) -> Option<Arc<SgTree>> {
        self.mmap.as_ref().map(|m| Arc::clone(&m.view.lock()))
    }

    /// The mmap page store, if this shard uses one.
    pub(crate) fn store(&self) -> Option<&Arc<CowStore>> {
        self.mmap.as_ref().map(|m| &m.store)
    }

    /// Applies a group of ops under one write lock with one group commit:
    /// every op that passes validation gets a WAL record, the batch is
    /// appended and synced **once**, and only then do the mutations become
    /// observable (the lock is released after apply). Returns one result
    /// per op, in input order, plus the net change in entry count and the
    /// WAL bytes the group appended (zero for non-durable shards) — the
    /// write path's resource bill.
    ///
    /// `expected` (parallel to `ops`, or empty) carries an optional
    /// signature a delete must match (the `SetIndex::delete` contract);
    /// a mismatch acknowledges `applied = false` without touching state.
    pub(crate) fn apply_batch(
        &self,
        ops: &[WriteOp],
        expected: &[Option<Signature>],
        obs: Option<&IngestObs>,
    ) -> (Vec<SgResult<WriteAck>>, i64, u64) {
        let mut st = self.state.write();
        // Writes need the catalog for validation and old-signature
        // lookups; mmap shards build it lazily on the first write.
        st.ensure_catalog();
        // Stage: validate each op against the catalog *as mutated by
        // earlier ops in this batch*, collecting the WAL items to log.
        let mut staged: Vec<Option<WriteOp>> = Vec::with_capacity(ops.len());
        let mut results: Vec<SgResult<WriteAck>> = Vec::with_capacity(ops.len());
        let mut wal_items: Vec<(WalOp, u64, Vec<u8>)> = Vec::new();
        // Track catalog effects of earlier staged ops without applying
        // yet: tid → its signature after the staged prefix (`None` =
        // staged as deleted). WAL payloads must log the *effective* old
        // signature — an op earlier in this batch may have produced it —
        // or self-contained (mmap) replay would miss intra-batch
        // replacements.
        let mut pending: HashMap<Tid, Option<Signature>> = HashMap::new();
        let effective = |st: &ShardState, pending: &HashMap<Tid, Option<Signature>>, tid: Tid| {
            pending
                .get(&tid)
                .cloned()
                .unwrap_or_else(|| st.catalog.get(&tid).cloned())
        };
        for (i, op) in ops.iter().enumerate() {
            let want = expected.get(i).and_then(|e| e.as_ref());
            let old = effective(&st, &pending, op.tid());
            match op {
                WriteOp::Insert { tid, sig } => {
                    if old.is_some() {
                        staged.push(None);
                        results.push(Err(SgError::invalid(format!(
                            "insert of duplicate tid {tid}"
                        ))));
                        continue;
                    }
                    pending.insert(*tid, Some(sig.clone()));
                }
                WriteOp::Delete { tid } => {
                    let matches = match (&old, want) {
                        (None, _) => false,
                        (Some(_), None) => true,
                        (Some(have), Some(sig)) => have == sig,
                    };
                    if !matches {
                        staged.push(None);
                        results.push(Ok(WriteAck {
                            tid: *tid,
                            applied: false,
                            lsn: None,
                        }));
                        continue;
                    }
                    pending.insert(*tid, None);
                }
                WriteOp::Upsert { tid, sig } => {
                    pending.insert(*tid, Some(sig.clone()));
                }
            }
            wal_items.push((wal_op(op), op.tid(), wal_payload(op, old.as_ref())));
            staged.push(Some(op.clone()));
            results.push(Ok(WriteAck {
                tid: op.tid(),
                applied: true,
                lsn: None,
            }));
        }
        // Log: one append + one sync for the whole group. Nothing has been
        // applied yet, so a failure here leaves memory untouched and every
        // staged op is failed instead of acknowledged.
        let mut next_lsn = None;
        let mut wal_bytes = 0u64;
        let lsns: Vec<u64> = if wal_items.is_empty() {
            Vec::new()
        } else if let Some(d) = &self.durable {
            let mut side = d.lock();
            let before = side.wal.bytes();
            match side.wal.append_batch(&wal_items) {
                Ok(lsns) => {
                    wal_bytes = side.wal.bytes().saturating_sub(before);
                    if let Some(o) = obs {
                        o.wal_bytes.add(wal_bytes);
                        o.wal_syncs.inc();
                    }
                    next_lsn = Some(side.wal.next_lsn());
                    lsns
                }
                Err(e) => {
                    let msg = e.to_string();
                    for (slot, op) in results.iter_mut().zip(&staged) {
                        if op.is_some() {
                            *slot = Err(SgError::io(
                                "appending to the shard WAL",
                                std::io::Error::other(msg.clone()),
                            ));
                        }
                    }
                    return (results, 0, 0);
                }
            }
        } else {
            Vec::new()
        };
        // Apply: the records are durable; make the mutations observable.
        let mut delta = 0i64;
        let mut lsn_iter = lsns.into_iter();
        for (slot, op) in results.iter_mut().zip(&staged) {
            if let Some(op) = op {
                delta += apply_op(&mut st, op);
                if let Ok(ack) = slot {
                    ack.lsn = lsn_iter.next();
                }
            }
        }
        // Mmap epilogue: flush the tree's meta into the store's write
        // window, publish the new mapping, and swap in a fresh view so
        // queries observe this batch without taking the state lock.
        if let Some(m) = &self.mmap {
            if staged.iter().any(Option::is_some) {
                st.tree.flush();
                m.store.publish();
                match open_view(&m.store, &m.hints) {
                    Ok(view) => *m.view.lock() = Arc::new(view),
                    // The batch is durable and applied; keep serving the
                    // previous view rather than failing acknowledged ops.
                    Err(e) => debug_assert!(false, "reopening the shard view: {e}"),
                }
                if let (Some(so), Some(next)) = (m.store.obs_handle(), next_lsn) {
                    so.checkpoint_lag
                        .set(next.saturating_sub(m.store.checkpoint_lsn()) as i64);
                }
            }
        }
        (results, delta, wal_bytes)
    }

    /// Snapshots the whole catalog at the WAL's current position, then
    /// truncates the log. Holding the read lock pins the state the
    /// snapshot describes; the WAL mutex keeps concurrent appends out
    /// (writers hold the write lock anyway, so none can be mid-append).
    pub(crate) fn checkpoint(&self, obs: Option<&IngestObs>) -> SgResult<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        if let Some(m) = &self.mmap {
            // Mmap checkpoint: one dual-meta-page flip. The read lock
            // keeps writers out (so the tree's meta is already flushed —
            // every batch flushes before releasing the write lock) and
            // the WAL mutex keeps the watermark consistent with the
            // truncation that follows it.
            let t0 = Instant::now();
            let _st = self.state.read();
            let mut side = d.lock();
            let watermark = side.wal.next_lsn();
            m.store
                .commit(watermark, matches!(m.fsync, FsyncPolicy::Always))
                .map_err(|e| SgError::io("committing the shard page store", e))?;
            side.wal.truncate()?;
            if let Some(so) = m.store.obs_handle() {
                so.checkpoint_lag.set(0);
            }
            if let Some(o) = obs {
                o.checkpoints.inc();
                o.checkpoint_ns.record(t0.elapsed().as_nanos() as u64);
            }
            return Ok(());
        }
        let t0 = Instant::now();
        let st = self.state.read();
        let mut side = d.lock();
        let watermark = side.wal.next_lsn();
        let mut entries: Vec<(u64, Vec<u8>)> = st
            .catalog
            .iter()
            .map(|(tid, sig)| {
                let mut payload = Vec::new();
                codec::encode(sig, &mut payload);
                (*tid, payload)
            })
            .collect();
        entries.sort_unstable_by_key(|(tid, _)| *tid);
        let snapshot_path = side.snapshot_path.clone();
        write_snapshot(&snapshot_path, watermark, entries)?;
        side.wal.truncate()?;
        if let Some(o) = obs {
            o.checkpoints.inc();
            o.checkpoint_ns.record(t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }
}

const META_MAGIC: &[u8; 8] = b"SGEXMET1";

/// Writes the executor-level meta file (atomically: tmp + rename).
pub(crate) fn write_meta(
    dir: &Path,
    nbits: u32,
    shards: u32,
    partitioner: Partitioner,
) -> SgResult<()> {
    let mut buf = Vec::with_capacity(17);
    buf.extend_from_slice(META_MAGIC);
    buf.extend_from_slice(&nbits.to_le_bytes());
    buf.extend_from_slice(&shards.to_le_bytes());
    buf.push(partitioner.to_byte());
    let tmp = dir.join("meta.tmp");
    let path = dir.join("meta.bin");
    std::fs::write(&tmp, &buf).map_err(|e| SgError::io("writing the executor meta file", e))?;
    std::fs::rename(&tmp, &path)
        .map_err(|e| SgError::io("publishing the executor meta file", e))?;
    Ok(())
}

/// Reads the meta file back; `Ok(None)` when the directory is fresh.
pub(crate) fn read_meta(dir: &Path) -> SgResult<Option<(u32, u32, Partitioner)>> {
    let path = dir.join("meta.bin");
    let buf = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SgError::io("reading the executor meta file", e)),
    };
    if buf.len() != 17 || &buf[..8] != META_MAGIC {
        return Err(SgError::corrupt(format!("malformed meta file {path:?}")));
    }
    let nbits = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    let shards = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
    let partitioner = Partitioner::from_byte(buf[16])
        .ok_or_else(|| SgError::corrupt(format!("unknown partitioner tag in {path:?}")))?;
    Ok(Some((nbits, shards, partitioner)))
}
