//! Merging per-shard answers into the global answer.
//!
//! Every merge reproduces the *canonical* order the single-tree queries
//! use — `(dist, tid)` for distance queries, ascending tid for id sets —
//! so a sharded answer is byte-identical to the unsharded one.

use sg_tree::{Neighbor, QueryStats, Tid};

/// Costs of one fan-out query: the per-shard breakdown, their sum, and how
/// long the final merge took.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Sum of all shard costs (what a single tree would report, modulo
    /// cross-shard pruning savings).
    pub total: QueryStats,
    /// Per-shard costs, indexed by shard.
    pub per_shard: Vec<QueryStats>,
    /// Wall time of the merge step, nanoseconds.
    pub merge_ns: u64,
}

impl ExecStats {
    /// Folds `per_shard` into the aggregate view.
    pub fn from_shards(per_shard: Vec<QueryStats>) -> ExecStats {
        let mut total = QueryStats::default();
        for s in &per_shard {
            total.add(s);
        }
        ExecStats {
            total,
            per_shard,
            merge_ns: 0,
        }
    }
}

fn canonical(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.dist
        .partial_cmp(&b.dist)
        .expect("distances are never NaN")
        .then(a.tid.cmp(&b.tid))
}

/// Global k-NN = the k smallest `(dist, tid)` pairs across all shards.
pub fn merge_knn(parts: Vec<Vec<Neighbor>>, k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = parts.into_iter().flatten().collect();
    all.sort_by(canonical);
    all.truncate(k);
    all
}

/// Range answers concatenate; shards are disjoint so no dedup is needed.
pub fn merge_range(parts: Vec<Vec<Neighbor>>) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = parts.into_iter().flatten().collect();
    all.sort_by(canonical);
    all
}

/// Id-set answers (containment / exact match) concatenate and sort.
pub fn merge_tids(parts: Vec<Vec<Tid>>) -> Vec<Tid> {
    let mut all: Vec<Tid> = parts.into_iter().flatten().collect();
    all.sort_unstable();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(tid: Tid, dist: f64) -> Neighbor {
        Neighbor { tid, dist }
    }

    #[test]
    fn knn_keeps_k_smallest_with_tid_ties() {
        let parts = vec![
            vec![n(5, 1.0), n(9, 2.0)],
            vec![n(2, 1.0), n(7, 0.5)],
            vec![],
        ];
        let merged = merge_knn(parts, 3);
        assert_eq!(
            merged.iter().map(|x| x.tid).collect::<Vec<_>>(),
            vec![7, 2, 5]
        );
    }

    #[test]
    fn range_and_tids_sort_globally() {
        let r = merge_range(vec![vec![n(3, 0.2)], vec![n(1, 0.1), n(8, 0.2)]]);
        assert_eq!(r.iter().map(|x| x.tid).collect::<Vec<_>>(), vec![1, 3, 8]);
        assert_eq!(
            merge_tids(vec![vec![4, 9], vec![1], vec![6]]),
            vec![1, 4, 6, 9]
        );
    }
}
