//! Executor-level instruments, following the `IndexObs` naming scheme so
//! dashboards line the executor up against the single-index columns.

use sg_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Instrument set for one sharded executor.
#[derive(Debug)]
pub struct ExecObs {
    /// Fan-out queries executed (`<prefix>.queries`).
    pub queries: Arc<Counter>,
    /// Batches executed (`<prefix>.batches`).
    pub batches: Arc<Counter>,
    /// End-to-end per-query wall time, ns (`<prefix>.query_ns`).
    pub query_ns: Arc<Histogram>,
    /// Merge-step wall time, ns (`<prefix>.merge_ns`).
    pub merge_ns: Arc<Histogram>,
    /// Instantaneous thread-pool queue depth (`<prefix>.queue.depth`).
    pub queue_depth: Arc<Gauge>,
    /// Nodes visited per shard (`<prefix>.shard<i>.visits`).
    pub shard_visits: Vec<Arc<Counter>>,
}

impl ExecObs {
    /// Registers the instruments under `<prefix>.*` for `shards` shards.
    pub fn register(registry: &Registry, prefix: &str, shards: usize) -> Arc<ExecObs> {
        Arc::new(ExecObs {
            queries: registry.counter(&format!("{prefix}.queries")),
            batches: registry.counter(&format!("{prefix}.batches")),
            query_ns: registry.histogram(&format!("{prefix}.query_ns")),
            merge_ns: registry.histogram(&format!("{prefix}.merge_ns")),
            queue_depth: registry.gauge(&format!("{prefix}.queue.depth")),
            shard_visits: (0..shards)
                .map(|i| registry.counter(&format!("{prefix}.shard{i}.visits")))
                .collect(),
        })
    }
}
