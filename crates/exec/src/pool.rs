//! A fixed-size worker pool over `std::thread`.
//!
//! The executor is built once and then serves queries from stable worker
//! threads: no per-query spawn cost, and a bounded degree of parallelism
//! chosen at construction. Tasks are plain boxed closures; the queue depth
//! is exported as a gauge once observability is registered.
//!
//! The shutdown path is deliberately panic-free: a server draining its
//! connections drops pools with in-flight work all the time, so a poisoned
//! queue mutex, a job submitted during teardown, or a job that itself
//! panics must never take the pool (or the thread dropping it) down with
//! it. Panicking jobs are caught, counted, and the worker keeps serving.

use sg_obs::Gauge;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    job_panics: AtomicU64,
    depth: OnceLock<Arc<Gauge>>,
}

impl Shared {
    /// Locks the queue, recovering from poisoning: the queue holds plain
    /// data (boxed closures), which stays structurally valid even if a
    /// panic unwound through a previous guard, so continuing is safe and
    /// keeps drop/drain paths panic-free.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Fixed pool of worker threads consuming a FIFO job queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            job_panics: AtomicU64::new(0),
            depth: OnceLock::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sg-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some worker will run it. Returns `false` (dropping
    /// the job) if the pool has already begun shutting down, so racing a
    /// submit against teardown cannot panic or enqueue work nobody will
    /// run.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let mut q = self.shared.lock_queue();
        q.push_back(Box::new(job));
        if let Some(g) = self.shared.depth.get() {
            g.set(q.len() as i64);
        }
        drop(q);
        self.shared.available.notify_one();
        true
    }

    /// Jobs that panicked while running (caught; the worker survives).
    pub fn job_panics(&self) -> u64 {
        self.shared.job_panics.load(Ordering::Relaxed)
    }

    /// Exports the instantaneous queue depth through `gauge`. May be set
    /// once; later calls are ignored.
    pub fn set_depth_gauge(&self, gauge: Arc<Gauge>) {
        let _ = self.shared.depth.set(gauge);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.lock_queue();
            loop {
                if let Some(job) = q.pop_front() {
                    if let Some(g) = shared.depth.get() {
                        g.set(q.len() as i64);
                    }
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(job) => {
                // A panicking query task must not kill the worker: the
                // pool would silently lose capacity and a later drop could
                // block on a job nobody will ever run.
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                    shared.job_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job() {
        let pool = ThreadPool::new(3);
        let hits = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            pool.submit(move || {
                hits.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..50 {
            rx.recv().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(pool); // must not hang
    }

    #[test]
    fn drop_with_queued_in_flight_work_drains_without_panic() {
        // One slow worker, many queued jobs: dropping the pool while most
        // of the queue is still pending must finish every accepted job and
        // never panic — the exact shape of a server drain.
        let pool = ThreadPool::new(1);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = ThreadPool::new(1);
        pool.submit(|| panic!("job explodes"));
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(11u32).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 11);
        assert_eq!(pool.job_panics(), 1);
    }

    #[test]
    fn depth_gauge_returns_to_zero() {
        let pool = ThreadPool::new(1);
        let gauge = Arc::new(Gauge::new());
        pool.set_depth_gauge(Arc::clone(&gauge));
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let tx = tx.clone();
            pool.submit(move || tx.send(()).unwrap());
        }
        for _ in 0..8 {
            rx.recv().unwrap();
        }
        assert_eq!(gauge.get(), 0);
    }
}
