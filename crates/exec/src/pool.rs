//! A fixed-size worker pool over `std::thread`.
//!
//! The executor is built once and then serves queries from stable worker
//! threads: no per-query spawn cost, and a bounded degree of parallelism
//! chosen at construction. Tasks are plain boxed closures; the queue depth
//! is exported as a gauge once observability is registered.

use sg_obs::Gauge;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    depth: OnceLock<Arc<Gauge>>,
}

/// Fixed pool of worker threads consuming a FIFO job queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            depth: OnceLock::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sg-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some worker will run it.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        q.push_back(Box::new(job));
        if let Some(g) = self.shared.depth.get() {
            g.set(q.len() as i64);
        }
        drop(q);
        self.shared.available.notify_one();
    }

    /// Exports the instantaneous queue depth through `gauge`. May be set
    /// once; later calls are ignored.
    pub fn set_depth_gauge(&self, gauge: Arc<Gauge>) {
        let _ = self.shared.depth.set(gauge);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    if let Some(g) = shared.depth.get() {
                        g.set(q.len() as i64);
                    }
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.available.wait(q).expect("pool queue poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn runs_every_submitted_job() {
        let pool = ThreadPool::new(3);
        let hits = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            pool.submit(move || {
                hits.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..50 {
            rx.recv().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(pool); // must not hang
    }

    #[test]
    fn depth_gauge_returns_to_zero() {
        let pool = ThreadPool::new(1);
        let gauge = Arc::new(Gauge::new());
        pool.set_depth_gauge(Arc::clone(&gauge));
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let tx = tx.clone();
            pool.submit(move || tx.send(()).unwrap());
        }
        for _ in 0..8 {
            rx.recv().unwrap();
        }
        assert_eq!(gauge.get(), 0);
    }
}
