//! Dataset partitioners: how transactions are split across shards.
//!
//! Both strategies are deterministic — partitioning the same data with the
//! same shard count always yields the same layout — and **complete**: every
//! transaction lands in exactly one shard. The differential test suite
//! relies on both properties to compare sharded answers against a single
//! tree byte for byte.

use sg_sig::{Metric, Signature};
use sg_tree::Tid;

/// How to split a dataset into `k` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Transaction `i` (by input position) goes to shard `i % k`. Shards
    /// end up statistically identical, so per-shard work is balanced but
    /// every shard sees every cluster of the data.
    RoundRobin,
    /// Greedy signature clustering: `k` seed signatures are picked
    /// farthest-first under Jaccard distance, then each transaction joins
    /// the nearest seed's shard, subject to a balance cap of `ceil(n/k)`.
    /// Similar transactions co-locate, so directory signatures stay
    /// selective and whole shards prune early on clustered queries.
    SignatureClustered,
}

impl Partitioner {
    /// Routes a *live* write for `tid` to a shard.
    ///
    /// Unlike [`Partitioner::partition`] — which places bulk data by input
    /// position or signature clustering — live routing is keyed by tid
    /// alone, so the insert, delete, and upsert of one tid always target
    /// the same shard and a single WAL record covers the whole mutation.
    /// `SignatureClustered` scrambles the tid (splitmix64) so sequential
    /// tids spread evenly instead of marching through one shard at a time.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn route(&self, tid: Tid, k: usize) -> usize {
        assert!(k > 0, "shard count must be positive");
        match self {
            Partitioner::RoundRobin => (tid % k as u64) as usize,
            Partitioner::SignatureClustered => (splitmix64(tid) % k as u64) as usize,
        }
    }

    /// Stable byte tag for the durable meta file.
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            Partitioner::RoundRobin => 0,
            Partitioner::SignatureClustered => 1,
        }
    }

    /// Inverse of [`Partitioner::to_byte`].
    pub(crate) fn from_byte(b: u8) -> Option<Partitioner> {
        match b {
            0 => Some(Partitioner::RoundRobin),
            1 => Some(Partitioner::SignatureClustered),
            _ => None,
        }
    }

    /// Splits `data` into `k` shards (some possibly empty when `n < k`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn partition(&self, data: &[(Tid, Signature)], k: usize) -> Vec<Vec<(Tid, Signature)>> {
        assert!(k > 0, "shard count must be positive");
        match self {
            Partitioner::RoundRobin => {
                let mut shards: Vec<Vec<(Tid, Signature)>> = vec![Vec::new(); k];
                for (i, pair) in data.iter().enumerate() {
                    shards[i % k].push(pair.clone());
                }
                shards
            }
            Partitioner::SignatureClustered => clustered(data, k),
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed permutation of `u64` used to
/// spread sequential tids across shards in [`Partitioner::route`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Farthest-first seed selection + capped nearest-seed assignment.
fn clustered(data: &[(Tid, Signature)], k: usize) -> Vec<Vec<(Tid, Signature)>> {
    let n = data.len();
    let mut shards: Vec<Vec<(Tid, Signature)>> = vec![Vec::new(); k];
    if n == 0 {
        return shards;
    }
    let metric = Metric::jaccard();
    // Seeds: start from the first transaction, then repeatedly take the
    // transaction farthest from its closest seed (ties → lowest position,
    // keeping the layout deterministic).
    let mut seeds: Vec<usize> = vec![0];
    let mut dist_to_seed: Vec<f64> = data
        .iter()
        .map(|(_, s)| metric.dist(s, &data[0].1))
        .collect();
    while seeds.len() < k.min(n) {
        let (far, _) =
            dist_to_seed
                .iter()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |best, (i, &d)| {
                    if d > best.1 {
                        (i, d)
                    } else {
                        best
                    }
                });
        seeds.push(far);
        for (i, (_, s)) in data.iter().enumerate() {
            let d = metric.dist(s, &data[far].1);
            if d < dist_to_seed[i] {
                dist_to_seed[i] = d;
            }
        }
    }
    // Assignment: nearest seed first, overflowing to the next-nearest once
    // a shard hits the cap. The cap keeps the fan-out balanced — a single
    // hot cluster cannot serialize the whole executor behind one shard.
    let cap = n.div_ceil(k);
    for pair in data {
        let mut order: Vec<(f64, usize)> = seeds
            .iter()
            .enumerate()
            .map(|(si, &seed)| (metric.dist(&pair.1, &data[seed].1), si))
            .collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let slot = order
            .iter()
            .find(|(_, si)| shards[*si].len() < cap)
            .map(|(_, si)| *si)
            .expect("cap * k >= n, so some shard has room");
        shards[slot].push(pair.clone());
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<(Tid, Signature)> {
        (0..n)
            .map(|tid| {
                let base = (tid % 4) as u32 * 16;
                let items = [base + (tid % 7) as u32, base + (tid % 11) as u32 + 1];
                (tid, Signature::from_items(64, &items))
            })
            .collect()
    }

    #[test]
    fn round_robin_is_complete_and_balanced() {
        let data = sample(103);
        let shards = Partitioner::RoundRobin.partition(&data, 4);
        let mut tids: Vec<Tid> = shards.iter().flatten().map(|(t, _)| *t).collect();
        tids.sort_unstable();
        assert_eq!(tids, (0..103).collect::<Vec<_>>());
        for s in &shards {
            assert!((25..=26).contains(&s.len()));
        }
    }

    #[test]
    fn clustered_is_complete_and_capped() {
        let data = sample(103);
        let shards = Partitioner::SignatureClustered.partition(&data, 4);
        let mut tids: Vec<Tid> = shards.iter().flatten().map(|(t, _)| *t).collect();
        tids.sort_unstable();
        assert_eq!(tids, (0..103).collect::<Vec<_>>());
        let cap = 103usize.div_ceil(4);
        for s in &shards {
            assert!(s.len() <= cap, "{} > cap {cap}", s.len());
        }
    }

    #[test]
    fn clustered_is_deterministic() {
        let data = sample(64);
        let a = Partitioner::SignatureClustered.partition(&data, 3);
        let b = Partitioner::SignatureClustered.partition(&data, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn more_shards_than_data_leaves_empties() {
        let data = sample(2);
        let shards = Partitioner::SignatureClustered.partition(&data, 5);
        assert_eq!(shards.iter().filter(|s| !s.is_empty()).count(), 2);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 2);
    }
}
