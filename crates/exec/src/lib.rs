//! # sg-exec — sharded parallel query execution for the SG-tree
//!
//! The paper's SG-tree ([`sg_tree::SgTree`]) answers one query on one
//! tree. This crate scales that out: the dataset is partitioned across
//! `K` independent shards (each its own SG-tree over its own page store
//! and buffer pool), and every query fans out over a fixed pool of worker
//! threads, one task per shard, with the per-shard answers merged into
//! the **canonical global answer** — byte-identical to what a single tree
//! over the whole dataset returns.
//!
//! Key pieces:
//!
//! * [`Partitioner`] — round-robin or greedy signature clustering; both
//!   deterministic and complete (every tid in exactly one shard).
//! * [`ShardedExecutor`] — build once, query from any thread. Supports
//!   containment (`containing` / `contained_in` / `exact`), similarity
//!   `range`, and `knn`.
//! * k-NN shards cooperate through [`sg_tree::SharedBound`]: each shard
//!   publishes its local k-th-best distance into a lock-free global
//!   bound, so one shard's good neighbors prune another shard's search.
//! * [`ShardedExecutor::execute_batch`] — pipeline many heterogeneous
//!   [`QueryRequest`]s through the pool at once; merges run on whichever
//!   worker finishes a query's last shard. [`QueryOptions::traced`] asks
//!   any query for an EXPLAIN trace whose children are the per-shard
//!   traces ([`sg_obs::QueryTrace::children`]).
//! * **Live writes** — [`ShardedExecutor::insert`] / `delete` / `upsert`
//!   route to one shard by tid ([`Partitioner::route`]) behind a
//!   per-shard `RwLock`, so queries keep running against the other
//!   shards while a writer mutates;
//!   [`ShardedExecutor::write_batch`] group-commits a mixed batch.
//! * **Durability** — [`ShardedExecutor::open_durable`] puts a CRC-framed
//!   write-ahead log and checkpoint snapshot under every shard
//!   ([`DurabilityConfig`]): writes are logged and fsynced *before* they
//!   are applied and acknowledged, and reopening replays snapshot + WAL
//!   back to the last acknowledged write
//!   ([`ShardedExecutor::recovery`]). With [`StorageMode::Mmap`] each
//!   shard instead lives in an mmap'd copy-on-write page store
//!   (`sg_store`): queries run on pinned snapshot views, checkpoints are
//!   a single meta-page flip, and reopen replays only the WAL tail.
//!
//! ## Quick example
//!
//! ```
//! use sg_exec::{ExecConfig, Partitioner, QueryOptions, QueryOutput, QueryRequest,
//!               ShardedExecutor};
//! use sg_sig::{Metric, Signature};
//!
//! let nbits = 64;
//! let data: Vec<(u64, Signature)> = (0..100)
//!     .map(|tid| (tid, Signature::from_items(nbits, &[(tid % 16) as u32, 40])))
//!     .collect();
//! let exec = ShardedExecutor::build(
//!     nbits,
//!     &data,
//!     &ExecConfig { shards: 4, partitioner: Partitioner::RoundRobin, ..ExecConfig::default() },
//! )
//! .unwrap();
//! // Unified query surface: one request enum, one response struct.
//! let resp = exec
//!     .query(
//!         &QueryRequest::Knn {
//!             q: Signature::from_items(nbits, &[3, 40]),
//!             k: 5,
//!             metric: Metric::hamming(),
//!         },
//!         &QueryOptions::default(),
//!     )
//!     .unwrap();
//! match &resp.output {
//!     QueryOutput::Neighbors(hits) => assert_eq!(hits.len(), 5),
//!     other => panic!("unexpected output: {other:?}"),
//! }
//! assert_eq!(resp.per_shard.len(), 4);
//! // The executor is live: writes land while readers keep going.
//! let ack = exec.insert(100, &Signature::from_items(nbits, &[9, 40])).unwrap();
//! assert!(ack.applied);
//! assert_eq!(exec.len(), 101);
//! ```

mod executor;
mod merge;
mod obs;
mod partition;
mod pool;
mod shard;

#[allow(deprecated)]
pub use executor::{BatchOutput, BatchQuery};
pub use executor::{Checkpointer, ExecConfig, ShardedExecutor};
pub use merge::{merge_knn, merge_range, merge_tids, ExecStats};
pub use obs::ExecObs;
pub use partition::Partitioner;
pub use pool::ThreadPool;
pub use sg_pager::FsyncPolicy;
pub use shard::{DurabilityConfig, RecoveryReport, StorageMode, WriteAck, WriteOp};

// The unified query surface (and its cancellation flag, which used to be
// defined here) comes from `sg_tree`; re-exported so executor callers need
// only this crate.
pub use sg_tree::{
    CancelFlag, Finding, HealthReport, LevelHealth, QueryOptions, QueryOutput, QueryRequest,
    QueryResponse, SetIndex, Severity, SgError, SgResult,
};
