//! # sg-exec — sharded parallel query execution for the SG-tree
//!
//! The paper's SG-tree ([`sg_tree::SgTree`]) answers one query on one
//! tree. This crate scales that out: the dataset is partitioned across
//! `K` independent shards (each its own SG-tree over its own page store
//! and buffer pool), and every query fans out over a fixed pool of worker
//! threads, one task per shard, with the per-shard answers merged into
//! the **canonical global answer** — byte-identical to what a single tree
//! over the whole dataset returns.
//!
//! Key pieces:
//!
//! * [`Partitioner`] — round-robin or greedy signature clustering; both
//!   deterministic and complete (every tid in exactly one shard).
//! * [`ShardedExecutor`] — build once, query from any thread. Supports
//!   containment (`containing` / `contained_in` / `exact`), similarity
//!   `range`, and `knn`.
//! * k-NN shards cooperate through [`sg_tree::SharedBound`]: each shard
//!   publishes its local k-th-best distance into a lock-free global
//!   bound, so one shard's good neighbors prune another shard's search.
//! * [`ShardedExecutor::execute_batch`] — pipeline many heterogeneous
//!   queries through the pool at once; merges run on whichever worker
//!   finishes a query's last shard.
//! * [`ShardedExecutor::knn_explain`] — an EXPLAIN trace whose children
//!   are the per-shard traces ([`sg_obs::QueryTrace::children`]).
//!
//! ## Quick example
//!
//! ```
//! use sg_exec::{ExecConfig, Partitioner, ShardedExecutor};
//! use sg_sig::{Metric, Signature};
//!
//! let nbits = 64;
//! let data: Vec<(u64, Signature)> = (0..100)
//!     .map(|tid| (tid, Signature::from_items(nbits, &[(tid % 16) as u32, 40])))
//!     .collect();
//! let exec = ShardedExecutor::build(
//!     nbits,
//!     &data,
//!     &ExecConfig { shards: 4, partitioner: Partitioner::RoundRobin, ..ExecConfig::default() },
//! )
//! .unwrap();
//! let (hits, stats) = exec.knn(&Signature::from_items(nbits, &[3, 40]), 5, &Metric::hamming());
//! assert_eq!(hits.len(), 5);
//! assert_eq!(stats.per_shard.len(), 4);
//! ```

mod executor;
mod merge;
mod obs;
mod partition;
mod pool;

pub use executor::{BatchOutput, BatchQuery, BatchResult, CancelFlag, ExecConfig, ShardedExecutor};
pub use merge::{merge_knn, merge_range, merge_tids, ExecStats};
pub use obs::ExecObs;
pub use partition::Partitioner;
pub use pool::ThreadPool;
