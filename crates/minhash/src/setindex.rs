//! [`SetIndex`] implementation: MinHash-LSH through the unified query
//! API. k-NN and range answers are *approximate* (sound but possibly
//! incomplete — candidates that never collided are missed); containment
//! queries and mutation are unsupported.

use crate::MinHashLsh;
use sg_sig::Signature;
use sg_tree::{
    QueryOptions, QueryOutput, QueryRequest, QueryResponse, SetIndex, SgError, SgResult, Tid,
};

fn check_nbits(expected: u32, q: &Signature) -> SgResult<()> {
    if q.nbits() != expected {
        return Err(SgError::invalid(format!(
            "query signature has {} bits; index expects {}",
            q.nbits(),
            expected
        )));
    }
    Ok(())
}

impl SetIndex for MinHashLsh {
    fn name(&self) -> &'static str {
        "minhash"
    }

    fn len(&self) -> u64 {
        MinHashLsh::len(self)
    }

    fn nbits(&self) -> u32 {
        MinHashLsh::nbits(self)
    }

    fn insert(&mut self, _tid: Tid, _sig: &Signature) -> SgResult<()> {
        Err(SgError::Unsupported("insert on the build-only MinHash-LSH"))
    }

    fn delete(&mut self, _tid: Tid, _sig: &Signature) -> SgResult<bool> {
        Err(SgError::Unsupported("delete on the build-only MinHash-LSH"))
    }

    fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse> {
        check_nbits(MinHashLsh::nbits(self), req.signature())?;
        if opts.expired() {
            return Err(SgError::Cancelled);
        }
        let (output, stats) = match req {
            QueryRequest::Knn { q, k, metric } => {
                let (r, s) = self.knn(q, *k, metric);
                (QueryOutput::Neighbors(r), s)
            }
            QueryRequest::Range { q, eps, metric } => {
                let (r, s) = self.range(q, *eps, metric);
                (QueryOutput::Neighbors(r), s)
            }
            QueryRequest::Containing { .. }
            | QueryRequest::ContainedIn { .. }
            | QueryRequest::Exact { .. } => {
                return Err(SgError::Unsupported(
                    "containment queries on MinHash-LSH (similarity-only baseline)",
                ));
            }
        };
        Ok(QueryResponse::single(output, stats))
    }
}
