//! # MinHash + LSH: the approximate set-similarity comparator
//!
//! The SG-tree paper distinguishes itself from "hash-based indexes which
//! provide approximate results" (Gionis, Gunopulos & Koudas, its \[11\]) by
//! returning *exact* answers. This crate implements that approximate
//! family — MinHash signatures with banded locality-sensitive hashing for
//! the Jaccard similarity — so the exact-vs-approximate trade-off can be
//! measured rather than asserted (see `repro ablate`'s `ablate_minhash`).
//!
//! * [`MinHasher`] — `h` universal hash functions over the item universe;
//!   a set's MinHash vector is the per-function minimum over its items.
//!   `P[minhash_i(A) = minhash_i(B)] = jaccard(A, B)`, so the vector
//!   estimates Jaccard similarity with standard error `1/√h`.
//! * [`MinHashLsh`] — splits the vector into `b` bands of `r` rows; two
//!   sets collide when any band matches entirely, giving the classic
//!   `1 − (1 − s^r)^b` S-curve of candidate probability against
//!   similarity `s`.
//!
//! Queries verify candidates against the stored exact signatures, so
//! results are never *wrong* — they are *incomplete* when a true neighbor
//! never collided. Recall is a measurable function of the band geometry.

mod hasher;
mod lsh;
mod setindex;

pub use hasher::{MinHashVector, MinHasher};
pub use lsh::{LshParams, MinHashLsh};
