//! Banded LSH over MinHash vectors, with exact candidate verification.

use crate::hasher::{MinHashVector, MinHasher};
use sg_obs::{IndexObs, Registry};
use sg_sig::{Metric, Signature};
use sg_tree::{Neighbor, QueryStats, Tid};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Band geometry: `bands × rows` hash functions in total.
#[derive(Debug, Clone, Copy)]
pub struct LshParams {
    /// Number of bands `b`.
    pub bands: usize,
    /// Rows per band `r`.
    pub rows: usize,
    /// Seed for the hash family.
    pub seed: u64,
}

impl Default for LshParams {
    /// `16 × 4`: the candidate-probability S-curve crosses 50% near
    /// Jaccard similarity `(1/b)^(1/r) = (1/16)^(1/4) ≈ 0.5`.
    fn default() -> Self {
        LshParams {
            bands: 16,
            rows: 4,
            seed: 0x4C53_4820,
        }
    }
}

impl LshParams {
    /// Total hash functions `b·r`.
    pub fn n_hashes(&self) -> usize {
        self.bands * self.rows
    }

    /// Probability that two sets at Jaccard similarity `s` become
    /// candidates: `1 − (1 − s^r)^b`.
    pub fn candidate_probability(&self, s: f64) -> f64 {
        1.0 - (1.0 - s.powi(self.rows as i32)).powi(self.bands as i32)
    }
}

/// A MinHash-LSH index. Memory-resident (vectors, buckets, and the exact
/// signatures for verification), like the approximate indexes it models.
pub struct MinHashLsh {
    params: LshParams,
    hasher: MinHasher,
    /// Per band: band-key → tids.
    buckets: Vec<HashMap<u64, Vec<Tid>>>,
    /// Exact signatures for candidate verification.
    records: HashMap<Tid, Signature>,
    nbits: u32,
    len: u64,
    /// Optional metrics instruments.
    obs: Option<Arc<IndexObs>>,
}

impl MinHashLsh {
    /// Builds the index over `data`.
    pub fn build(nbits: u32, params: LshParams, data: &[(Tid, Signature)]) -> MinHashLsh {
        assert!(params.bands > 0 && params.rows > 0);
        let hasher = MinHasher::new(params.n_hashes(), params.seed);
        let mut buckets: Vec<HashMap<u64, Vec<Tid>>> = vec![HashMap::new(); params.bands];
        let mut records = HashMap::with_capacity(data.len());
        for (tid, sig) in data {
            assert_eq!(sig.nbits(), nbits, "signature universe mismatch");
            assert!(
                records.insert(*tid, sig.clone()).is_none(),
                "duplicate tid {tid}"
            );
            let v = hasher.vector(sig);
            for (band, bucket) in buckets.iter_mut().enumerate() {
                bucket
                    .entry(band_key(&v, band, params.rows))
                    .or_default()
                    .push(*tid);
            }
        }
        MinHashLsh {
            params,
            hasher,
            buckets,
            records,
            nbits,
            len: data.len() as u64,
            obs: None,
        }
    }

    /// Registers instruments under `<prefix>.*` in `registry` and attaches
    /// them; queries record into them from then on. The index is
    /// memory-resident, so its I/O counters stay zero.
    pub fn register_obs(&mut self, registry: &Registry, prefix: &str) -> Arc<IndexObs> {
        let obs = IndexObs::register(registry, prefix);
        self.obs = Some(obs.clone());
        obs
    }

    /// Records one finished query into the attached instruments, if any.
    fn observe(&self, stats: &QueryStats, start: Option<std::time::Instant>) {
        if let (Some(obs), Some(start)) = (self.obs.as_ref(), start) {
            obs.observe_query(
                stats.nodes_accessed,
                stats.data_compared,
                stats.dist_computations,
                stats.io.logical_reads,
                stats.io.physical_reads,
                start.elapsed().as_nanos() as u64,
            );
        }
    }

    /// Number of indexed transactions.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The band geometry.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// The item-universe size.
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// The distinct candidate tids colliding with `q` in any band.
    pub fn candidates(&self, q: &Signature) -> Vec<Tid> {
        let v = self.hasher.vector(q);
        let mut seen: HashSet<Tid> = HashSet::new();
        for (band, bucket) in self.buckets.iter().enumerate() {
            if let Some(tids) = bucket.get(&band_key(&v, band, self.params.rows)) {
                seen.extend(tids.iter().copied());
            }
        }
        let mut out: Vec<Tid> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// *Approximate* `k`-NN: the `k` best **candidates**, verified with
    /// exact distances. True neighbors that never collided are missed —
    /// that incompleteness is the price of the candidate generation and
    /// the quantity `repro ablate` measures as recall.
    pub fn knn(&self, q: &Signature, k: usize, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let mut stats = QueryStats::default();
        let mut out: Vec<Neighbor> = Vec::new();
        for tid in self.candidates(q) {
            stats.data_compared += 1;
            stats.dist_computations += 1;
            out.push(Neighbor {
                tid,
                dist: metric.dist(q, &self.records[&tid]),
            });
        }
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite")
                .then(a.tid.cmp(&b.tid))
        });
        out.truncate(k);
        self.observe(&stats, start);
        (out, stats)
    }

    /// *Approximate* range query: candidates within `eps`.
    pub fn range(&self, q: &Signature, eps: f64, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let mut stats = QueryStats::default();
        let mut out: Vec<Neighbor> = Vec::new();
        for tid in self.candidates(q) {
            stats.data_compared += 1;
            stats.dist_computations += 1;
            let d = metric.dist(q, &self.records[&tid]);
            if d <= eps {
                out.push(Neighbor { tid, dist: d });
            }
        }
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite")
                .then(a.tid.cmp(&b.tid))
        });
        self.observe(&stats, start);
        (out, stats)
    }
}

/// A band's key: an FNV-1a fold of its rows.
fn band_key(v: &MinHashVector, band: usize, rows: usize) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &x in &v[band * rows..(band + 1) * rows] {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const NBITS: u32 = 512;

    fn clustered_data(n: u64) -> Vec<(Tid, Signature)> {
        // Near-duplicate families: 20-item base sets with 2-item mutations.
        let mut out = Vec::new();
        let mut x = 77u64;
        for tid in 0..n {
            let family = tid % 16;
            let base = family as u32 * 32;
            let mut items: Vec<u32> = (0..20).map(|i| base + i).collect();
            x = x.wrapping_mul(6364136223846793005).wrapping_add(5);
            items[(x % 20) as usize] = base + 20 + (x >> 40) as u32 % 10;
            out.push((tid, Signature::from_items(NBITS, &items)));
        }
        out
    }

    #[test]
    fn near_duplicates_become_candidates() {
        let data = clustered_data(320);
        let lsh = MinHashLsh::build(NBITS, LshParams::default(), &data);
        // Query with an indexed member: its family (Jaccard ≈ 0.82) must
        // collide almost always.
        let mut found_family = 0usize;
        let mut family_total = 0usize;
        for probe in 0..16u64 {
            let cands: std::collections::HashSet<Tid> = lsh
                .candidates(&data[probe as usize].1)
                .into_iter()
                .collect();
            for (tid, _) in &data {
                if tid % 16 == probe % 16 && tid / 16 < 20 {
                    family_total += 1;
                    if cands.contains(tid) {
                        found_family += 1;
                    }
                }
            }
        }
        let recall = found_family as f64 / family_total as f64;
        assert!(recall > 0.9, "family recall {recall}");
    }

    #[test]
    fn distant_sets_rarely_collide() {
        let data = clustered_data(320);
        let lsh = MinHashLsh::build(NBITS, LshParams::default(), &data);
        let mut cross = 0usize;
        let mut total = 0usize;
        for probe in 0..8u64 {
            let cands: std::collections::HashSet<Tid> = lsh
                .candidates(&data[probe as usize].1)
                .into_iter()
                .collect();
            for (tid, _) in &data {
                if tid % 16 != probe % 16 {
                    total += 1;
                    if cands.contains(tid) {
                        cross += 1;
                    }
                }
            }
        }
        assert!(
            (cross as f64 / total as f64) < 0.05,
            "cross-family collisions {cross}/{total}"
        );
    }

    #[test]
    fn knn_results_are_true_distances_in_order() {
        let data = clustered_data(160);
        let lsh = MinHashLsh::build(NBITS, LshParams::default(), &data);
        let m = Metric::jaccard();
        let (got, stats) = lsh.knn(&data[3].1, 5, &m);
        assert!(!got.is_empty());
        assert_eq!(got[0].dist, 0.0, "the query itself is indexed");
        assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(stats.data_compared >= got.len() as u64);
    }

    #[test]
    fn range_returns_subset_of_exact_answer() {
        let data = clustered_data(160);
        let lsh = MinHashLsh::build(NBITS, LshParams::default(), &data);
        let m = Metric::jaccard();
        let q = &data[5].1;
        let (got, _) = lsh.range(q, 0.4, &m);
        let exact: std::collections::HashSet<Tid> = data
            .iter()
            .filter(|(_, s)| m.dist(q, s) <= 0.4)
            .map(|(t, _)| *t)
            .collect();
        assert!(!got.is_empty());
        for n in &got {
            assert!(exact.contains(&n.tid), "false positive {n:?}");
            assert!(n.dist <= 0.4);
        }
    }

    #[test]
    fn candidate_probability_s_curve() {
        let p = LshParams::default();
        assert!(p.candidate_probability(0.95) > 0.99);
        assert!(p.candidate_probability(0.1) < 0.01);
        let mid = p.candidate_probability(0.5);
        assert!((0.2..0.9).contains(&mid), "midpoint {mid}");
    }

    #[test]
    fn empty_index_and_empty_query() {
        let lsh = MinHashLsh::build(NBITS, LshParams::default(), &[]);
        assert!(lsh.is_empty());
        let q = Signature::from_items(NBITS, &[1, 2]);
        assert!(lsh.knn(&q, 3, &Metric::jaccard()).0.is_empty());
        // Empty query against a nonempty index.
        let data = clustered_data(32);
        let lsh = MinHashLsh::build(NBITS, LshParams::default(), &data);
        let (res, _) = lsh.knn(&Signature::empty(NBITS), 3, &Metric::jaccard());
        // All-sentinel vectors collide only with other empty sets; none
        // indexed here.
        assert!(res.is_empty());
    }

    #[test]
    fn registered_obs_records_queries() {
        let data = clustered_data(160);
        let mut lsh = MinHashLsh::build(NBITS, LshParams::default(), &data);
        let registry = sg_obs::Registry::new();
        lsh.register_obs(&registry, "minhash");
        let m = Metric::jaccard();
        let (_, s1) = lsh.knn(&data[3].1, 5, &m);
        let (_, s2) = lsh.range(&data[5].1, 0.4, &m);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("minhash.queries"), 2);
        assert_eq!(
            snap.counter("minhash.dist_computations"),
            s1.dist_computations + s2.dist_computations
        );
        // Memory-resident: no I/O recorded.
        assert_eq!(snap.counter("minhash.logical_reads"), 0);
    }
}
