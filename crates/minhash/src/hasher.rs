//! MinHash vectors: per-hash-function minima over a set's items.

use sg_sig::Signature;

/// A set's MinHash vector. Component `i` is the minimum of hash `i` over
/// the set's items (`u64::MAX` for the empty set).
pub type MinHashVector = Vec<u64>;

/// A family of `h` universal hash functions over item ids.
///
/// Each function is `(a·x + b) mod p` for a 61-bit Mersenne prime `p`,
/// with `a, b` drawn deterministically from the seed, so indexes built
/// from the same seed agree across processes.
#[derive(Debug, Clone)]
pub struct MinHasher {
    coeffs: Vec<(u64, u64)>,
}

/// 2^61 − 1, a Mersenne prime comfortably above any item id.
const P: u64 = (1 << 61) - 1;

impl MinHasher {
    /// Creates `h` hash functions from `seed`.
    pub fn new(h: usize, seed: u64) -> Self {
        assert!(h > 0, "need at least one hash function");
        // SplitMix64 over the seed: cheap, well-distributed, dependency-free.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let coeffs = (0..h)
            .map(|_| {
                let a = next() % (P - 1) + 1; // a ∈ [1, p−1]
                let b = next() % P;
                (a, b)
            })
            .collect();
        MinHasher { coeffs }
    }

    /// Number of hash functions `h`.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// `true` iff the family is empty (it never is; see [`MinHasher::new`]).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    #[inline]
    fn hash(a: u64, b: u64, x: u64) -> u64 {
        // (a*x + b) mod p without overflow: a,x < 2^61 so the product
        // needs 128 bits.
        let prod = (a as u128 * x as u128 + b as u128) % P as u128;
        prod as u64
    }

    /// The MinHash vector of a signature.
    pub fn vector(&self, sig: &Signature) -> MinHashVector {
        let mut v = vec![u64::MAX; self.coeffs.len()];
        for item in sig.ones() {
            for (slot, &(a, b)) in v.iter_mut().zip(&self.coeffs) {
                let h = Self::hash(a, b, item as u64);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        v
    }

    /// The fraction of agreeing components — an unbiased estimate of the
    /// Jaccard *similarity* of the underlying sets.
    pub fn jaccard_estimate(a: &MinHashVector, b: &MinHashVector) -> f64 {
        assert_eq!(a.len(), b.len(), "vectors from different families");
        if a.is_empty() {
            return 0.0;
        }
        let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
        agree as f64 / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sig::Metric;

    #[test]
    fn identical_sets_identical_vectors() {
        let mh = MinHasher::new(64, 7);
        let a = Signature::from_items(100, &[1, 5, 20, 99]);
        assert_eq!(mh.vector(&a), mh.vector(&a.clone()));
        assert_eq!(
            MinHasher::jaccard_estimate(&mh.vector(&a), &mh.vector(&a)),
            1.0
        );
    }

    #[test]
    fn disjoint_sets_rarely_agree() {
        let mh = MinHasher::new(128, 11);
        let a = Signature::from_iter(1000, 0..20u32);
        let b = Signature::from_iter(1000, 500..520u32);
        let est = MinHasher::jaccard_estimate(&mh.vector(&a), &mh.vector(&b));
        assert!(est < 0.1, "disjoint sets estimated at {est}");
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let mh = MinHasher::new(256, 3);
        let m = Metric::jaccard();
        // Overlapping ranges with known Jaccard values.
        for (a_hi, b_lo, b_hi) in [(30u32, 10u32, 40u32), (50, 25, 75), (20, 0, 20)] {
            let a = Signature::from_iter(1000, 0..a_hi);
            let b = Signature::from_iter(1000, b_lo..b_hi);
            let truth = 1.0 - m.dist(&a, &b);
            let est = MinHasher::jaccard_estimate(&mh.vector(&a), &mh.vector(&b));
            assert!(
                (est - truth).abs() < 0.12,
                "truth {truth:.3} vs estimate {est:.3}"
            );
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = MinHasher::new(32, 42);
        let b = MinHasher::new(32, 42);
        let sig = Signature::from_items(64, &[3, 9, 27]);
        assert_eq!(a.vector(&sig), b.vector(&sig));
        let c = MinHasher::new(32, 43);
        assert_ne!(a.vector(&sig), c.vector(&sig));
    }

    #[test]
    fn empty_set_vector_is_sentinel() {
        let mh = MinHasher::new(8, 1);
        let v = mh.vector(&Signature::empty(64));
        assert!(v.iter().all(|&x| x == u64::MAX));
    }
}
