//! [`SetIndex`] implementation: the inverted index through the unified
//! query API. Containment, subset and exact-match queries are its home
//! turf; k-NN and range work under plain Hamming (term-at-a-time
//! accumulation); mutation is unsupported — the postings are build-only.

use crate::InvertedIndex;
use sg_sig::{Metric, MetricKind, Signature};
use sg_tree::{
    QueryOptions, QueryOutput, QueryRequest, QueryResponse, SetIndex, SgError, SgResult, Tid,
};

/// Score-by-accumulation distances hold only for plain Hamming.
fn plain_hamming(metric: &Metric) -> bool {
    (metric.kind(), metric.fixed_dim()) == (MetricKind::Hamming, None)
}

fn check_nbits(expected: u32, q: &Signature) -> SgResult<()> {
    if q.nbits() != expected {
        return Err(SgError::invalid(format!(
            "query signature has {} bits; index expects {}",
            q.nbits(),
            expected
        )));
    }
    Ok(())
}

impl SetIndex for InvertedIndex {
    fn name(&self) -> &'static str {
        "inverted"
    }

    fn len(&self) -> u64 {
        InvertedIndex::len(self)
    }

    fn nbits(&self) -> u32 {
        InvertedIndex::nbits(self)
    }

    fn insert(&mut self, _tid: Tid, _sig: &Signature) -> SgResult<()> {
        Err(SgError::Unsupported(
            "insert on the build-only inverted index",
        ))
    }

    fn delete(&mut self, _tid: Tid, _sig: &Signature) -> SgResult<bool> {
        Err(SgError::Unsupported(
            "delete on the build-only inverted index",
        ))
    }

    fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse> {
        check_nbits(InvertedIndex::nbits(self), req.signature())?;
        if opts.expired() {
            return Err(SgError::Cancelled);
        }
        let (output, stats) = match req {
            QueryRequest::Knn { q, k, metric } => {
                if !plain_hamming(metric) {
                    return Err(SgError::Unsupported(
                        "the inverted index scores k-NN only under plain Hamming",
                    ));
                }
                let (r, s) = self.knn(q, *k, metric);
                (QueryOutput::Neighbors(r), s)
            }
            QueryRequest::Range { q, eps, metric } => {
                if !plain_hamming(metric) {
                    return Err(SgError::Unsupported(
                        "the inverted index scores range only under plain Hamming",
                    ));
                }
                let (r, s) = self.range(q, *eps, metric);
                (QueryOutput::Neighbors(r), s)
            }
            QueryRequest::Containing { q } => {
                let (r, s) = self.containing(q);
                (QueryOutput::Tids(r), s)
            }
            QueryRequest::ContainedIn { q } => {
                let (r, s) = self.contained_in(q);
                (QueryOutput::Tids(r), s)
            }
            QueryRequest::Exact { q } => {
                let (r, s) = self.exact(q);
                (QueryOutput::Tids(r), s)
            }
        };
        Ok(QueryResponse::single(output, stats))
    }
}
