//! Property-based tests: the inverted index must agree with brute force
//! on every query type for arbitrary datasets.

use crate::InvertedIndex;
use proptest::prelude::*;
use sg_pager::MemStore;
use sg_sig::{Metric, Signature};
use sg_tree::Tid;
use std::sync::Arc;

const NBITS: u32 = 64;

fn arb_dataset() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0..NBITS, 0..8), 1..80)
}

fn build(data: &[Vec<u32>]) -> (InvertedIndex, Vec<(Tid, Signature)>) {
    let pairs: Vec<(Tid, Signature)> = data
        .iter()
        .enumerate()
        .map(|(tid, t)| (tid as Tid, Signature::from_items(NBITS, t)))
        .collect();
    let idx = InvertedIndex::build(Arc::new(MemStore::new(128)), NBITS, 32, &pairs);
    (idx, pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_exact(data in arb_dataset(), query in prop::collection::vec(0..NBITS, 0..8), k in 1usize..12) {
        let (idx, pairs) = build(&data);
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let (got, _) = idx.knn(&q, k, &m);
        let mut want: Vec<f64> = pairs.iter().map(|(_, s)| m.dist(&q, s)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.truncate(k);
        prop_assert_eq!(got.iter().map(|n| n.dist).collect::<Vec<_>>(), want);
    }

    #[test]
    fn range_exact(data in arb_dataset(), query in prop::collection::vec(0..NBITS, 0..8), eps in 0u32..10) {
        let (idx, pairs) = build(&data);
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let (got, _) = idx.range(&q, eps as f64, &m);
        let want = pairs.iter().filter(|(_, s)| m.dist(&q, s) <= eps as f64).count();
        prop_assert_eq!(got.len(), want);
    }

    #[test]
    fn containment_exact(data in arb_dataset(), query in prop::collection::vec(0..NBITS, 0..5)) {
        let (idx, pairs) = build(&data);
        let q = Signature::from_items(NBITS, &query);
        let (sup, _) = idx.containing(&q);
        let want_sup: Vec<Tid> = pairs.iter().filter(|(_, s)| s.contains(&q)).map(|(t, _)| *t).collect();
        prop_assert_eq!(sup, want_sup);
        let (sub, _) = idx.contained_in(&q);
        let want_sub: Vec<Tid> = pairs.iter().filter(|(_, s)| q.contains(s)).map(|(t, _)| *t).collect();
        prop_assert_eq!(sub, want_sub);
        let (ex, _) = idx.exact(&q);
        let want_ex: Vec<Tid> = pairs.iter().filter(|(_, s)| *s == q).map(|(t, _)| *t).collect();
        prop_assert_eq!(ex, want_ex);
    }
}
