//! The [`InvertedIndex`] implementation: paged posting lists plus the
//! query algorithms.

use sg_obs::{IndexObs, PoolObs, Registry};
use sg_pager::{BufferPool, PageId, PageStore};
use sg_sig::{Metric, MetricKind, Signature};
use sg_tree::{Neighbor, QueryStats, Tid};
use std::collections::HashMap;
use std::sync::Arc;

/// Bytes per posting record (a tid).
const REC: usize = 8;
/// Page header: record count (u16).
const PAGE_HEADER: usize = 2;

/// One item's posting list: its pages and total count.
#[derive(Debug, Default, Clone)]
struct PostingList {
    pages: Vec<PageId>,
    count: u64,
}

/// An inverted-list index over a fixed item universe.
///
/// The per-item page directory and the by-size transaction directory are
/// memory-resident (as an IR system's dictionary would be); the postings
/// themselves live on pages behind a buffer pool.
pub struct InvertedIndex {
    pool: Arc<BufferPool>,
    nbits: u32,
    postings: Vec<PostingList>,
    /// `(|t|, tid)` for every transaction, ascending — the "untouched
    /// candidates" directory for similarity queries.
    by_size: Vec<(u32, Tid)>,
    /// `tid → |t|` for overlap-to-distance conversion.
    sizes: HashMap<Tid, u32>,
    /// Transactions with no items at all (never appear in any posting).
    empties: Vec<Tid>,
    len: u64,
    /// Optional metrics instruments.
    obs: Option<Arc<IndexObs>>,
}

impl InvertedIndex {
    /// Builds the index over `data`, packing each item's postings onto
    /// pages of `store`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate tids (postings are sets of transactions) or on
    /// a signature from a different universe.
    pub fn build(
        store: Arc<dyn PageStore>,
        nbits: u32,
        pool_frames: usize,
        data: &[(Tid, Signature)],
    ) -> InvertedIndex {
        let pool = Arc::new(BufferPool::new(store, pool_frames));
        let page_size = pool.page_size();
        assert!(
            page_size >= PAGE_HEADER + REC,
            "page too small for a posting"
        );
        let per_page = (page_size - PAGE_HEADER) / REC;

        // Gather per-item tid lists in memory, then page them out sorted.
        let mut lists: Vec<Vec<Tid>> = vec![Vec::new(); nbits as usize];
        let mut sizes: HashMap<Tid, u32> = HashMap::with_capacity(data.len());
        let mut empties = Vec::new();
        for (tid, sig) in data {
            assert_eq!(sig.nbits(), nbits, "signature universe mismatch");
            assert!(
                sizes.insert(*tid, sig.count()).is_none(),
                "duplicate tid {tid}"
            );
            if sig.is_empty() {
                empties.push(*tid);
            }
            for item in sig.ones() {
                lists[item as usize].push(*tid);
            }
        }
        let mut postings = Vec::with_capacity(lists.len());
        for mut list in lists {
            list.sort_unstable();
            let mut pl = PostingList {
                pages: Vec::new(),
                count: list.len() as u64,
            };
            for chunk in list.chunks(per_page) {
                let mut page = vec![0u8; page_size];
                page[0..2].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                for (i, tid) in chunk.iter().enumerate() {
                    let off = PAGE_HEADER + i * REC;
                    page[off..off + REC].copy_from_slice(&tid.to_le_bytes());
                }
                let id = pool.allocate();
                pool.write(id, &page);
                pl.pages.push(id);
            }
            postings.push(pl);
        }
        let mut by_size: Vec<(u32, Tid)> = sizes.iter().map(|(&t, &s)| (s, t)).collect();
        by_size.sort_unstable();
        empties.sort_unstable();
        InvertedIndex {
            pool,
            nbits,
            postings,
            by_size,
            sizes,
            len: data.len() as u64,
            empties,
            obs: None,
        }
    }

    /// Number of indexed transactions.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The item-universe size.
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// Total posting pages on disk.
    pub fn page_count(&self) -> usize {
        self.postings.iter().map(|p| p.pages.len()).sum()
    }

    /// The buffer pool (I/O statistics, cache control).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Registers instruments under `<prefix>.*` / `<prefix>.pool.*` in
    /// `registry` and attaches them; queries record into them from then on.
    pub fn register_obs(&mut self, registry: &Registry, prefix: &str) -> Arc<IndexObs> {
        let obs = IndexObs::register(registry, prefix);
        self.pool
            .attach_obs(PoolObs::register(registry, &format!("{prefix}.pool")));
        self.obs = Some(obs.clone());
        obs
    }

    /// Records one finished query into the attached instruments, if any.
    fn observe(&self, stats: &QueryStats, start: Option<std::time::Instant>) {
        if let (Some(obs), Some(start)) = (self.obs.as_ref(), start) {
            obs.observe_query(
                stats.nodes_accessed,
                stats.data_compared,
                stats.dist_computations,
                stats.io.logical_reads,
                stats.io.physical_reads,
                start.elapsed().as_nanos() as u64,
            );
        }
    }

    /// Document frequency of an item.
    pub fn posting_len(&self, item: u32) -> u64 {
        self.postings[item as usize].count
    }

    /// Reads one item's posting list (sorted tids), counting page I/O.
    fn read_postings(&self, item: u32, stats: &mut QueryStats) -> Vec<Tid> {
        let pl = &self.postings[item as usize];
        let mut out = Vec::with_capacity(pl.count as usize);
        for &pid in &pl.pages {
            stats.nodes_accessed += 1;
            let page = self.pool.read(pid);
            let count = u16::from_le_bytes([page[0], page[1]]) as usize;
            for i in 0..count {
                let off = PAGE_HEADER + i * REC;
                out.push(Tid::from_le_bytes(
                    page[off..off + REC].try_into().expect("page layout"),
                ));
            }
        }
        out
    }

    /// Per-candidate overlap counts with `q` (touched candidates only).
    fn overlaps(&self, q: &Signature, stats: &mut QueryStats) -> HashMap<Tid, u32> {
        let mut ov: HashMap<Tid, u32> = HashMap::new();
        for item in q.ones() {
            for tid in self.read_postings(item, stats) {
                *ov.entry(tid).or_insert(0) += 1;
            }
        }
        ov
    }

    fn assert_hamming(metric: &Metric) {
        assert_eq!(
            (metric.kind(), metric.fixed_dim()),
            (MetricKind::Hamming, None),
            "the inverted index scores overlaps under the Hamming metric"
        );
    }

    /// All `tid` with `t ⊇ q`, by posting intersection (rarest item
    /// first). An empty query matches everything.
    pub fn containing(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let io_before = self.pool.stats().snapshot();
        let mut stats = QueryStats::default();
        let mut items: Vec<u32> = q.ones().collect();
        if items.is_empty() {
            let mut all: Vec<Tid> = self.by_size.iter().map(|&(_, t)| t).collect();
            all.sort_unstable();
            self.observe(&stats, start);
            return (all, stats);
        }
        items.sort_unstable_by_key(|&i| self.posting_len(i));
        let mut acc = self.read_postings(items[0], &mut stats);
        for &item in &items[1..] {
            if acc.is_empty() {
                break;
            }
            let next = self.read_postings(item, &mut stats);
            acc = intersect_sorted(&acc, &next);
        }
        stats.data_compared = acc.len() as u64;
        stats.io = self.pool.stats().snapshot().since(&io_before);
        self.observe(&stats, start);
        (acc, stats)
    }

    /// Subset-query kernel shared by [`contained_in`](Self::contained_in)
    /// and [`exact`](Self::exact) (so `exact` records as one query).
    fn contained_in_inner(&self, q: &Signature, stats: &mut QueryStats) -> Vec<Tid> {
        let ov = self.overlaps(q, stats);
        stats.data_compared = ov.len() as u64;
        let mut out: Vec<Tid> = ov
            .into_iter()
            .filter(|(tid, o)| self.sizes[tid] == *o)
            .map(|(tid, _)| tid)
            .collect();
        out.extend_from_slice(&self.empties);
        out.sort_unstable();
        out
    }

    /// All `tid` with `t ⊆ q`: touched candidates whose overlap equals
    /// their size, plus the empty transactions.
    pub fn contained_in(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let io_before = self.pool.stats().snapshot();
        let mut stats = QueryStats::default();
        let out = self.contained_in_inner(q, &mut stats);
        stats.io = self.pool.stats().snapshot().since(&io_before);
        self.observe(&stats, start);
        (out, stats)
    }

    /// All `tid` with `t = q` exactly.
    pub fn exact(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let io_before = self.pool.stats().snapshot();
        let mut stats = QueryStats::default();
        let subset = self.contained_in_inner(q, &mut stats);
        let want = q.count();
        let out: Vec<Tid> = subset
            .into_iter()
            .filter(|tid| self.sizes[tid] == want)
            .collect();
        stats.data_compared += out.len() as u64;
        stats.io = self.pool.stats().snapshot().since(&io_before);
        self.observe(&stats, start);
        (out, stats)
    }

    /// Exact `k`-NN under Hamming, by term-at-a-time accumulation plus
    /// the by-size directory for untouched transactions.
    pub fn knn(&self, q: &Signature, k: usize, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        Self::assert_hamming(metric);
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let io_before = self.pool.stats().snapshot();
        let mut stats = QueryStats::default();
        let mut out: Vec<Neighbor> = Vec::new();
        if k > 0 && !self.is_empty() {
            let cq = q.count() as f64;
            let ov = self.overlaps(q, &mut stats);
            stats.data_compared = ov.len() as u64;
            stats.dist_computations = ov.len() as u64;
            for (&tid, &o) in &ov {
                out.push(Neighbor {
                    tid,
                    dist: cq + self.sizes[&tid] as f64 - 2.0 * o as f64,
                });
            }
            // Untouched transactions: dist = |q| + |t|; the candidates are
            // the k smallest by size not already touched.
            let mut taken = 0usize;
            for &(size, tid) in &self.by_size {
                if taken == k {
                    break;
                }
                if ov.contains_key(&tid) {
                    continue;
                }
                out.push(Neighbor {
                    tid,
                    dist: cq + size as f64,
                });
                taken += 1;
            }
            out.sort_by(|a, b| {
                a.dist
                    .partial_cmp(&b.dist)
                    .expect("finite")
                    .then(a.tid.cmp(&b.tid))
            });
            out.truncate(k);
        }
        stats.io = self.pool.stats().snapshot().since(&io_before);
        self.observe(&stats, start);
        (out, stats)
    }

    /// Nearest neighbor (`k = 1`).
    pub fn nn(&self, q: &Signature, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.knn(q, 1, metric)
    }

    /// Exact similarity range query under Hamming.
    pub fn range(&self, q: &Signature, eps: f64, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        Self::assert_hamming(metric);
        let start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let io_before = self.pool.stats().snapshot();
        let mut stats = QueryStats::default();
        let cq = q.count() as f64;
        let ov = self.overlaps(q, &mut stats);
        stats.data_compared = ov.len() as u64;
        stats.dist_computations = ov.len() as u64;
        let mut out: Vec<Neighbor> = ov
            .iter()
            .filter_map(|(&tid, &o)| {
                let d = cq + self.sizes[&tid] as f64 - 2.0 * o as f64;
                (d <= eps).then_some(Neighbor { tid, dist: d })
            })
            .collect();
        // Untouched: dist = |q| + |t| ≤ eps ⟺ |t| ≤ eps − |q|.
        for &(size, tid) in &self.by_size {
            let d = cq + size as f64;
            if d > eps {
                break;
            }
            if !ov.contains_key(&tid) {
                out.push(Neighbor { tid, dist: d });
            }
        }
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite")
                .then(a.tid.cmp(&b.tid))
        });
        stats.io = self.pool.stats().snapshot().since(&io_before);
        self.observe(&stats, start);
        (out, stats)
    }
}

/// Intersection of two ascending tid slices.
fn intersect_sorted(a: &[Tid], b: &[Tid]) -> Vec<Tid> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_pager::MemStore;

    const NBITS: u32 = 80;

    fn make_data(n: u64) -> Vec<(Tid, Signature)> {
        let mut out = Vec::new();
        let mut x = 0xA5A5_5A5A_1234_5678u64;
        for tid in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let len = (x >> 60) as usize % 6; // includes empty transactions
            let mut items = Vec::new();
            let mut y = x;
            for _ in 0..len {
                y = y.wrapping_mul(6364136223846793005).wrapping_add(97);
                items.push(((y >> 40) % NBITS as u64) as u32);
            }
            out.push((tid, Signature::from_items(NBITS, &items)));
        }
        out
    }

    fn build(data: &[(Tid, Signature)]) -> InvertedIndex {
        InvertedIndex::build(Arc::new(MemStore::new(128)), NBITS, 64, data)
    }

    fn queries() -> Vec<Signature> {
        let mut out = Vec::new();
        let mut x = 0x0F0F_F0F0_9876_5432u64;
        for _ in 0..15 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            let len = 1 + ((x >> 33) % 5) as usize;
            let mut items = Vec::new();
            let mut y = x;
            for _ in 0..len {
                y = y.wrapping_mul(6364136223846793005).wrapping_add(13);
                items.push(((y >> 40) % NBITS as u64) as u32);
            }
            out.push(Signature::from_items(NBITS, &items));
        }
        out
    }

    #[test]
    fn containment_matches_brute_force() {
        let data = make_data(300);
        let idx = build(&data);
        for q in queries() {
            let (got, _) = idx.containing(&q);
            let want: Vec<Tid> = data
                .iter()
                .filter(|(_, s)| s.contains(&q))
                .map(|(t, _)| *t)
                .collect();
            assert_eq!(got, want, "q={:?}", q.items());
        }
    }

    #[test]
    fn subset_matches_brute_force_including_empties() {
        let data = make_data(300);
        let idx = build(&data);
        for q in queries() {
            let (got, _) = idx.contained_in(&q);
            let want: Vec<Tid> = data
                .iter()
                .filter(|(_, s)| q.contains(s))
                .map(|(t, _)| *t)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn exact_matches_brute_force() {
        let data = make_data(200);
        let idx = build(&data);
        for (tid, sig) in data.iter().take(10) {
            let (got, _) = idx.exact(sig);
            let want: Vec<Tid> = data
                .iter()
                .filter(|(_, s)| s == sig)
                .map(|(t, _)| *t)
                .collect();
            assert!(got.contains(tid));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn knn_matches_brute_force_with_untouched_candidates() {
        let data = make_data(250);
        let idx = build(&data);
        let m = Metric::hamming();
        for q in queries() {
            for k in [1usize, 5, 30] {
                let (got, _) = idx.knn(&q, k, &m);
                let mut want: Vec<f64> = data.iter().map(|(_, s)| m.dist(&q, s)).collect();
                want.sort_by(|a, b| a.partial_cmp(b).unwrap());
                want.truncate(k);
                let gd: Vec<f64> = got.iter().map(|n| n.dist).collect();
                assert_eq!(gd, want, "k={k} q={:?}", q.items());
            }
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let data = make_data(250);
        let idx = build(&data);
        let m = Metric::hamming();
        for q in queries() {
            for eps in [0.0, 2.0, 6.0] {
                let (got, _) = idx.range(&q, eps, &m);
                let want = data.iter().filter(|(_, s)| m.dist(&q, s) <= eps).count();
                assert_eq!(got.len(), want, "eps={eps}");
            }
        }
    }

    #[test]
    fn containment_reads_only_query_postings() {
        let data = make_data(400);
        let idx = build(&data);
        let q = Signature::from_items(NBITS, &[3, 40]);
        let (_, stats) = idx.containing(&q);
        let expected_pages: u64 = [3u32, 40]
            .iter()
            .map(|&i| idx.postings[i as usize].pages.len() as u64)
            .sum();
        assert!(stats.nodes_accessed <= expected_pages);
    }

    #[test]
    fn empty_query_containment_returns_all() {
        let data = make_data(50);
        let idx = build(&data);
        let (got, _) = idx.containing(&Signature::empty(NBITS));
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn empty_index() {
        let idx = build(&[]);
        assert!(idx.is_empty());
        let q = Signature::from_items(NBITS, &[1]);
        assert!(idx.knn(&q, 3, &Metric::hamming()).0.is_empty());
        assert!(idx.containing(&q).0.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate tid")]
    fn duplicate_tids_rejected() {
        let s = Signature::from_items(NBITS, &[1]);
        build(&[(1, s.clone()), (1, s)]);
    }

    #[test]
    #[should_panic(expected = "Hamming")]
    fn jaccard_rejected() {
        let data = make_data(10);
        let idx = build(&data);
        let _ = idx.knn(&data[0].1, 1, &Metric::jaccard());
    }

    #[test]
    fn registered_obs_records_every_query_kind() {
        let data = make_data(200);
        let mut idx = build(&data);
        let registry = sg_obs::Registry::new();
        idx.register_obs(&registry, "inverted");
        let io0 = idx.pool().stats().snapshot();
        let q = &queries()[0];
        let m = Metric::hamming();
        let mut expect_nodes = 0u64;
        for stats in [
            idx.containing(q).1,
            idx.contained_in(q).1,
            idx.exact(q).1,
            idx.knn(q, 5, &m).1,
            idx.range(q, 4.0, &m).1,
        ] {
            expect_nodes += stats.nodes_accessed;
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("inverted.queries"), 5);
        assert_eq!(snap.counter("inverted.nodes_accessed"), expect_nodes);
        let io = idx.pool().stats().snapshot().since(&io0);
        assert_eq!(
            snap.counter("inverted.pool.hits") + snap.counter("inverted.pool.misses"),
            io.logical_reads
        );
    }
}
