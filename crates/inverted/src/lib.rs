//! # Inverted-list index over set data
//!
//! The classic postings structure: for every item, a sorted list of the
//! ids of the transactions containing it. Helmer & Moerkotte's study
//! (cited as \[14\] by the SG-tree paper) found inverted lists the best
//! structure for *subset and equality* queries on set-valued attributes —
//! the very query types the paper concedes to them — while the SG-tree
//! targets *similarity* search. This crate provides the exact comparator
//! so the trade-off can be measured instead of asserted (see the
//! `repro ablate` experiment `ablate_inverted`).
//!
//! Every query here is **exact**. Costs are reported with the same
//! [`sg_tree::QueryStats`] currency as the SG-tree: posting pages read through a
//! buffer pool count as random I/Os, and `data_compared` counts candidate
//! transactions whose distance was actually evaluated.
//!
//! ## Algorithms
//!
//! * **Containment** (`t ⊇ q`): intersect the sorted postings of `q`'s
//!   items, rarest first.
//! * **Subset** (`t ⊆ q`): accumulate per-candidate overlap counts over
//!   `q`'s postings; `t ⊆ q ⟺ overlap(t) = |t|` (a transaction with no
//!   item in `q` can only qualify if empty — empty transactions are
//!   tracked separately).
//! * **k-NN / range under Hamming**: score-by-accumulation. For any `t`,
//!   `dist(q,t) = |q| + |t| − 2·overlap`, so candidates touched by the
//!   postings get exact distances; *untouched* transactions have
//!   `overlap = 0` and distance `|q| + |t|`, handled exactly by keeping a
//!   by-size directory of all transactions. This is term-at-a-time
//!   evaluation, O(Σ posting lengths of q's items).

mod postings;
mod setindex;

pub use postings::InvertedIndex;

#[cfg(test)]
mod proptests;
