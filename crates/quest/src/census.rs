//! A CENSUS-like categorical data generator.
//!
//! The paper's real dataset is a cleaned extract of the 1994/95 US Current
//! Population Survey: **36 categorical attributes** with domain sizes
//! between **2 and 53** and **525 values in total**; 200K tuples are indexed
//! and queries are drawn from a held-out 100K sample. That extract is not
//! available offline, so this module generates a synthetic stand-in with the
//! same shape (see DESIGN.md §5):
//!
//! * the schema reproduces the stated statistics exactly (36 domains, sizes
//!   in `[2, 53]`, summing to 525);
//! * marginal value frequencies are Zipf-skewed, as census categories are
//!   (most people cluster in a few values of e.g. *class of worker*);
//! * tuples are drawn from a mixture of correlated *profiles*
//!   (demographic-like archetypes), giving the clusteredness that lets a
//!   similarity index prune — the property the paper credits for the
//!   SG-tree's strong CENSUS results.
//!
//! Every tuple takes exactly one value per attribute, so its signature has
//! area exactly 36 — the fixed-dimensionality property §6 exploits.

use crate::dist::Zipf;
use crate::{Dataset, Transaction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A categorical schema: the attributes' domain sizes, mapped onto a global
/// item universe where attribute `a`'s values occupy the id range
/// `[offset(a), offset(a) + domain_size(a))`.
#[derive(Debug, Clone)]
pub struct Schema {
    sizes: Vec<u32>,
    offsets: Vec<u32>,
}

impl Schema {
    /// Builds a schema from explicit domain sizes.
    pub fn new(sizes: Vec<u32>) -> Self {
        assert!(!sizes.is_empty());
        assert!(sizes.iter().all(|&s| s >= 1));
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        Schema { sizes, offsets }
    }

    /// The 36-attribute schema matching the paper's CENSUS statistics:
    /// domain sizes span 2–53 and sum to 525.
    pub fn census() -> Self {
        let sizes: Vec<u32> = vec![
            2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 12, 12, 16, 18, 19,
            20, 21, 24, 30, 36, 44, 50, 52, 53,
        ];
        debug_assert_eq!(sizes.iter().sum::<u32>(), 525);
        Schema::new(sizes)
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.sizes.len()
    }

    /// Domain size of attribute `a`.
    pub fn domain_size(&self, a: usize) -> u32 {
        self.sizes[a]
    }

    /// First global item id of attribute `a`'s value range.
    pub fn offset(&self, a: usize) -> u32 {
        self.offsets[a]
    }

    /// Total number of values = size of the global item universe.
    pub fn n_values(&self) -> u32 {
        self.offsets.last().unwrap() + self.sizes.last().unwrap()
    }

    /// Maps `(attribute, value)` to the global item id.
    pub fn item(&self, a: usize, value: u32) -> u32 {
        assert!(value < self.sizes[a]);
        self.offsets[a] + value
    }

    /// Maps a global item id back to `(attribute, value)`.
    pub fn attr_of(&self, item: u32) -> (usize, u32) {
        let a = match self.offsets.binary_search(&item) {
            Ok(a) => a,
            Err(a) => a - 1,
        };
        (a, item - self.offsets[a])
    }
}

/// Parameters of the mixture-of-profiles tuple generator.
#[derive(Debug, Clone)]
pub struct CensusParams {
    /// Number of latent profiles (archetypes).
    pub n_profiles: usize,
    /// Probability that an attribute takes its profile's preferred value
    /// rather than an independent draw from the skewed marginal.
    pub adherence: f64,
    /// Zipf skew of the marginal value distributions.
    pub value_skew: f64,
    /// Zipf skew of the profile popularity distribution.
    pub profile_skew: f64,
}

impl Default for CensusParams {
    fn default() -> Self {
        // Tuned so the synthetic data's clusteredness matches what the
        // paper reports for the real extract: census columns are heavily
        // dominated by a few values (employment status, class of worker,
        // citizenship…), so marginals get a strong Zipf skew and tuples
        // adhere closely to their demographic profile. The paper's Table 1
        // level-1 entry areas (~75–90 bits of 525) and its near-zero NN
        // distances for most queries only arise at this skew level.
        CensusParams {
            n_profiles: 60,
            adherence: 0.85,
            value_skew: 1.8,
            profile_skew: 1.0,
        }
    }
}

/// The generator: a schema plus the drawn profiles and marginals. Reused to
/// draw both the indexed dataset and the held-out query sample.
pub struct CensusGenerator {
    schema: Schema,
    params: CensusParams,
    /// `profiles[p][a]` = preferred value of attribute `a` under profile `p`.
    profiles: Vec<Vec<u32>>,
    /// Per-attribute marginal value distribution (over a shuffled value
    /// order, so "popular" values differ across attributes).
    marginals: Vec<Zipf>,
    value_order: Vec<Vec<u32>>,
    profile_dist: Zipf,
}

impl CensusGenerator {
    /// Draws profiles and marginals from `seed`.
    pub fn new(schema: Schema, params: CensusParams, seed: u64) -> Self {
        assert!(params.n_profiles > 0);
        assert!((0.0..=1.0).contains(&params.adherence));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4345_4e53_5553_3936); // "CENSUS96"
        let marginals: Vec<Zipf> = (0..schema.n_attrs())
            .map(|a| Zipf::new(schema.domain_size(a) as usize, params.value_skew))
            .collect();
        let value_order: Vec<Vec<u32>> = (0..schema.n_attrs())
            .map(|a| {
                let mut vals: Vec<u32> = (0..schema.domain_size(a)).collect();
                // Fisher–Yates so each attribute has its own popular values.
                for i in (1..vals.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    vals.swap(i, j);
                }
                vals
            })
            .collect();
        let profiles: Vec<Vec<u32>> = (0..params.n_profiles)
            .map(|_| {
                (0..schema.n_attrs())
                    .map(|a| value_order[a][marginals[a].sample(&mut rng)])
                    .collect()
            })
            .collect();
        let profile_dist = Zipf::new(params.n_profiles, params.profile_skew);
        CensusGenerator {
            schema,
            params,
            profiles,
            marginals,
            value_order,
            profile_dist,
        }
    }

    /// The generator's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Generates one tuple as global item ids (one per attribute, sorted).
    pub fn tuple(&self, rng: &mut impl Rng) -> Transaction {
        let p = self.profile_dist.sample(rng);
        let mut items = Vec::with_capacity(self.schema.n_attrs());
        for a in 0..self.schema.n_attrs() {
            let value = if rng.gen::<f64>() < self.params.adherence {
                self.profiles[p][a]
            } else {
                self.value_order[a][self.marginals[a].sample(rng)]
            };
            items.push(self.schema.item(a, value));
        }
        items
    }

    /// Generates `n` tuples from `seed` (the indexed dataset).
    pub fn dataset(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4345_4e44_4154_4121); // "CENDATA!"
        let transactions = (0..n).map(|_| self.tuple(&mut rng)).collect();
        Dataset {
            n_items: self.schema.n_values(),
            transactions,
        }
    }

    /// Generates `n` query tuples from a stream disjoint from
    /// [`CensusGenerator::dataset`]'s — the paper's held-out 100K sample.
    pub fn queries(&self, n: usize, seed: u64) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4345_4e51_5552_5921); // "CENQURY!"
        (0..n).map(|_| self.tuple(&mut rng)).collect()
    }
}

/// Convenience: the paper-shaped CENSUS stand-in with default parameters.
pub fn generate(n: usize, seed: u64) -> Dataset {
    CensusGenerator::new(Schema::census(), CensusParams::default(), seed).dataset(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_schema_matches_paper_statistics() {
        let s = Schema::census();
        assert_eq!(s.n_attrs(), 36);
        assert_eq!(s.n_values(), 525);
        assert!(s.sizes.iter().all(|&z| (2..=53).contains(&z)));
        assert_eq!(*s.sizes.iter().min().unwrap(), 2);
        assert_eq!(*s.sizes.iter().max().unwrap(), 53);
    }

    #[test]
    fn item_mapping_roundtrips() {
        let s = Schema::census();
        for a in 0..s.n_attrs() {
            for v in [0, s.domain_size(a) - 1] {
                let item = s.item(a, v);
                assert_eq!(s.attr_of(item), (a, v));
            }
        }
        assert_eq!(s.item(0, 0), 0);
    }

    #[test]
    fn tuples_have_exactly_one_value_per_attribute() {
        let g = CensusGenerator::new(Schema::census(), CensusParams::default(), 1);
        let ds = g.dataset(500, 1);
        for t in &ds.transactions {
            assert_eq!(t.len(), 36);
            let mut attrs: Vec<usize> = t.iter().map(|&i| g.schema().attr_of(i).0).collect();
            attrs.dedup();
            assert_eq!(attrs.len(), 36, "duplicate attribute in {t:?}");
            assert!(t.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = generate(100, 5);
        let b = generate(100, 5);
        assert_eq!(a.transactions, b.transactions);
        assert_ne!(a.transactions, generate(100, 6).transactions);
    }

    #[test]
    fn data_is_clustered_not_uniform() {
        // The profile mixture must produce tuples substantially closer to
        // their nearest neighbor than independent per-attribute draws
        // would be.
        use sg_sig::{Metric, Signature};
        let g = CensusGenerator::new(Schema::census(), CensusParams::default(), 3);
        let ds = g.dataset(400, 3);
        let sigs: Vec<Signature> = ds.signatures();
        let m = Metric::hamming();
        let mut nn_total = 0.0;
        for a in 0..100 {
            let mut best = f64::INFINITY;
            for b in 0..sigs.len() {
                if a != b {
                    best = best.min(m.dist(&sigs[a], &sigs[b]));
                }
            }
            nn_total += best;
        }
        let mean_nn = nn_total / 100.0;
        // Max possible Hamming distance between two 36-value tuples is 72.
        assert!(
            mean_nn < 30.0,
            "tuples should cluster (mean NN distance {mean_nn})"
        );
    }

    #[test]
    fn queries_disjoint_stream_same_shape() {
        let g = CensusGenerator::new(Schema::census(), CensusParams::default(), 9);
        let ds = g.dataset(200, 9);
        let qs = g.queries(200, 9);
        assert_ne!(ds.transactions, qs);
        for q in &qs {
            assert_eq!(q.len(), 36);
        }
    }

    #[test]
    fn marginals_are_skewed() {
        let g = CensusGenerator::new(Schema::census(), CensusParams::default(), 21);
        let ds = g.dataset(3000, 21);
        // For the largest attribute, the most frequent value should be far
        // above the uniform share.
        let a = 35; // size 53 domain
        let mut counts = vec![0u32; g.schema().domain_size(a) as usize];
        for t in &ds.transactions {
            let (attr, v) = g.schema().attr_of(t[a]);
            assert_eq!(attr, a);
            counts[v as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64 / 3000.0;
        assert!(max > 3.0 / 53.0, "skew too weak: top share {max}");
    }
}
