//! The Agrawal–Srikant synthetic market-basket generator (VLDB'94 §2.4.3),
//! as used by the paper's §5.1.
//!
//! The generator first draws a pool of *maximal potentially large itemsets*
//! (the paper's "large itemsets"): correlated item groups whose sizes are
//! Poisson with mean `I`. Transactions are then assembled from weighted
//! picks out of that pool, each pick corrupted (truncated) to model partial
//! purchases, until the Poisson-distributed transaction size (mean `T`) is
//! reached. Datasets are named `T{T}.I{I}.D{D}`.

use crate::dist::{exponential, normal, poisson, WeightedTable};
use crate::{Dataset, Transaction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the market-basket generator.
///
/// Defaults follow the original paper: `N = 1000` items and `|L| = 2000`
/// potentially large itemsets; `T` and `I` are the per-experiment knobs.
#[derive(Debug, Clone)]
pub struct BasketParams {
    /// Item-universe size `N`.
    pub n_items: u32,
    /// Number of potentially large itemsets `|L|` in the pool.
    pub n_patterns: usize,
    /// Mean size `I` of the potentially large itemsets.
    pub avg_pattern_len: f64,
    /// Mean transaction size `T`.
    pub avg_trans_len: f64,
    /// Mean of the exponentially distributed fraction of items a pattern
    /// shares with its predecessor (the original's `correlation = 0.5`).
    pub correlation: f64,
    /// Mean of the per-pattern corruption level (normal, original 0.5).
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level (original 0.1).
    pub corruption_dev: f64,
}

impl BasketParams {
    /// The standard `T{t}.I{i}` configuration over 1000 items.
    ///
    /// The SG-tree paper does not state the pattern-pool size `|L|`
    /// (Agrawal–Srikant's own default is 2000). `|L| = 200` is calibrated
    /// so the generated data reproduces the paper's reported
    /// characteristics — in particular Figure 12's nearest-neighbor
    /// distance distribution on `T30.I18.D200K` (queries spread over the
    /// buckets 0 / 1–3 / 4–10 / 11–20 / >20) and the §5.3 observation that
    /// the SG-table is competitive on `T10.I6` while the SG-tree wins
    /// decisively when `T` and `I` are large. With `|L| = 2000` the
    /// transactions are so diffuse that nearest neighbors sit beyond
    /// distance 25 and neither index can prune, contradicting every plot
    /// in §5.
    pub fn standard(t: u32, i: u32) -> Self {
        BasketParams {
            n_items: 1000,
            n_patterns: 200,
            avg_pattern_len: i as f64,
            avg_trans_len: t as f64,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_dev: 0.1,
        }
    }
}

/// The pool of potentially large itemsets with their pick weights and
/// corruption levels. Building it once and reusing it lets the experiment
/// harness draw *queries* from the same distribution as the data, as §5.1
/// does ("using the same itemsets and parameters to also generate a number
/// of queries for each dataset").
#[derive(Debug, Clone)]
pub struct PatternPool {
    params: BasketParams,
    patterns: Vec<Vec<u32>>,
    corruption: Vec<f64>,
    picks: WeightedTable,
}

impl PatternPool {
    /// Draws the pattern pool from `seed`.
    pub fn new(params: BasketParams, seed: u64) -> Self {
        assert!(params.n_items > 0);
        assert!(params.n_patterns > 0);
        assert!(params.avg_pattern_len >= 1.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5047_5041_5454_4E53); // "SG PATTNS"
        let mut patterns: Vec<Vec<u32>> = Vec::with_capacity(params.n_patterns);
        let mut weights = Vec::with_capacity(params.n_patterns);
        let mut corruption = Vec::with_capacity(params.n_patterns);
        for p in 0..params.n_patterns {
            let size = poisson(&mut rng, params.avg_pattern_len - 1.0) as usize + 1;
            let size = size.min(params.n_items as usize);
            let mut items: Vec<u32> = Vec::with_capacity(size);
            // A fraction of the items (exponential with the correlation
            // mean) is inherited from the previous pattern, modelling the
            // phenomenon that large itemsets often share items.
            if p > 0 {
                let frac = exponential(&mut rng, params.correlation).min(1.0);
                let prev = &patterns[p - 1];
                let n_common = ((size as f64 * frac).round() as usize).min(prev.len());
                let mut pool: Vec<u32> = prev.clone();
                for k in 0..n_common {
                    let j = rng.gen_range(k..pool.len());
                    pool.swap(k, j);
                    items.push(pool[k]);
                }
            }
            while items.len() < size {
                let candidate = rng.gen_range(0..params.n_items);
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            items.sort_unstable();
            patterns.push(items);
            weights.push(exponential(&mut rng, 1.0));
            corruption.push(
                normal(&mut rng, params.corruption_mean, params.corruption_dev).clamp(0.0, 1.0),
            );
        }
        let picks = WeightedTable::new(&weights);
        PatternPool {
            params,
            patterns,
            corruption,
            picks,
        }
    }

    /// The generator parameters.
    pub fn params(&self) -> &BasketParams {
        &self.params
    }

    /// The potentially large itemsets.
    pub fn patterns(&self) -> &[Vec<u32>] {
        &self.patterns
    }

    /// Generates one transaction.
    pub fn transaction(&self, rng: &mut impl Rng) -> Transaction {
        let target = (poisson(rng, self.params.avg_trans_len - 1.0) as usize + 1)
            .min(self.params.n_items as usize);
        let mut items: Vec<u32> = Vec::with_capacity(target + 8);
        // Assemble from corrupted pattern picks until the target size is
        // reached, as in the original generator. An oversized final pick is
        // kept in half the cases and dropped otherwise.
        let mut guard = 0;
        while items.len() < target {
            guard += 1;
            if guard > 64 * (target + 1) {
                break; // pathological parameters; never hit in practice
            }
            let p = self.picks.sample(rng);
            let mut pick: Vec<u32> = self.patterns[p].clone();
            let c = self.corruption[p];
            // Corrupt: repeatedly drop a random item while u < c.
            while !pick.is_empty() && rng.gen::<f64>() < c {
                let j = rng.gen_range(0..pick.len());
                pick.swap_remove(j);
            }
            if pick.is_empty() {
                continue;
            }
            let new_items: Vec<u32> = pick.into_iter().filter(|it| !items.contains(it)).collect();
            if new_items.is_empty() {
                continue;
            }
            if items.len() + new_items.len() > target && !items.is_empty() && rng.gen::<bool>() {
                continue; // move the itemset "to the next transaction"
            }
            items.extend(new_items);
        }
        items.sort_unstable();
        items
    }

    /// Generates a whole dataset of `d` transactions from `seed`.
    pub fn dataset(&self, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5047_5f44_4154_4153); // "SG_DATAS"
        let transactions = (0..d).map(|_| self.transaction(&mut rng)).collect();
        Dataset {
            n_items: self.params.n_items,
            transactions,
        }
    }

    /// Generates `n` query transactions from a seed stream disjoint from
    /// [`PatternPool::dataset`]'s.
    pub fn queries(&self, n: usize, seed: u64) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5047_5f51_5552_5953); // "SG_QURYS"
        (0..n).map(|_| self.transaction(&mut rng)).collect()
    }
}

/// Convenience: builds the pool and generates `T{t}.I{i}.D{d}` in one call.
pub fn generate(t: u32, i: u32, d: usize, seed: u64) -> Dataset {
    PatternPool::new(BasketParams::standard(t, i), seed).dataset(d, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_sizes_track_t() {
        for t in [5u32, 10, 30] {
            let pool = PatternPool::new(BasketParams::standard(t, 4), 7);
            let ds = pool.dataset(2000, 7);
            let mean = ds.mean_len();
            assert!(
                (mean - t as f64).abs() < t as f64 * 0.35 + 1.5,
                "T={t}: mean {mean}"
            );
        }
    }

    #[test]
    fn items_within_universe_sorted_unique() {
        let pool = PatternPool::new(BasketParams::standard(10, 6), 3);
        let ds = pool.dataset(500, 3);
        for t in &ds.transactions {
            assert!(!t.is_empty());
            assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted+unique: {t:?}");
            assert!(t.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = generate(10, 6, 200, 99);
        let b = generate(10, 6, 200, 99);
        assert_eq!(a.transactions, b.transactions);
        let c = generate(10, 6, 200, 100);
        assert_ne!(a.transactions, c.transactions);
    }

    #[test]
    fn queries_differ_from_data_but_share_distribution() {
        let pool = PatternPool::new(BasketParams::standard(10, 6), 5);
        let ds = pool.dataset(300, 5);
        let qs = pool.queries(300, 5);
        assert_ne!(ds.transactions, qs);
        let qmean = qs.iter().map(|q| q.len()).sum::<usize>() as f64 / qs.len() as f64;
        assert!((qmean - ds.mean_len()).abs() < 3.0);
    }

    #[test]
    fn pattern_sizes_track_i() {
        let pool = PatternPool::new(BasketParams::standard(10, 12), 11);
        let mean = pool.patterns().iter().map(|p| p.len()).sum::<usize>() as f64
            / pool.patterns().len() as f64;
        assert!((mean - 12.0).abs() < 1.5, "mean pattern len {mean}");
    }

    #[test]
    fn correlation_makes_consecutive_patterns_overlap() {
        let pool = PatternPool::new(BasketParams::standard(10, 10), 13);
        let ps = pool.patterns();
        let mut overlaps = 0usize;
        for w in ps.windows(2) {
            if w[1].iter().any(|it| w[0].contains(it)) {
                overlaps += 1;
            }
        }
        // With correlation 0.5 a solid majority of consecutive pairs share
        // at least one item.
        assert!(
            overlaps > ps.len() / 3,
            "only {overlaps}/{} consecutive pairs overlap",
            ps.len() - 1
        );
    }

    #[test]
    fn pattern_pool_induces_clustering() {
        // Transactions assembled from a small shared pattern pool must sit
        // much closer to their nearest neighbors than transactions built
        // from a huge pool (which approximate independent random sets) —
        // the correlational structure that lets a similarity index prune.
        use sg_sig::Metric;
        let m = Metric::hamming();
        let mean_nn = |n_patterns: usize| -> f64 {
            let mut p = BasketParams::standard(20, 10);
            p.n_patterns = n_patterns;
            let ds = PatternPool::new(p, 17).dataset(400, 17);
            let sigs = ds.signatures();
            let mut total = 0.0;
            for a in 0..100 {
                let mut best = f64::INFINITY;
                for b in 0..sigs.len() {
                    if a != b {
                        best = best.min(m.dist(&sigs[a], &sigs[b]));
                    }
                }
                total += best;
            }
            total / 100.0
        };
        let clustered = mean_nn(20);
        let diffuse = mean_nn(5000);
        assert!(
            clustered < diffuse,
            "20-pattern pool should cluster tighter: {clustered} vs {diffuse}"
        );
    }
}
