//! Small distribution samplers used by the generators.
//!
//! Implemented inline (rather than pulling in `rand_distr`) to keep the
//! generator self-contained and its output reproducible from a seed across
//! dependency upgrades.

use rand::Rng;

/// Samples a Poisson variate with the given `mean` using Knuth's
/// multiplication method — exact and fast for the small means (≤ 50) the
/// generators use.
pub fn poisson(rng: &mut impl Rng, mean: f64) -> u64 {
    assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut k: u64 = 0;
    let mut p: f64 = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
        // Guard against pathological means; Poisson(50) essentially never
        // exceeds a few hundred.
        if k > 100_000 {
            return k;
        }
    }
}

/// Samples an exponential variate with the given `mean`.
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    assert!(mean > 0.0);
    let u: f64 = rng.gen::<f64>();
    -mean * (1.0 - u).ln()
}

/// Samples a normal variate via Box–Muller.
pub fn normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    mu + sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A precomputed Zipf(s) distribution over `{0, …, n-1}` (rank 0 most
/// probable), sampled by binary search on the cumulative table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// Builds the table for `n` outcomes with skew exponent `s`
    /// (`s = 0` is uniform; larger `s` is more skewed).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        // Guard against rounding leaving the last entry below 1.
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Zipf { cum }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// `true` if the distribution has a single outcome.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draws one rank in `{0, …, n-1}`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen::<f64>();
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cum.len() - 1),
        }
    }
}

/// A discrete distribution given by arbitrary non-negative weights,
/// sampled by binary search on the cumulative table.
#[derive(Debug, Clone)]
pub struct WeightedTable {
    cum: Vec<f64>,
}

impl WeightedTable {
    /// Builds the cumulative table. At least one weight must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        let mut cum = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite());
            total += w;
            cum.push(total);
        }
        assert!(total > 0.0, "all weights zero");
        for c in &mut cum {
            *c /= total;
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        WeightedTable { cum }
    }

    /// Draws one index, proportionally to its weight.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen::<f64>();
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cum.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        for mean in [1.0, 6.0, 30.0] {
            let sum: u64 = (0..n).map(|_| poisson(&mut r, mean)).sum();
            let got = sum as f64 / n as f64;
            assert!(
                (got - mean).abs() < mean * 0.05 + 0.1,
                "mean {mean} got {got}"
            );
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum();
        let got = sum / n as f64;
        assert!((got - 2.0).abs() < 0.1, "got {got}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 0.5, 0.1)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "sd {}", var.sqrt());
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = rng();
        let z = Zipf::new(100, 1.0);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 under Zipf(1, n=100) has probability 1/H_100 ≈ 0.193.
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((p0 - 0.193).abs() < 0.02, "p0 {p0}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut r = rng();
        let z = Zipf::new(10, 0.0);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((c as f64 / 100_000.0 - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn weighted_table_respects_weights() {
        let mut r = rng();
        let t = WeightedTable::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[t.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn weighted_table_rejects_all_zero() {
        WeightedTable::new(&[0.0, 0.0]);
    }
}
