//! Controlled query perturbation: derive a query at a *known* distance
//! from an indexed transaction.
//!
//! Figure 12 of the paper buckets queries by the distance of their
//! nearest neighbor. Natural generator output only controls that
//! distribution statistically; for targeted tests and demos it is useful
//! to *construct* queries at chosen distances: [`perturb`] flips `r`
//! items of a signature, producing a set at Hamming distance exactly `r`
//! (provided the universe has room), whose nearest neighbor in any
//! dataset containing the original is at distance ≤ `r`.

use sg_sig::Signature;

/// Returns a copy of `sig` with exactly `r` single-item edits applied:
/// each edit either removes a present item or inserts an absent one
/// (chosen by the caller-supplied word generator), so the result is at
/// Hamming distance exactly `r` from `sig`.
///
/// `rng` is any source of pseudo-random `u64`s — a closure over an LCG is
/// enough; no `rand` types leak into the signature math.
///
/// # Panics
///
/// Panics if `r` exceeds the number of possible edits (`nbits`).
pub fn perturb(sig: &Signature, r: u32, rng: &mut impl FnMut() -> u64) -> Signature {
    assert!(
        r <= sig.nbits(),
        "cannot make {r} distinct edits in a {}-item universe",
        sig.nbits()
    );
    let mut out = sig.clone();
    let mut edited: Vec<u32> = Vec::with_capacity(r as usize);
    let nbits = sig.nbits();
    while (edited.len() as u32) < r {
        let candidate = (rng() % nbits as u64) as u32;
        if edited.contains(&candidate) {
            continue; // re-editing an item would cancel the first edit
        }
        if out.get(candidate) {
            out.clear(candidate);
        } else {
            out.set(candidate);
        }
        edited.push(candidate);
    }
    out
}

/// Builds a Figure-12-style query workload over `data`: for each
/// requested distance `r`, picks transactions round-robin and perturbs
/// them by exactly `r` edits. The true NN distance of each query is then
/// at most `r` (usually exactly `r` on duplicate-free data).
pub fn perturbed_queries(
    data: &[Signature],
    distances: &[u32],
    per_distance: usize,
    seed: u64,
) -> Vec<(u32, Signature)> {
    assert!(!data.is_empty(), "need data to perturb");
    let mut state = seed ^ 0x5045_5254_5552_4221; // "PERTURB!"
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    let mut out = Vec::with_capacity(distances.len() * per_distance);
    let mut idx = 0usize;
    for &r in distances {
        for _ in 0..per_distance {
            let base = &data[idx % data.len()];
            idx += 1;
            out.push((r, perturb(base, r, &mut rng)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> impl FnMut() -> u64 {
        let mut x = 42u64;
        move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        }
    }

    #[test]
    fn perturb_moves_exactly_r() {
        let sig = Signature::from_items(200, &[1, 5, 9, 40, 77]);
        let mut r = rng();
        for dist in [0u32, 1, 3, 10] {
            let q = perturb(&sig, dist, &mut r);
            assert_eq!(sig.hamming(&q), dist, "dist={dist}");
        }
    }

    #[test]
    fn perturb_zero_is_identity() {
        let sig = Signature::from_items(64, &[3, 4]);
        assert_eq!(perturb(&sig, 0, &mut rng()), sig);
    }

    #[test]
    #[should_panic(expected = "distinct edits")]
    fn perturb_more_than_universe_panics() {
        let sig = Signature::from_items(8, &[1]);
        perturb(&sig, 9, &mut rng());
    }

    #[test]
    fn workload_distances_are_upper_bounds_on_nn() {
        let data: Vec<Signature> = (0..50u32)
            .map(|i| Signature::from_items(300, &[i * 3, i * 3 + 1, 200 + i]))
            .collect();
        let qs = perturbed_queries(&data, &[0, 2, 5], 10, 9);
        assert_eq!(qs.len(), 30);
        let m = sg_sig::Metric::hamming();
        for (r, q) in &qs {
            let nn = data
                .iter()
                .map(|s| m.dist(q, s))
                .fold(f64::INFINITY, f64::min);
            assert!(nn <= *r as f64, "nn {nn} > r {r}");
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let data: Vec<Signature> = (0..10u32)
            .map(|i| Signature::from_items(64, &[i, i + 20]))
            .collect();
        let a = perturbed_queries(&data, &[1, 4], 5, 7);
        let b = perturbed_queries(&data, &[1, 4], 5, 7);
        assert_eq!(a, b);
        let c = perturbed_queries(&data, &[1, 4], 5, 8);
        assert_ne!(a, c);
    }
}
