//! Workload generators for the SG-tree reproduction.
//!
//! The paper's §5.1 evaluates on
//!
//! 1. **synthetic market-basket data** produced by the classic
//!    Agrawal–Srikant generator (VLDB'94), parameterised as `T{T}.I{I}.D{D}`
//!    — mean transaction size `T`, mean maximal-potentially-large-itemset
//!    size `I`, and cardinality `D`, over `N = 1000` items; and
//! 2. **CENSUS**, a cleaned extract of the 1994/95 US Current Population
//!    Survey: 200K indexed tuples (+100K held out for queries) over 36
//!    categorical attributes with domain sizes from 2 to 53 and 525 values
//!    in total.
//!
//! [`basket`] reimplements (1) from the original description. [`census`]
//! generates a synthetic stand-in for (2) with the same shape — identical
//! attribute-count/domain-size profile, Zipf-skewed marginals, and a
//! mixture-of-profiles correlation structure giving the clusteredness the
//! paper attributes to the real data (see DESIGN.md §5 for the substitution
//! rationale).

pub mod basket;
pub mod census;
pub mod dist;
mod perturb;

pub use perturb::{perturb, perturbed_queries};

use sg_sig::Signature;

/// A transaction (or categorical tuple) as a list of global item ids.
pub type Transaction = Vec<u32>;

/// A generated dataset: the item-universe size plus the transactions.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Size of the item universe (the signature length `N`).
    pub n_items: u32,
    /// The transactions, each a sorted, deduplicated list of item ids.
    pub transactions: Vec<Transaction>,
}

impl Dataset {
    /// Converts every transaction into a [`Signature`] over the dataset's
    /// universe.
    pub fn signatures(&self) -> Vec<Signature> {
        self.transactions
            .iter()
            .map(|t| Signature::from_items(self.n_items, t))
            .collect()
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` if the dataset holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Mean transaction length.
    pub fn mean_len(&self) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        self.transactions.iter().map(|t| t.len()).sum::<usize>() as f64
            / self.transactions.len() as f64
    }
}

/// Standard `T{T}.I{I}.D{D}` name for a synthetic dataset (e.g.
/// `T30.I18.D200K`), as the paper labels its figures.
pub fn dataset_name(t: u32, i: u32, d: usize) -> String {
    if d % 1000 == 0 {
        format!("T{}.I{}.D{}K", t, i, d / 1000)
    } else {
        format!("T{}.I{}.D{}", t, i, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_name_formats_like_paper() {
        assert_eq!(dataset_name(10, 6, 200_000), "T10.I6.D200K");
        assert_eq!(dataset_name(30, 18, 200_000), "T30.I18.D200K");
        assert_eq!(dataset_name(5, 2, 123), "T5.I2.D123");
    }

    #[test]
    fn signatures_match_transactions() {
        let ds = Dataset {
            n_items: 50,
            transactions: vec![vec![1, 2, 3], vec![10, 49]],
        };
        let sigs = ds.signatures();
        assert_eq!(sigs.len(), 2);
        assert_eq!(sigs[0].items(), vec![1, 2, 3]);
        assert_eq!(sigs[1].items(), vec![10, 49]);
        assert_eq!(ds.mean_len(), 2.5);
    }
}
