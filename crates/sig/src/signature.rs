//! The [`Signature`] bitmap type and its bit-parallel set operations.

use crate::kernels;
use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-length bitmap over the item universe `{0, …, nbits-1}`.
///
/// Bit `i` set means "item `i` is present". Two signatures participating in
/// a binary operation must have the same `nbits` (checked with
/// `debug_assert!`; all callers inside this workspace index a single
/// universe per tree).
///
/// ```
/// use sg_sig::Signature;
///
/// let basket = Signature::from_items(1000, &[3, 17, 29]);
/// let other = Signature::from_items(1000, &[17, 29, 404]);
/// assert_eq!(basket.count(), 3);              // "area"
/// assert_eq!(basket.and_count(&other), 2);    // |∩|
/// assert_eq!(basket.hamming(&other), 2);      // |Δ|
/// let group = basket.or(&other);              // a directory signature
/// assert!(group.contains(&basket) && group.contains(&other));
/// ```
///
/// The representation is a boxed slice of `u64` words, least-significant
/// word first, with any unused high bits in the last word kept at zero (an
/// invariant every constructor and mutator preserves — several operations
/// such as [`Signature::count`] rely on it).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    words: Box<[u64]>,
    nbits: u32,
}

impl Signature {
    /// Creates an empty signature (all bits zero) over a universe of
    /// `nbits` items.
    pub fn empty(nbits: u32) -> Self {
        let n_words = Self::words_for(nbits);
        Signature {
            words: vec![0u64; n_words].into_boxed_slice(),
            nbits,
        }
    }

    /// Creates a signature with the given items set.
    ///
    /// Duplicate items are allowed and set the bit once.
    ///
    /// # Panics
    ///
    /// Panics if any item id is `>= nbits`.
    pub fn from_items(nbits: u32, items: &[u32]) -> Self {
        let mut sig = Self::empty(nbits);
        for &item in items {
            sig.set(item);
        }
        sig
    }

    /// Creates a signature from an iterator of item ids.
    pub fn from_iter(nbits: u32, items: impl IntoIterator<Item = u32>) -> Self {
        let mut sig = Self::empty(nbits);
        for item in items {
            sig.set(item);
        }
        sig
    }

    /// Number of `u64` words needed for `nbits` bits.
    #[inline]
    pub fn words_for(nbits: u32) -> usize {
        (nbits as usize).div_ceil(WORD_BITS)
    }

    /// The size of the item universe (the length of the bitmap in bits).
    #[inline]
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// The backing words, least-significant first.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a signature from raw words. Unused high bits of the last
    /// word are masked off to restore the invariant.
    pub fn from_words(nbits: u32, words: Box<[u64]>) -> Self {
        assert_eq!(words.len(), Self::words_for(nbits), "word count mismatch");
        let mut sig = Signature { words, nbits };
        sig.mask_tail();
        sig
    }

    #[inline]
    fn mask_tail(&mut self) {
        let rem = (self.nbits as usize) % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Sets bit `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item >= nbits`.
    #[inline]
    pub fn set(&mut self, item: u32) {
        assert!(
            item < self.nbits,
            "item {} out of universe {}",
            item,
            self.nbits
        );
        self.words[item as usize / WORD_BITS] |= 1u64 << (item as usize % WORD_BITS);
    }

    /// Clears bit `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item >= nbits`.
    #[inline]
    pub fn clear(&mut self, item: u32) {
        assert!(
            item < self.nbits,
            "item {} out of universe {}",
            item,
            self.nbits
        );
        self.words[item as usize / WORD_BITS] &= !(1u64 << (item as usize % WORD_BITS));
    }

    /// Tests bit `item`. Items outside the universe are reported absent.
    #[inline]
    pub fn get(&self, item: u32) -> bool {
        if item >= self.nbits {
            return false;
        }
        self.words[item as usize / WORD_BITS] >> (item as usize % WORD_BITS) & 1 == 1
    }

    /// The *area* of the signature: the number of set bits.
    ///
    /// This is the quality measure the SG-tree minimises in its
    /// choose-subtree and split heuristics (§3.1 of the paper).
    #[inline]
    pub fn count(&self) -> u32 {
        kernels::active().count(&self.words)
    }

    /// `true` iff no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bitwise OR of `other` into `self` (set union).
    #[inline]
    pub fn or_assign(&mut self, other: &Signature) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Returns the union `self ∪ other` as a new signature.
    #[inline]
    pub fn or(&self, other: &Signature) -> Signature {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Bitwise AND of `other` into `self` (set intersection).
    #[inline]
    pub fn and_assign(&mut self, other: &Signature) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn and_count(&self, other: &Signature) -> u32 {
        debug_assert_eq!(self.nbits, other.nbits);
        kernels::active().and_count(&self.words, &other.words)
    }

    /// `|self ∪ other|` without allocating.
    #[inline]
    pub fn union_count(&self, other: &Signature) -> u32 {
        debug_assert_eq!(self.nbits, other.nbits);
        kernels::active().or_count(&self.words, &other.words)
    }

    /// `|self \ other|` (bits set in `self` but not in `other`) without
    /// allocating. This is the relaxed Hamming lower bound the SG-tree uses
    /// for directory entries: query items no transaction below the entry can
    /// contain.
    #[inline]
    pub fn andnot_count(&self, other: &Signature) -> u32 {
        debug_assert_eq!(self.nbits, other.nbits);
        kernels::active().andnot_count(&self.words, &other.words)
    }

    /// `true` iff `self ⊇ other` (every bit of `other` is set in `self`).
    #[inline]
    pub fn contains(&self, other: &Signature) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        kernels::active().contains(&self.words, &other.words)
    }

    /// The Hamming distance `|self Δ other|` (symmetric-difference size).
    #[inline]
    pub fn hamming(&self, other: &Signature) -> u32 {
        debug_assert_eq!(self.nbits, other.nbits);
        kernels::active().xor_count(&self.words, &other.words)
    }

    /// The area growth `|self ∪ other| − |self|` needed to make `self`
    /// cover `other` — the SG-tree analogue of R-tree MBR enlargement.
    #[inline]
    pub fn enlargement(&self, other: &Signature) -> u32 {
        self.union_count(other) - self.count()
    }

    /// Iterates over the set bit positions in ascending order.
    pub fn ones(&self) -> SignatureOnes<'_> {
        SignatureOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the set bit positions (item ids) into a vector.
    pub fn items(&self) -> Vec<u32> {
        self.ones().collect()
    }

    /// The full *gray-code key* of the signature, used as a bulk-loading
    /// sort key (§6 of the paper suggests sorting transactions by gray code
    /// in analogy to space-filling-curve R-tree bulk loading).
    ///
    /// Interprets the bitmap (item `nbits-1` most significant) as a
    /// binary-reflected gray code and decodes it. The decoded words are
    /// returned most-significant first, so comparing two keys
    /// lexicographically orders signatures along the gray curve, on which
    /// consecutive signatures differ in few items.
    pub fn gray_key(&self) -> Vec<u64> {
        // Decode a binary-reflected gray code: b[n-1] = g[n-1],
        // b[i] = b[i+1] ^ g[i] — each decoded bit is the XOR of all
        // equally-or-more-significant code bits.
        let mut key = Vec::with_capacity(self.words.len());
        let mut parity: u64 = 0; // carry of the prefix XOR from higher words
        for &w in self.words.iter().rev() {
            // Prefix-XOR within the word, propagating from the MSB down.
            let mut b = w;
            b ^= b >> 1;
            b ^= b >> 2;
            b ^= b >> 4;
            b ^= b >> 8;
            b ^= b >> 16;
            b ^= b >> 32;
            key.push(b ^ parity);
            parity = if (w.count_ones() + (parity as u32 & 1)) % 2 == 1 {
                u64::MAX
            } else {
                0
            };
        }
        key
    }

    /// A 64-bit condensation of [`Signature::gray_key`]: the most
    /// significant 64 meaningful bits of the decoded gray value. Cheap to
    /// compare but coarser than the full key for universes much larger than
    /// 64 items.
    pub fn gray_rank(&self) -> u64 {
        let key = self.gray_key();
        let rem = (self.nbits as usize) % WORD_BITS;
        if rem == 0 || key.len() == 1 {
            key[0]
        } else {
            // Top word only holds `rem` meaningful low bits; splice in the
            // high bits of the next word to fill 64.
            (key[0] << (WORD_BITS - rem)) | (key[1] >> rem)
        }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({}b; {:?})", self.nbits, self.items())
    }
}

/// Iterator over the set bit positions of a [`Signature`].
pub struct SignatureOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SignatureOnes<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some((self.word_idx * WORD_BITS) as u32 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_bits() {
        let s = Signature::empty(100);
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.items(), Vec::<u32>::new());
        assert_eq!(s.nbits(), 100);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut s = Signature::empty(130);
        for i in [0u32, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!s.get(i));
            s.set(i);
            assert!(s.get(i));
        }
        assert_eq!(s.count(), 8);
        s.clear(64);
        assert!(!s.get(64));
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn get_out_of_universe_is_false() {
        let s = Signature::from_items(10, &[3]);
        assert!(!s.get(10));
        assert!(!s.get(1000));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn set_out_of_universe_panics() {
        Signature::empty(10).set(10);
    }

    #[test]
    fn from_items_dedups() {
        let s = Signature::from_items(20, &[5, 5, 5, 7]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.items(), vec![5, 7]);
    }

    #[test]
    fn union_and_intersection_counts() {
        let a = Signature::from_items(200, &[1, 2, 3, 100, 150]);
        let b = Signature::from_items(200, &[2, 3, 4, 150, 199]);
        assert_eq!(a.and_count(&b), 3);
        assert_eq!(a.union_count(&b), 7);
        assert_eq!(a.andnot_count(&b), 2);
        assert_eq!(b.andnot_count(&a), 2);
        assert_eq!(a.hamming(&b), 4);
        let u = a.or(&b);
        assert_eq!(u.count(), 7);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
    }

    #[test]
    fn containment() {
        let big = Signature::from_items(64, &[1, 2, 3, 4]);
        let small = Signature::from_items(64, &[2, 4]);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
        assert!(big.contains(&Signature::empty(64)));
    }

    #[test]
    fn enlargement_matches_definition() {
        let a = Signature::from_items(64, &[0, 1, 2]);
        let b = Signature::from_items(64, &[2, 3, 4, 5]);
        assert_eq!(a.enlargement(&b), 3);
        assert_eq!(b.enlargement(&a), 2);
        assert_eq!(a.enlargement(&a), 0);
    }

    #[test]
    fn ones_iterator_ascending_across_words() {
        let items = vec![0u32, 63, 64, 100, 191];
        let s = Signature::from_items(192, &items);
        assert_eq!(s.items(), items);
    }

    #[test]
    fn hamming_is_metric_like() {
        let a = Signature::from_items(64, &[1, 2]);
        let b = Signature::from_items(64, &[2, 3]);
        let c = Signature::from_items(64, &[3, 4]);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.hamming(&b), b.hamming(&a));
        assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    #[test]
    fn from_words_masks_tail() {
        let words = vec![u64::MAX].into_boxed_slice();
        let s = Signature::from_words(10, words);
        assert_eq!(s.count(), 10);
        assert_eq!(s.items(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gray_rank_orders_neighbors_close() {
        // Signatures differing in one low bit should have nearby ranks;
        // signatures differing in a high bit should be far apart.
        let base = Signature::from_items(128, &[100, 50, 3]);
        let near = Signature::from_items(128, &[100, 50, 4]);
        let far = Signature::from_items(128, &[10, 50, 3]);
        let d_near = base.gray_rank().abs_diff(near.gray_rank());
        let d_far = base.gray_rank().abs_diff(far.gray_rank());
        assert!(d_near < d_far, "near={} far={}", d_near, d_far);
    }

    #[test]
    fn gray_rank_zero_for_empty() {
        assert_eq!(Signature::empty(256).gray_rank(), 0);
    }
}
