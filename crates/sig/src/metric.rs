//! Set-similarity metrics and the directory lower bounds that drive
//! branch-and-bound search on the SG-tree.
//!
//! The paper's experiments use the **Hamming distance** `|A Δ B|`; §6 points
//! out that the tree can equally be searched under other set-theoretic
//! metrics given an appropriate lower bound for directory entries, and works
//! out the **Jaccard** case. This module implements both, plus Dice and
//! overlap variants, behind a single enum so query code is metric-generic.
//!
//! All distances are returned as `f64` so the different metrics (integral
//! Hamming, fractional Jaccard/Dice) share one search implementation; the
//! Hamming value is always an exact small integer.
//!
//! # Lower bounds
//!
//! For a directory entry with signature `e` (the OR of everything indexed
//! below it) and a query `q`, a valid bound must satisfy
//! `mindist(q, e) ≤ dist(q, t)` for every transaction `t` with
//! `sig(t) ⊆ e`. The bounds implemented here:
//!
//! * **Hamming**: `|q \ e|` — items of the query that no transaction below
//!   the entry can contain (each costs at least one mismatch).
//! * **Hamming with fixed dimensionality `d`** (§6's "stricter bound" for
//!   categorical data, where every indexed tuple has exactly `d` set bits):
//!   `dist(q,t) = |q| + d − 2|q ∩ t|` and `|q ∩ t| ≤ min(|q ∩ e|, d)`, so
//!   `mindist = max(|q \ e|, |q| + d − 2·min(|q ∩ e|, d))`.
//! * **Jaccard**: `sim(q,t) = |q ∩ t| / |q ∪ t| ≤ |q ∩ e| / |q|`, so
//!   `mindist = 1 − |q ∩ e| / |q|`.
//! * **Dice**: `sim = 2|q ∩ t| / (|q|+|t|) ≤ 2|q ∩ e| / (|q| + |q ∩ t|)`…
//!   bounded by `2c / (|q| + c)` with `c = |q ∩ e|` (monotone in `|q ∩ t|`
//!   and `|t| ≥ |q ∩ t|`), so `mindist = 1 − 2c/(|q| + c)`.
//! * **Overlap**: `sim = |q ∩ t| / min(|q|,|t|) ≤ 1` in general; with the
//!   entry we can only bound `|q ∩ t| ≤ c`, and `min(|q|,|t|) ≥ 1`, giving
//!   `mindist = 0` when `c > 0`. With fixed dimensionality `d` the
//!   denominator is `min(|q|, d)`, giving `1 − c / min(|q|, d)`.

use crate::Signature;

/// Which set-similarity metric a search runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Symmetric-difference size `|A Δ B|` — the paper's metric.
    Hamming,
    /// `1 − |A ∩ B| / |A ∪ B|`.
    Jaccard,
    /// `1 − 2|A ∩ B| / (|A| + |B|)`.
    Dice,
    /// `1 − |A ∩ B| / min(|A|, |B|)` (containment-style similarity).
    Overlap,
}

/// A metric plus the optional fixed-dimensionality hint of §6.
///
/// ```
/// use sg_sig::{Metric, Signature};
///
/// let m = Metric::hamming();
/// let q = Signature::from_items(100, &[1, 2, 3]);
/// let t = Signature::from_items(100, &[2, 3, 4]);
/// assert_eq!(m.dist(&q, &t), 2.0);
/// // A directory entry covering {2,3,4} and {4,5}: at least one query
/// // item (1) is unreachable below it.
/// let entry = t.or(&Signature::from_items(100, &[4, 5]));
/// assert_eq!(m.mindist(&q, &entry), 1.0);
/// assert!(m.mindist(&q, &entry) <= m.dist(&q, &t));
/// ```
///
/// When the indexed data are categorical tuples over `d` attributes, every
/// transaction has exactly `d` set bits, and the directory lower bounds can
/// be tightened substantially (see module docs). Constructing the metric
/// with [`Metric::with_fixed_dim`] enables those bounds; correctness then
/// *requires* that every indexed signature has area exactly `d`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metric {
    kind: MetricKind,
    fixed_dim: Option<u32>,
}

impl Metric {
    /// A metric without dimensionality assumptions (general set data).
    pub const fn new(kind: MetricKind) -> Self {
        Metric {
            kind,
            fixed_dim: None,
        }
    }

    /// The paper's default: Hamming distance on general set data.
    pub const fn hamming() -> Self {
        Self::new(MetricKind::Hamming)
    }

    /// Jaccard distance on general set data.
    pub const fn jaccard() -> Self {
        Self::new(MetricKind::Jaccard)
    }

    /// Enables the fixed-dimensionality bounds: every indexed transaction
    /// is promised to contain exactly `d` items (categorical tuples over
    /// `d` attributes).
    pub const fn with_fixed_dim(kind: MetricKind, d: u32) -> Self {
        Metric {
            kind,
            fixed_dim: Some(d),
        }
    }

    /// The metric family.
    pub const fn kind(&self) -> MetricKind {
        self.kind
    }

    /// The fixed-dimensionality hint, if any.
    pub const fn fixed_dim(&self) -> Option<u32> {
        self.fixed_dim
    }

    /// The exact distance between two transactions.
    pub fn dist(&self, a: &Signature, b: &Signature) -> f64 {
        self.dist_from_counts(a.count(), b.count(), a.and_count(b))
    }

    /// [`Metric::dist`] from precomputed cardinalities: `ca = |A|`,
    /// `cb = |B|`, `inter = |A ∩ B|`.
    ///
    /// Every metric is a function of these three counts alone, so callers
    /// that already know them (the SoA node sweep with its cached entry
    /// weights) can skip touching the bitmaps. The arithmetic is the same
    /// expression `dist` always evaluated, making results bit-identical.
    pub fn dist_from_counts(&self, ca: u32, cb: u32, inter: u32) -> f64 {
        let inter = inter as f64;
        let ca = ca as f64;
        let cb = cb as f64;
        match self.kind {
            MetricKind::Hamming => ca + cb - 2.0 * inter,
            MetricKind::Jaccard => {
                let union = ca + cb - inter;
                if union == 0.0 {
                    0.0
                } else {
                    1.0 - inter / union
                }
            }
            MetricKind::Dice => {
                if ca + cb == 0.0 {
                    0.0
                } else {
                    1.0 - 2.0 * inter / (ca + cb)
                }
            }
            MetricKind::Overlap => {
                let m = ca.min(cb);
                if m == 0.0 {
                    if ca.max(cb) == 0.0 {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    1.0 - inter / m
                }
            }
        }
    }

    /// A lower bound on `dist(q, t)` over every transaction `t` whose
    /// signature is covered by the directory-entry signature `entry`.
    ///
    /// Never negative; equals `0` when the bound cannot exclude a perfect
    /// match below the entry.
    pub fn mindist(&self, q: &Signature, entry: &Signature) -> f64 {
        self.mindist_from_counts(q.count(), q.and_count(entry))
    }

    /// [`Metric::mindist`] from precomputed cardinalities: `cq = |q|` and
    /// `c = |q ∩ e|`. Same arithmetic as `mindist`, bit-identical results.
    pub fn mindist_from_counts(&self, cq: u32, c: u32) -> f64 {
        let missing = (cq - c) as f64; // |q \ e|
        match self.kind {
            MetricKind::Hamming => match self.fixed_dim {
                None => missing,
                Some(d) => {
                    let matched_max = c.min(d) as f64;
                    let strict = cq as f64 + d as f64 - 2.0 * matched_max;
                    missing.max(strict).max(0.0)
                }
            },
            MetricKind::Jaccard => {
                if cq == 0 {
                    return 0.0;
                }
                match self.fixed_dim {
                    // sim ≤ |q ∩ e| / |q| (the paper's §6 bound).
                    None => 1.0 - c as f64 / cq as f64,
                    // With |t| = d: |q ∪ t| = |q| + d − |q ∩ t| ≥ |q| + d − c,
                    // so sim ≤ c / (|q| + d − c) when that denominator is
                    // positive; tighter than c/|q| whenever d > c.
                    Some(d) => {
                        let denom = (cq + d).saturating_sub(c.min(d)) as f64;
                        if denom <= 0.0 {
                            0.0
                        } else {
                            (1.0 - c.min(d) as f64 / denom).max(0.0)
                        }
                    }
                }
            }
            MetricKind::Dice => {
                if cq == 0 {
                    return 0.0;
                }
                let c = match self.fixed_dim {
                    Some(d) => c.min(d),
                    None => c,
                } as f64;
                let lower_t = match self.fixed_dim {
                    // |t| = d exactly.
                    Some(d) => d as f64,
                    // |t| ≥ |q ∩ t|; sim = 2i/(|q|+|t|) is maximised at
                    // i = c, |t| = c.
                    None => c,
                };
                let denom = cq as f64 + lower_t;
                if denom == 0.0 {
                    0.0
                } else {
                    (1.0 - 2.0 * c / denom).max(0.0)
                }
            }
            MetricKind::Overlap => {
                let c = c as f64;
                match self.fixed_dim {
                    Some(d) => {
                        let m = (cq.min(d)) as f64;
                        if m == 0.0 {
                            0.0
                        } else {
                            (1.0 - c.min(m) / m).max(0.0)
                        }
                    }
                    // Without a size promise the only safe bound: a
                    // transaction could be a single shared item, giving
                    // similarity 1 whenever any overlap is possible.
                    None => {
                        if c > 0.0 || cq == 0 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(items: &[u32]) -> Signature {
        Signature::from_items(256, items)
    }

    #[test]
    fn hamming_dist_matches_symmetric_difference() {
        let m = Metric::hamming();
        let a = sig(&[1, 2, 3]);
        let b = sig(&[3, 4]);
        assert_eq!(m.dist(&a, &b), 3.0);
        assert_eq!(m.dist(&a, &a), 0.0);
    }

    #[test]
    fn jaccard_dist_range_and_identity() {
        let m = Metric::jaccard();
        let a = sig(&[1, 2, 3, 4]);
        let b = sig(&[3, 4, 5, 6]);
        assert!((m.dist(&a, &b) - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
        assert_eq!(m.dist(&a, &a), 0.0);
        let disjoint = sig(&[100]);
        assert_eq!(m.dist(&a, &disjoint), 1.0);
        let e = Signature::empty(256);
        assert_eq!(m.dist(&e, &e), 0.0);
    }

    #[test]
    fn dice_and_overlap_basics() {
        let a = sig(&[1, 2]);
        let b = sig(&[2, 3, 4]);
        let dice = Metric::new(MetricKind::Dice);
        assert!((dice.dist(&a, &b) - (1.0 - 2.0 / 5.0)).abs() < 1e-12);
        let ov = Metric::new(MetricKind::Overlap);
        assert!((ov.dist(&a, &b) - 0.5).abs() < 1e-12);
        // Overlap with a subset is 0 (full containment).
        let sub = sig(&[2]);
        assert_eq!(ov.dist(&b, &sub), 0.0);
    }

    #[test]
    fn hamming_mindist_counts_uncovered_query_items() {
        let m = Metric::hamming();
        let q = sig(&[1, 2, 3, 4]);
        let entry = sig(&[2, 3, 10, 11, 12]);
        assert_eq!(m.mindist(&q, &entry), 2.0);
        // Fully covered query: bound collapses to 0.
        assert_eq!(m.mindist(&q, &sig(&[1, 2, 3, 4, 5])), 0.0);
    }

    #[test]
    fn fixed_dim_hamming_bound_is_tighter_and_valid() {
        let d = 4;
        let m = Metric::with_fixed_dim(MetricKind::Hamming, d);
        let relaxed = Metric::hamming();
        let q = sig(&[1, 2]);
        // Entry covers the whole query, but every indexed tuple has 4 items,
        // so at least 2 of them mismatch q.
        let entry = sig(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(relaxed.mindist(&q, &entry), 0.0);
        assert_eq!(m.mindist(&q, &entry), 2.0);
        // And 2 is achievable: t = {1,2,x,y}.
        let t = sig(&[1, 2, 30, 31]);
        assert_eq!(m.dist(&q, &t), 2.0);
    }

    #[test]
    fn mindist_never_exceeds_dist_of_covered_transaction() {
        // Deterministic sweep: entries as unions of transactions.
        let metrics = [
            Metric::hamming(),
            Metric::jaccard(),
            Metric::new(MetricKind::Dice),
            Metric::new(MetricKind::Overlap),
        ];
        let ts = [
            sig(&[1, 2, 3]),
            sig(&[2, 3, 4, 5]),
            sig(&[10, 20, 30]),
            sig(&[1]),
        ];
        let q = sig(&[1, 3, 5, 20]);
        let mut entry = Signature::empty(256);
        for t in &ts {
            entry.or_assign(t);
        }
        for m in &metrics {
            let lb = m.mindist(&q, &entry);
            for t in &ts {
                assert!(
                    lb <= m.dist(&q, t) + 1e-12,
                    "{:?}: lb {} > dist {}",
                    m.kind(),
                    lb,
                    m.dist(&q, t)
                );
            }
        }
    }

    #[test]
    fn fixed_dim_bounds_valid_for_fixed_size_transactions() {
        let d = 3;
        let ts = [sig(&[1, 2, 3]), sig(&[2, 3, 4]), sig(&[10, 11, 12])];
        let mut entry = Signature::empty(256);
        for t in &ts {
            entry.or_assign(t);
        }
        let q = sig(&[1, 2, 10, 40]);
        for kind in [
            MetricKind::Hamming,
            MetricKind::Jaccard,
            MetricKind::Dice,
            MetricKind::Overlap,
        ] {
            let m = Metric::with_fixed_dim(kind, d);
            let lb = m.mindist(&q, &entry);
            for t in &ts {
                assert!(
                    lb <= m.dist(&q, t) + 1e-12,
                    "{:?}: lb {} > dist {}",
                    kind,
                    lb,
                    m.dist(&q, t)
                );
            }
        }
    }

    #[test]
    fn jaccard_mindist_matches_paper_formula() {
        let m = Metric::jaccard();
        let q = sig(&[1, 2, 3, 4]);
        let entry = sig(&[1, 2, 50]);
        // 1 − |q ∩ e| / |q| = 1 − 2/4.
        assert!((m.mindist(&q, &entry) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_query_bounds_are_zero_or_valid() {
        let q = Signature::empty(256);
        let entry = sig(&[1, 2, 3]);
        for kind in [
            MetricKind::Hamming,
            MetricKind::Jaccard,
            MetricKind::Dice,
            MetricKind::Overlap,
        ] {
            let m = Metric::new(kind);
            let lb = m.mindist(&q, &entry);
            // dist(q, t) for t = {1,2,3}: hamming 3, jaccard 1, dice 1,
            // overlap 1 (by convention). The bound must not exceed any of
            // the achievable distances below the entry.
            let t = sig(&[1, 2, 3]);
            assert!(lb <= m.dist(&q, &t) + 1e-12, "{:?}", kind);
        }
    }
}
