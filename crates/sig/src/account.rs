//! Thread-local kernel-work counters for per-query resource accounting.
//!
//! The hot sweep and decode paths cannot thread a stats struct through
//! every call without contorting their signatures, so they bump two
//! plain thread-local cells instead: **lane ops** (bitmap words swept by
//! a dense kernel, or positions compared by a sparse probe) and **bytes
//! decoded** (page bytes run through the codec). A query measures its
//! own share by snapshotting around the call on the thread that runs it
//! — queries execute on one thread end to end, so the delta is exact
//! and needs no synchronization.
//!
//! Costs when nobody reads the counters: one thread-local add per node
//! sweep / page decode, a few nanoseconds against sweeps that touch
//! kilobytes — well inside the workspace's <5% observability budget.

use std::cell::Cell;

thread_local! {
    static LANE_OPS: Cell<u64> = const { Cell::new(0) };
    static BYTES_DECODED: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time reading of this thread's counters. Subtract two
/// readings ([`Reading::delta`]) to bill the work between them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Reading {
    /// Cumulative lane operations on this thread.
    pub lane_ops: u64,
    /// Cumulative codec bytes decoded on this thread.
    pub bytes_decoded: u64,
}

impl Reading {
    /// The work accrued since `earlier` (same thread; saturating, so a
    /// mismatched pair degrades to zero rather than wrapping).
    pub fn delta(&self, earlier: &Reading) -> Reading {
        Reading {
            lane_ops: self.lane_ops.saturating_sub(earlier.lane_ops),
            bytes_decoded: self.bytes_decoded.saturating_sub(earlier.bytes_decoded),
        }
    }
}

/// This thread's cumulative counters.
#[inline]
pub fn read() -> Reading {
    Reading {
        lane_ops: LANE_OPS.get(),
        bytes_decoded: BYTES_DECODED.get(),
    }
}

/// Charges `n` kernel lane operations to this thread.
#[inline]
pub fn add_lane_ops(n: u64) {
    LANE_OPS.set(LANE_OPS.get() + n);
}

/// Charges `n` codec bytes decoded to this thread.
#[inline]
pub fn add_bytes_decoded(n: u64) {
    BYTES_DECODED.set(BYTES_DECODED.get() + n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_exact_and_per_thread() {
        let before = read();
        add_lane_ops(8);
        add_bytes_decoded(4096);
        add_lane_ops(8);
        let d = read().delta(&before);
        assert_eq!(d.lane_ops, 16);
        assert_eq!(d.bytes_decoded, 4096);

        // Another thread's work never leaks into this thread's delta.
        let here = read();
        std::thread::spawn(|| {
            add_lane_ops(1_000_000);
            assert!(read().lane_ops >= 1_000_000);
        })
        .join()
        .unwrap();
        assert_eq!(read().delta(&here), Reading::default());
    }

    #[test]
    fn mismatched_pairs_saturate_to_zero() {
        let later = Reading {
            lane_ops: 5,
            bytes_decoded: 5,
        };
        let earlier = Reading {
            lane_ops: 10,
            bytes_decoded: 10,
        };
        assert_eq!(later.delta(&earlier), Reading::default());
    }
}
