//! Signature compression (§3.2 of the paper).
//!
//! Sparse signatures waste space as raw bitmaps: a 256-bit signature with
//! ten 1s costs 32 bytes raw but only 10 positions. The paper's scheme
//! prefixes every stored signature with a *flag byte*; a flag value below
//! the sentinel means "the next `flag` entries are the positions of the set
//! bits", and the sentinel means "a raw bitmap follows". The encoder picks
//! whichever form is smaller, so the encoded size never exceeds
//! `1 + bitmap_bytes`.
//!
//! Positions are stored little-endian at the smallest width that can
//! address the universe: one byte up to 256 items, two up to 65 536 (the
//! paper's datasets, at 525 and 1000 items, use this form; its "10 bytes
//! for 10 ones" example is the 256-item one-byte form), then three and
//! four bytes for larger universes.

use crate::Signature;

/// Flag value marking a raw-bitmap encoding. Position-list encodings store
/// the number of set bits in the flag, so they can describe at most
/// [`MAX_LIST_LEN`] positions.
pub const RAW_FLAG: u8 = 0xFF;

/// Largest number of positions a position-list encoding can hold.
pub const MAX_LIST_LEN: u32 = (RAW_FLAG - 1) as u32;

/// Errors produced when decoding a stored signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the encoding was complete.
    Truncated,
    /// A position-list entry named an item outside the universe.
    PositionOutOfRange { position: u32, nbits: u32 },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "signature encoding truncated"),
            DecodeError::PositionOutOfRange { position, nbits } => {
                write!(f, "position {position} out of {nbits}-bit universe")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bytes per stored position for a universe of `nbits` items: the
/// smallest little-endian width that can address every item.
#[inline]
fn pos_width(nbits: u32) -> usize {
    if nbits <= 1 << 8 {
        1
    } else if nbits <= 1 << 16 {
        2
    } else if nbits <= 1 << 24 {
        3
    } else {
        4
    }
}

/// Bytes of a raw bitmap for a universe of `nbits` items.
#[inline]
pub fn bitmap_bytes(nbits: u32) -> usize {
    (nbits as usize).div_ceil(8)
}

/// The worst-case encoded size for any signature over `nbits` items
/// (flag byte + raw bitmap). Node layouts budget this per entry so a node
/// always fits its page regardless of how entries compress.
#[inline]
pub fn max_encoded_len(nbits: u32) -> usize {
    1 + bitmap_bytes(nbits)
}

/// The exact encoded size of `sig` under the adaptive scheme.
pub fn encoded_len(sig: &Signature) -> usize {
    let ones = sig.count();
    let raw = max_encoded_len(sig.nbits());
    if ones <= MAX_LIST_LEN {
        let list = 1 + ones as usize * pos_width(sig.nbits());
        list.min(raw)
    } else {
        raw
    }
}

/// Encodes `sig` into `out`, returning the number of bytes written.
///
/// The universe size is *not* stored; the decoder must know it (in the
/// SG-tree it lives once in the node header rather than per entry).
pub fn encode(sig: &Signature, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    let ones = sig.count();
    let nbits = sig.nbits();
    let w = pos_width(nbits);
    let list_len = 1 + ones as usize * w;
    if ones <= MAX_LIST_LEN && list_len < max_encoded_len(nbits) {
        out.push(ones as u8);
        for item in sig.ones() {
            out.extend_from_slice(&item.to_le_bytes()[..w]);
        }
    } else {
        out.push(RAW_FLAG);
        let mut remaining = bitmap_bytes(nbits);
        for word in sig.words() {
            let bytes = word.to_le_bytes();
            let take = remaining.min(8);
            out.extend_from_slice(&bytes[..take]);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
    }
    out.len() - start
}

/// Decodes one signature from the front of `buf`, returning it and the
/// number of bytes consumed.
pub fn decode(nbits: u32, buf: &[u8]) -> Result<(Signature, usize), DecodeError> {
    let (&flag, rest) = buf.split_first().ok_or(DecodeError::Truncated)?;
    if flag == RAW_FLAG {
        let nbytes = bitmap_bytes(nbits);
        if rest.len() < nbytes {
            return Err(DecodeError::Truncated);
        }
        let mut words = vec![0u64; Signature::words_for(nbits)].into_boxed_slice();
        for (i, chunk) in rest[..nbytes].chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            words[i] = u64::from_le_bytes(b);
        }
        Ok((Signature::from_words(nbits, words), 1 + nbytes))
    } else {
        let w = pos_width(nbits);
        let n = flag as usize;
        if rest.len() < n * w {
            return Err(DecodeError::Truncated);
        }
        let mut sig = Signature::empty(nbits);
        for i in 0..n {
            let mut bytes = [0u8; 4];
            bytes[..w].copy_from_slice(&rest[w * i..w * (i + 1)]);
            let pos = u32::from_le_bytes(bytes);
            if pos >= nbits {
                return Err(DecodeError::PositionOutOfRange {
                    position: pos,
                    nbits,
                });
            }
            sig.set(pos);
        }
        Ok((sig, 1 + n * w))
    }
}

/// A parsed-but-not-decoded stored signature: evaluates set predicates
/// directly on the encoded bytes, with no bitmap materialisation.
///
/// For position-list encodings the fixed per-position width gives O(1)
/// random access into the sorted list, so query probes run as *galloping*
/// searches — doubling steps then binary search — instead of decoding the
/// whole entry. For raw-bitmap encodings the bytes are swept eight at a
/// time against the query's words. Either way the counts are exact, so
/// distances computed from them are bit-identical to the decode-first
/// path (a property the codec proptests pin down).
#[derive(Clone, Copy, Debug)]
pub struct EncodedView<'a> {
    nbits: u32,
    form: Form<'a>,
}

#[derive(Clone, Copy, Debug)]
enum Form<'a> {
    /// Raw little-endian bitmap bytes (tail bits zero).
    Raw(&'a [u8]),
    /// `len` positions, ascending, `width` bytes each, little-endian.
    List { bytes: &'a [u8], width: usize },
}

impl<'a> EncodedView<'a> {
    /// Parses one stored signature from the front of `buf`, returning the
    /// view and the number of bytes it spans. Performs the same validation
    /// as [`decode`] (including position range checks) without building a
    /// [`Signature`].
    pub fn parse(nbits: u32, buf: &'a [u8]) -> Result<(Self, usize), DecodeError> {
        let (&flag, rest) = buf.split_first().ok_or(DecodeError::Truncated)?;
        if flag == RAW_FLAG {
            let nbytes = bitmap_bytes(nbits);
            if rest.len() < nbytes {
                return Err(DecodeError::Truncated);
            }
            Ok((
                EncodedView {
                    nbits,
                    form: Form::Raw(&rest[..nbytes]),
                },
                1 + nbytes,
            ))
        } else {
            let w = pos_width(nbits);
            let n = flag as usize;
            if rest.len() < n * w {
                return Err(DecodeError::Truncated);
            }
            let bytes = &rest[..n * w];
            if let Some(position) = list_positions(bytes, w).find(|&p| p >= nbits) {
                return Err(DecodeError::PositionOutOfRange { position, nbits });
            }
            let view = EncodedView {
                nbits,
                form: Form::List { bytes, width: w },
            };
            Ok((view, 1 + n * w))
        }
    }

    /// The universe size this view was parsed against.
    #[inline]
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// `true` when the stored form is a position list (the sparse form).
    #[inline]
    pub fn is_list(&self) -> bool {
        matches!(self.form, Form::List { .. })
    }

    /// The `i`-th stored position (list form only).
    #[inline]
    fn list_position(&self, i: usize) -> u32 {
        match self.form {
            Form::List { bytes, width } => read_position(bytes, width, i),
            Form::Raw(_) => unreachable!("list_position on raw form"),
        }
    }

    fn list_len(&self) -> usize {
        match self.form {
            Form::List { bytes, width } => bytes.len() / width,
            Form::Raw(_) => 0,
        }
    }

    /// First index `>= lo` whose position is `>= target`, by galloping:
    /// doubling probes from `lo`, then binary search inside the bracket.
    fn gallop_ge(&self, lo: usize, target: u32) -> usize {
        let n = self.list_len();
        if lo >= n || self.list_position(lo) >= target {
            return lo;
        }
        // Invariant: position(lo + step/2) < target  (for step > 1).
        let mut step = 1usize;
        while lo + step < n && self.list_position(lo + step) < target {
            step <<= 1;
        }
        let mut left = lo + step / 2 + 1;
        let mut right = (lo + step).min(n);
        while left < right {
            let mid = left + (right - left) / 2;
            if self.list_position(mid) < target {
                left = mid + 1;
            } else {
                right = mid;
            }
        }
        left
    }

    /// Number of set bits, straight off the encoding: the flag byte for
    /// lists, a byte-popcount for raw bitmaps.
    pub fn count(&self) -> u32 {
        match self.form {
            Form::Raw(bytes) => raw_words(bytes).map(|w| w.count_ones()).sum(),
            Form::List { .. } => self.list_len() as u32,
        }
    }

    /// `|self ∩ q|` against a query bitmap.
    ///
    /// Lists probe the query's words per stored position; raw bitmaps are
    /// swept word-parallel against `q`.
    pub fn and_count(&self, q: &Signature) -> u32 {
        debug_assert_eq!(self.nbits, q.nbits());
        match self.form {
            Form::Raw(bytes) => raw_words(bytes)
                .zip(q.words().iter())
                .map(|(w, qw)| (w & qw).count_ones())
                .sum(),
            Form::List { .. } => {
                let qw = q.words();
                (0..self.list_len())
                    .filter(|&i| {
                        let p = self.list_position(i) as usize;
                        qw[p / 64] >> (p % 64) & 1 == 1
                    })
                    .count() as u32
            }
        }
    }

    /// `|self ∩ q|` by galloping the stored list against the query's
    /// sorted item ids. Falls back to the word sweep for raw bitmaps.
    ///
    /// `q_items` must be ascending (as produced by [`Signature::items`]).
    /// The gallop advances through whichever list is ahead, so the cost is
    /// `O(k log(n/k))` for a `k`-item query against an `n`-position entry
    /// rather than `O(n + k)`.
    pub fn and_count_items(&self, q: &Signature, q_items: &[u32]) -> u32 {
        match self.form {
            Form::Raw(_) => self.and_count(q),
            Form::List { .. } => {
                let n = self.list_len();
                let mut i = 0usize;
                let mut hits = 0u32;
                for &item in q_items {
                    i = self.gallop_ge(i, item);
                    if i >= n {
                        break;
                    }
                    if self.list_position(i) == item {
                        hits += 1;
                        i += 1;
                    }
                }
                hits
            }
        }
    }

    /// `true` iff `self ⊇ q` (the stored entry covers every query item):
    /// the containment-query descent test, evaluated without decoding.
    pub fn contains(&self, q: &Signature, q_items: &[u32]) -> bool {
        debug_assert_eq!(self.nbits, q.nbits());
        match self.form {
            Form::Raw(bytes) => raw_words(bytes)
                .zip(q.words().iter())
                .all(|(w, qw)| qw & !w == 0),
            Form::List { .. } => {
                if q_items.len() > self.list_len() {
                    return false;
                }
                let mut i = 0usize;
                for &item in q_items {
                    i = self.gallop_ge(i, item);
                    if i >= self.list_len() || self.list_position(i) != item {
                        return false;
                    }
                    i += 1;
                }
                true
            }
        }
    }

    /// `true` iff `q ⊇ self` (every stored bit is set in the query): the
    /// superset-query test.
    pub fn covered_by(&self, q: &Signature) -> bool {
        debug_assert_eq!(self.nbits, q.nbits());
        match self.form {
            Form::Raw(bytes) => raw_words(bytes)
                .zip(q.words().iter())
                .all(|(w, qw)| w & !qw == 0),
            Form::List { .. } => {
                let qw = q.words();
                (0..self.list_len()).all(|i| {
                    let p = self.list_position(i) as usize;
                    qw[p / 64] >> (p % 64) & 1 == 1
                })
            }
        }
    }

    /// `true` iff the stored signature equals `q` exactly.
    pub fn equals(&self, q: &Signature) -> bool {
        self.count() == q.count() && self.covered_by(q)
    }

    /// Appends the stored positions (ascending) to `out` (list form), or
    /// the set bit positions of the bitmap (raw form).
    pub fn positions_into(&self, out: &mut Vec<u32>) {
        match self.form {
            Form::Raw(bytes) => {
                for (wi, w) in raw_words(bytes).enumerate() {
                    let mut rem = w;
                    while rem != 0 {
                        out.push((wi * 64) as u32 + rem.trailing_zeros());
                        rem &= rem - 1;
                    }
                }
            }
            Form::List { bytes, width } => {
                out.extend(list_positions(bytes, width));
            }
        }
    }

    /// Writes the stored bitmap into `dst` (which must hold at least
    /// [`Signature::words_for`]`(nbits)` zeroed words) without allocating —
    /// the bulk-decode path for contiguous node layouts.
    pub fn write_words_into(&self, dst: &mut [u64]) {
        match self.form {
            Form::Raw(bytes) => {
                for (i, w) in raw_words(bytes).enumerate() {
                    dst[i] = w;
                }
            }
            Form::List { bytes, width } => {
                for p in list_positions(bytes, width) {
                    let p = p as usize;
                    dst[p / 64] |= 1u64 << (p % 64);
                }
            }
        }
    }

    /// Materialises the stored signature (same result as [`decode`]).
    pub fn to_signature(&self) -> Signature {
        match self.form {
            Form::Raw(bytes) => {
                let mut words = vec![0u64; Signature::words_for(self.nbits)].into_boxed_slice();
                for (i, w) in raw_words(bytes).enumerate() {
                    words[i] = w;
                }
                Signature::from_words(self.nbits, words)
            }
            Form::List { .. } => {
                let mut sig = Signature::empty(self.nbits);
                for i in 0..self.list_len() {
                    sig.set(self.list_position(i));
                }
                sig
            }
        }
    }
}

/// Reads the `i`-th fixed-width little-endian position from a list body.
/// The width match compiles to a direct 1/2/3/4-byte load per arm instead
/// of a variable-length copy.
#[inline]
fn read_position(bytes: &[u8], width: usize, i: usize) -> u32 {
    let at = i * width;
    match width {
        1 => bytes[at] as u32,
        2 => u16::from_le_bytes([bytes[at], bytes[at + 1]]) as u32,
        3 => u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], 0]),
        _ => u32::from_le_bytes(bytes[at..at + 4].try_into().expect("position width")),
    }
}

/// Iterates every position of a list body in order.
#[inline]
fn list_positions(bytes: &[u8], width: usize) -> impl Iterator<Item = u32> + '_ {
    bytes.chunks_exact(width).map(move |c| match width {
        1 => c[0] as u32,
        2 => u16::from_le_bytes([c[0], c[1]]) as u32,
        3 => u32::from_le_bytes([c[0], c[1], c[2], 0]),
        _ => u32::from_le_bytes(c.try_into().expect("position width")),
    })
}

/// Iterates a raw bitmap's bytes as little-endian `u64` words (the last
/// word zero-padded), matching the `Signature` word layout.
fn raw_words(bytes: &[u8]) -> impl Iterator<Item = u64> + '_ {
    bytes.chunks(8).map(|chunk| {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        u64::from_le_bytes(b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sig: &Signature) -> Signature {
        let mut buf = Vec::new();
        let n = encode(sig, &mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n, encoded_len(sig), "encoded_len must predict encode");
        let (out, consumed) = decode(sig.nbits(), &buf).expect("decode");
        assert_eq!(consumed, n);
        out
    }

    #[test]
    fn sparse_roundtrip_uses_position_list() {
        let sig = Signature::from_items(256, &[0, 10, 100, 255]);
        let mut buf = Vec::new();
        encode(&sig, &mut buf);
        assert_eq!(buf[0], 4);
        assert_eq!(buf.len(), 5); // flag + 4 one-byte positions
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn paper_example_256_bits_10_ones() {
        // "a 256-bit signature having only 10 1's would be encoded by a
        // sequence of 10 characters … as opposed to 32 bytes" + 1 flag byte.
        let sig = Signature::from_items(256, &(0..10).map(|i| i * 20).collect::<Vec<_>>());
        assert_eq!(encoded_len(&sig), 11);
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn wide_universe_uses_two_byte_positions() {
        let sig = Signature::from_items(1000, &[0, 999, 512]);
        assert_eq!(encoded_len(&sig), 1 + 3 * 2);
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn dense_roundtrip_uses_raw_bitmap() {
        let items: Vec<u32> = (0..200).collect();
        let sig = Signature::from_items(256, &items);
        let mut buf = Vec::new();
        encode(&sig, &mut buf);
        assert_eq!(buf[0], RAW_FLAG);
        assert_eq!(buf.len(), 1 + 32);
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn break_even_prefers_smaller_encoding() {
        // 1000-bit universe: bitmap = 125 bytes (+1 flag). Position list of
        // k items costs 1 + 2k; list wins while 2k < 125, i.e. k ≤ 62.
        let sparse = Signature::from_items(1000, &(0..62).collect::<Vec<_>>());
        assert_eq!(encoded_len(&sparse), 1 + 124);
        let dense = Signature::from_items(1000, &(0..63).collect::<Vec<_>>());
        assert_eq!(encoded_len(&dense), 126); // raw wins (tie goes to raw)
        assert_eq!(roundtrip(&sparse), sparse);
        assert_eq!(roundtrip(&dense), dense);
    }

    #[test]
    fn empty_signature_roundtrip() {
        let sig = Signature::empty(525);
        assert_eq!(encoded_len(&sig), 1);
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn encoded_never_exceeds_budget() {
        for nbits in [8u32, 64, 100, 256, 525, 1000] {
            for density in [0usize, 1, 5, 50, 95, 100] {
                let items: Vec<u32> = (0..nbits)
                    .filter(|i| (*i as usize * 100 / nbits.max(1) as usize) < density)
                    .collect();
                let sig = Signature::from_items(nbits, &items);
                assert!(encoded_len(&sig) <= max_encoded_len(nbits));
                assert_eq!(roundtrip(&sig), sig);
            }
        }
    }

    #[test]
    fn decode_truncated_fails() {
        let sig = Signature::from_items(1000, &[1, 2, 3]);
        let mut buf = Vec::new();
        encode(&sig, &mut buf);
        assert_eq!(
            decode(1000, &buf[..buf.len() - 1]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(decode(1000, &[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_position_out_of_range_fails() {
        // Hand-craft a 1-position list pointing past the universe.
        let buf = [1u8, 9, 0]; // position 9 in a 8-bit universe (2-byte? no: 8 ≤ 256 → 1-byte)
        let buf1 = [1u8, 9];
        assert!(matches!(
            decode(8, &buf1),
            Err(DecodeError::PositionOutOfRange {
                position: 9,
                nbits: 8
            })
        ));
        let _ = buf;
    }

    #[test]
    fn sequential_decoding_of_concatenated_signatures() {
        let sigs = [
            Signature::from_items(525, &[1, 2, 3]),
            Signature::from_items(525, &(0..300).collect::<Vec<_>>()),
            Signature::empty(525),
        ];
        let mut buf = Vec::new();
        for s in &sigs {
            encode(s, &mut buf);
        }
        let mut off = 0;
        for s in &sigs {
            let (got, used) = decode(525, &buf[off..]).unwrap();
            assert_eq!(&got, s);
            off += used;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn wide_universes_use_wider_positions() {
        // 3-byte positions for ≤ 2^24 items, 4-byte beyond: ids above
        // 65535 must survive the roundtrip (a 2-byte encoding would
        // silently truncate them).
        for (nbits, width) in [(100_000u32, 3usize), (20_000_000, 4)] {
            let items = [0u32, 65_536, nbits - 1];
            let sig = Signature::from_items(nbits, &items);
            assert_eq!(encoded_len(&sig), 1 + 3 * width, "nbits={nbits}");
            assert_eq!(roundtrip(&sig), sig);
        }
    }

    #[test]
    fn boundary_universe_sizes() {
        for nbits in [256u32, 257, 65_536, 65_537] {
            let sig = Signature::from_items(nbits, &[0, nbits / 2, nbits - 1]);
            assert_eq!(roundtrip(&sig), sig);
        }
    }

    fn view_of(sig: &Signature) -> (Vec<u8>, usize) {
        let mut buf = Vec::new();
        let n = encode(sig, &mut buf);
        (buf, n)
    }

    #[test]
    fn view_evaluates_without_decoding() {
        let nbits = 525;
        let entry = Signature::from_items(nbits, &[3, 17, 64, 200, 511]);
        let q = Signature::from_items(nbits, &[17, 64, 300]);
        let q_items = q.items();
        let (buf, n) = view_of(&entry);
        let (view, used) = EncodedView::parse(nbits, &buf).unwrap();
        assert_eq!(used, n);
        assert!(view.is_list());
        assert_eq!(view.count(), 5);
        assert_eq!(view.and_count(&q), 2);
        assert_eq!(view.and_count_items(&q, &q_items), 2);
        assert!(!view.contains(&q, &q_items));
        assert!(!view.covered_by(&q));
        assert_eq!(view.to_signature(), entry);

        let sup = entry.or(&q);
        assert!(view.covered_by(&sup));
        let sub = Signature::from_items(nbits, &[17, 511]);
        assert!(view.contains(&sub, &sub.items()));
    }

    #[test]
    fn view_raw_form_matches_bitmap_semantics() {
        let nbits = 256;
        let entry = Signature::from_items(nbits, &(0..200).collect::<Vec<_>>());
        let q = Signature::from_items(nbits, &[5, 100, 250]);
        let (buf, _) = view_of(&entry);
        let (view, _) = EncodedView::parse(nbits, &buf).unwrap();
        assert!(!view.is_list());
        assert_eq!(view.count(), entry.count());
        assert_eq!(view.and_count(&q), entry.and_count(&q));
        assert_eq!(view.and_count_items(&q, &q.items()), entry.and_count(&q));
        assert_eq!(view.contains(&q, &q.items()), entry.contains(&q));
        assert_eq!(view.covered_by(&q), q.contains(&entry));
        assert_eq!(view.to_signature(), entry);
        let mut pos = Vec::new();
        view.positions_into(&mut pos);
        assert_eq!(pos, entry.items());
    }

    #[test]
    fn view_parse_rejects_bad_encodings() {
        assert!(matches!(
            EncodedView::parse(1000, &[]),
            Err(DecodeError::Truncated)
        ));
        assert!(matches!(
            EncodedView::parse(1000, &[3, 1, 0]),
            Err(DecodeError::Truncated)
        ));
        assert!(matches!(
            EncodedView::parse(8, &[1, 9]),
            Err(DecodeError::PositionOutOfRange {
                position: 9,
                nbits: 8
            })
        ));
    }

    #[test]
    fn view_equals_discriminates() {
        let nbits = 525;
        let a = Signature::from_items(nbits, &[1, 2, 3]);
        let (buf, _) = view_of(&a);
        let (view, _) = EncodedView::parse(nbits, &buf).unwrap();
        assert!(view.equals(&a));
        assert!(!view.equals(&Signature::from_items(nbits, &[1, 2, 4])));
        assert!(!view.equals(&Signature::from_items(nbits, &[1, 2])));
        assert!(!view.equals(&Signature::from_items(nbits, &[1, 2, 3, 4])));
    }

    #[test]
    fn gallop_handles_adversarial_runs() {
        // Long runs then gaps: the doubling probe must bracket correctly
        // at every transition.
        let nbits = 65_536;
        let mut items: Vec<u32> = (0..100).collect();
        items.extend(5_000..5_050);
        items.extend([40_000, 40_002, 40_004]);
        items.push(65_535);
        let entry = Signature::from_items(nbits, &items);
        let (buf, _) = view_of(&entry);
        let (view, _) = EncodedView::parse(nbits, &buf).unwrap();
        for probe_items in [
            vec![0u32, 99, 100, 4_999, 5_000, 5_049, 5_050, 65_535],
            vec![50u32],
            vec![65_535u32],
            (0..200).collect::<Vec<_>>(),
            vec![39_999u32, 40_001, 40_003, 40_005],
        ] {
            let q = Signature::from_items(nbits, &probe_items);
            assert_eq!(
                view.and_count_items(&q, &probe_items),
                entry.and_count(&q),
                "items {probe_items:?}"
            );
            assert_eq!(
                view.contains(&q, &probe_items),
                entry.contains(&q),
                "items {probe_items:?}"
            );
        }
    }

    #[test]
    fn list_len_254_still_encodable() {
        let items: Vec<u32> = (0..254).collect();
        let sig = Signature::from_items(2000, &items);
        // Raw bitmap would be 251 bytes; list is 1 + 508 → raw wins, but the
        // encoder must handle the boundary without panicking.
        assert_eq!(roundtrip(&sig), sig);
        let sig255 = Signature::from_items(2000, &(0..255).collect::<Vec<_>>());
        assert_eq!(roundtrip(&sig255), sig255);
    }
}
