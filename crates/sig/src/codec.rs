//! Signature compression (§3.2 of the paper).
//!
//! Sparse signatures waste space as raw bitmaps: a 256-bit signature with
//! ten 1s costs 32 bytes raw but only 10 positions. The paper's scheme
//! prefixes every stored signature with a *flag byte*; a flag value below
//! the sentinel means "the next `flag` entries are the positions of the set
//! bits", and the sentinel means "a raw bitmap follows". The encoder picks
//! whichever form is smaller, so the encoded size never exceeds
//! `1 + bitmap_bytes`.
//!
//! Positions are stored little-endian at the smallest width that can
//! address the universe: one byte up to 256 items, two up to 65 536 (the
//! paper's datasets, at 525 and 1000 items, use this form; its "10 bytes
//! for 10 ones" example is the 256-item one-byte form), then three and
//! four bytes for larger universes.

use crate::Signature;

/// Flag value marking a raw-bitmap encoding. Position-list encodings store
/// the number of set bits in the flag, so they can describe at most
/// [`MAX_LIST_LEN`] positions.
pub const RAW_FLAG: u8 = 0xFF;

/// Largest number of positions a position-list encoding can hold.
pub const MAX_LIST_LEN: u32 = (RAW_FLAG - 1) as u32;

/// Errors produced when decoding a stored signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the encoding was complete.
    Truncated,
    /// A position-list entry named an item outside the universe.
    PositionOutOfRange { position: u32, nbits: u32 },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "signature encoding truncated"),
            DecodeError::PositionOutOfRange { position, nbits } => {
                write!(f, "position {position} out of {nbits}-bit universe")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bytes per stored position for a universe of `nbits` items: the
/// smallest little-endian width that can address every item.
#[inline]
fn pos_width(nbits: u32) -> usize {
    if nbits <= 1 << 8 {
        1
    } else if nbits <= 1 << 16 {
        2
    } else if nbits <= 1 << 24 {
        3
    } else {
        4
    }
}

/// Bytes of a raw bitmap for a universe of `nbits` items.
#[inline]
pub fn bitmap_bytes(nbits: u32) -> usize {
    (nbits as usize).div_ceil(8)
}

/// The worst-case encoded size for any signature over `nbits` items
/// (flag byte + raw bitmap). Node layouts budget this per entry so a node
/// always fits its page regardless of how entries compress.
#[inline]
pub fn max_encoded_len(nbits: u32) -> usize {
    1 + bitmap_bytes(nbits)
}

/// The exact encoded size of `sig` under the adaptive scheme.
pub fn encoded_len(sig: &Signature) -> usize {
    let ones = sig.count();
    let raw = max_encoded_len(sig.nbits());
    if ones <= MAX_LIST_LEN {
        let list = 1 + ones as usize * pos_width(sig.nbits());
        list.min(raw)
    } else {
        raw
    }
}

/// Encodes `sig` into `out`, returning the number of bytes written.
///
/// The universe size is *not* stored; the decoder must know it (in the
/// SG-tree it lives once in the node header rather than per entry).
pub fn encode(sig: &Signature, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    let ones = sig.count();
    let nbits = sig.nbits();
    let w = pos_width(nbits);
    let list_len = 1 + ones as usize * w;
    if ones <= MAX_LIST_LEN && list_len < max_encoded_len(nbits) {
        out.push(ones as u8);
        for item in sig.ones() {
            out.extend_from_slice(&item.to_le_bytes()[..w]);
        }
    } else {
        out.push(RAW_FLAG);
        let mut remaining = bitmap_bytes(nbits);
        for word in sig.words() {
            let bytes = word.to_le_bytes();
            let take = remaining.min(8);
            out.extend_from_slice(&bytes[..take]);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
    }
    out.len() - start
}

/// Decodes one signature from the front of `buf`, returning it and the
/// number of bytes consumed.
pub fn decode(nbits: u32, buf: &[u8]) -> Result<(Signature, usize), DecodeError> {
    let (&flag, rest) = buf.split_first().ok_or(DecodeError::Truncated)?;
    if flag == RAW_FLAG {
        let nbytes = bitmap_bytes(nbits);
        if rest.len() < nbytes {
            return Err(DecodeError::Truncated);
        }
        let mut words = vec![0u64; Signature::words_for(nbits)].into_boxed_slice();
        for (i, chunk) in rest[..nbytes].chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            words[i] = u64::from_le_bytes(b);
        }
        Ok((Signature::from_words(nbits, words), 1 + nbytes))
    } else {
        let w = pos_width(nbits);
        let n = flag as usize;
        if rest.len() < n * w {
            return Err(DecodeError::Truncated);
        }
        let mut sig = Signature::empty(nbits);
        for i in 0..n {
            let mut bytes = [0u8; 4];
            bytes[..w].copy_from_slice(&rest[w * i..w * (i + 1)]);
            let pos = u32::from_le_bytes(bytes);
            if pos >= nbits {
                return Err(DecodeError::PositionOutOfRange {
                    position: pos,
                    nbits,
                });
            }
            sig.set(pos);
        }
        Ok((sig, 1 + n * w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sig: &Signature) -> Signature {
        let mut buf = Vec::new();
        let n = encode(sig, &mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n, encoded_len(sig), "encoded_len must predict encode");
        let (out, consumed) = decode(sig.nbits(), &buf).expect("decode");
        assert_eq!(consumed, n);
        out
    }

    #[test]
    fn sparse_roundtrip_uses_position_list() {
        let sig = Signature::from_items(256, &[0, 10, 100, 255]);
        let mut buf = Vec::new();
        encode(&sig, &mut buf);
        assert_eq!(buf[0], 4);
        assert_eq!(buf.len(), 5); // flag + 4 one-byte positions
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn paper_example_256_bits_10_ones() {
        // "a 256-bit signature having only 10 1's would be encoded by a
        // sequence of 10 characters … as opposed to 32 bytes" + 1 flag byte.
        let sig = Signature::from_items(256, &(0..10).map(|i| i * 20).collect::<Vec<_>>());
        assert_eq!(encoded_len(&sig), 11);
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn wide_universe_uses_two_byte_positions() {
        let sig = Signature::from_items(1000, &[0, 999, 512]);
        assert_eq!(encoded_len(&sig), 1 + 3 * 2);
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn dense_roundtrip_uses_raw_bitmap() {
        let items: Vec<u32> = (0..200).collect();
        let sig = Signature::from_items(256, &items);
        let mut buf = Vec::new();
        encode(&sig, &mut buf);
        assert_eq!(buf[0], RAW_FLAG);
        assert_eq!(buf.len(), 1 + 32);
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn break_even_prefers_smaller_encoding() {
        // 1000-bit universe: bitmap = 125 bytes (+1 flag). Position list of
        // k items costs 1 + 2k; list wins while 2k < 125, i.e. k ≤ 62.
        let sparse = Signature::from_items(1000, &(0..62).collect::<Vec<_>>());
        assert_eq!(encoded_len(&sparse), 1 + 124);
        let dense = Signature::from_items(1000, &(0..63).collect::<Vec<_>>());
        assert_eq!(encoded_len(&dense), 126); // raw wins (tie goes to raw)
        assert_eq!(roundtrip(&sparse), sparse);
        assert_eq!(roundtrip(&dense), dense);
    }

    #[test]
    fn empty_signature_roundtrip() {
        let sig = Signature::empty(525);
        assert_eq!(encoded_len(&sig), 1);
        assert_eq!(roundtrip(&sig), sig);
    }

    #[test]
    fn encoded_never_exceeds_budget() {
        for nbits in [8u32, 64, 100, 256, 525, 1000] {
            for density in [0usize, 1, 5, 50, 95, 100] {
                let items: Vec<u32> = (0..nbits)
                    .filter(|i| (*i as usize * 100 / nbits.max(1) as usize) < density)
                    .collect();
                let sig = Signature::from_items(nbits, &items);
                assert!(encoded_len(&sig) <= max_encoded_len(nbits));
                assert_eq!(roundtrip(&sig), sig);
            }
        }
    }

    #[test]
    fn decode_truncated_fails() {
        let sig = Signature::from_items(1000, &[1, 2, 3]);
        let mut buf = Vec::new();
        encode(&sig, &mut buf);
        assert_eq!(
            decode(1000, &buf[..buf.len() - 1]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(decode(1000, &[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_position_out_of_range_fails() {
        // Hand-craft a 1-position list pointing past the universe.
        let buf = [1u8, 9, 0]; // position 9 in a 8-bit universe (2-byte? no: 8 ≤ 256 → 1-byte)
        let buf1 = [1u8, 9];
        assert!(matches!(
            decode(8, &buf1),
            Err(DecodeError::PositionOutOfRange {
                position: 9,
                nbits: 8
            })
        ));
        let _ = buf;
    }

    #[test]
    fn sequential_decoding_of_concatenated_signatures() {
        let sigs = [
            Signature::from_items(525, &[1, 2, 3]),
            Signature::from_items(525, &(0..300).collect::<Vec<_>>()),
            Signature::empty(525),
        ];
        let mut buf = Vec::new();
        for s in &sigs {
            encode(s, &mut buf);
        }
        let mut off = 0;
        for s in &sigs {
            let (got, used) = decode(525, &buf[off..]).unwrap();
            assert_eq!(&got, s);
            off += used;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn wide_universes_use_wider_positions() {
        // 3-byte positions for ≤ 2^24 items, 4-byte beyond: ids above
        // 65535 must survive the roundtrip (a 2-byte encoding would
        // silently truncate them).
        for (nbits, width) in [(100_000u32, 3usize), (20_000_000, 4)] {
            let items = [0u32, 65_536, nbits - 1];
            let sig = Signature::from_items(nbits, &items);
            assert_eq!(encoded_len(&sig), 1 + 3 * width, "nbits={nbits}");
            assert_eq!(roundtrip(&sig), sig);
        }
    }

    #[test]
    fn boundary_universe_sizes() {
        for nbits in [256u32, 257, 65_536, 65_537] {
            let sig = Signature::from_items(nbits, &[0, nbits / 2, nbits - 1]);
            assert_eq!(roundtrip(&sig), sig);
        }
    }

    #[test]
    fn list_len_254_still_encodable() {
        let items: Vec<u32> = (0..254).collect();
        let sig = Signature::from_items(2000, &items);
        // Raw bitmap would be 251 bytes; list is 1 + 508 → raw wins, but the
        // encoder must handle the boundary without panicking.
        assert_eq!(roundtrip(&sig), sig);
        let sig255 = Signature::from_items(2000, &(0..255).collect::<Vec<_>>());
        assert_eq!(roundtrip(&sig255), sig255);
    }
}
