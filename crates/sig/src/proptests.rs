//! Property-based tests for the signature kernel: algebraic laws of the set
//! operations, metric axioms, lower-bound validity, and codec roundtrips.

use crate::codec;
use crate::{Metric, MetricKind, Signature};
use proptest::prelude::*;

const NBITS: u32 = 525;

fn arb_items() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..NBITS, 0..80)
}

fn arb_sig() -> impl Strategy<Value = Signature> {
    arb_items().prop_map(|items| Signature::from_items(NBITS, &items))
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![
        Just(Metric::hamming()),
        Just(Metric::jaccard()),
        Just(Metric::new(MetricKind::Dice)),
        Just(Metric::new(MetricKind::Overlap)),
    ]
}

proptest! {
    #[test]
    fn union_is_commutative_and_covers(a in arb_sig(), b in arb_sig()) {
        let ab = a.or(&b);
        let ba = b.or(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.contains(&a));
        prop_assert!(ab.contains(&b));
        prop_assert_eq!(ab.count(), a.union_count(&b));
    }

    #[test]
    fn inclusion_exclusion(a in arb_sig(), b in arb_sig()) {
        prop_assert_eq!(
            a.union_count(&b) + a.and_count(&b),
            a.count() + b.count()
        );
        prop_assert_eq!(a.andnot_count(&b), a.count() - a.and_count(&b));
        prop_assert_eq!(
            a.hamming(&b),
            a.andnot_count(&b) + b.andnot_count(&a)
        );
    }

    #[test]
    fn containment_iff_andnot_zero(a in arb_sig(), b in arb_sig()) {
        prop_assert_eq!(a.contains(&b), b.andnot_count(&a) == 0);
    }

    #[test]
    fn items_roundtrip(items in arb_items()) {
        let sig = Signature::from_items(NBITS, &items);
        let mut sorted: Vec<u32> = items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sig.items(), sorted);
    }

    #[test]
    fn enlargement_zero_iff_contained(a in arb_sig(), b in arb_sig()) {
        prop_assert_eq!(a.enlargement(&b) == 0, a.contains(&b));
    }

    #[test]
    fn codec_roundtrip(sig in arb_sig()) {
        let mut buf = Vec::new();
        let n = codec::encode(&sig, &mut buf);
        prop_assert_eq!(n, codec::encoded_len(&sig));
        prop_assert!(n <= codec::max_encoded_len(NBITS));
        let (back, used) = codec::decode(NBITS, &buf).unwrap();
        prop_assert_eq!(used, n);
        prop_assert_eq!(back, sig);
    }

    #[test]
    fn codec_roundtrip_dense(items in prop::collection::vec(0..NBITS, 200..500)) {
        let sig = Signature::from_items(NBITS, &items);
        let mut buf = Vec::new();
        codec::encode(&sig, &mut buf);
        let (back, _) = codec::decode(NBITS, &buf).unwrap();
        prop_assert_eq!(back, sig);
    }

    #[test]
    fn metric_axioms(m in arb_metric(), a in arb_sig(), b in arb_sig()) {
        prop_assert!(m.dist(&a, &a) <= 1e-12, "identity");
        prop_assert!((m.dist(&a, &b) - m.dist(&b, &a)).abs() < 1e-12, "symmetry");
        prop_assert!(m.dist(&a, &b) >= 0.0, "non-negativity");
    }

    #[test]
    fn hamming_triangle_inequality(a in arb_sig(), b in arb_sig(), c in arb_sig()) {
        let m = Metric::hamming();
        prop_assert!(m.dist(&a, &c) <= m.dist(&a, &b) + m.dist(&b, &c) + 1e-9);
    }

    #[test]
    fn jaccard_triangle_inequality(a in arb_sig(), b in arb_sig(), c in arb_sig()) {
        let m = Metric::jaccard();
        prop_assert!(m.dist(&a, &c) <= m.dist(&a, &b) + m.dist(&b, &c) + 1e-9);
    }

    #[test]
    fn mindist_is_valid_lower_bound(
        m in arb_metric(),
        q in arb_sig(),
        ts in prop::collection::vec(arb_items(), 1..12),
    ) {
        let sigs: Vec<Signature> =
            ts.iter().map(|t| Signature::from_items(NBITS, t)).collect();
        let mut entry = Signature::empty(NBITS);
        for s in &sigs {
            entry.or_assign(s);
        }
        let lb = m.mindist(&q, &entry);
        for s in &sigs {
            prop_assert!(
                lb <= m.dist(&q, s) + 1e-9,
                "{:?}: lb {} > dist {}", m.kind(), lb, m.dist(&q, s)
            );
        }
    }

    #[test]
    fn fixed_dim_mindist_valid(
        kind in prop_oneof![
            Just(MetricKind::Hamming),
            Just(MetricKind::Jaccard),
            Just(MetricKind::Dice),
            Just(MetricKind::Overlap),
        ],
        q in arb_sig(),
        seeds in prop::collection::vec(prop::collection::vec(0..NBITS, 8), 1..10),
    ) {
        // Build transactions with exactly 8 distinct items each.
        let d = 8u32;
        let sigs: Vec<Signature> = seeds
            .iter()
            .map(|s| {
                let mut sig = Signature::from_items(NBITS, s);
                let mut next = 0u32;
                while sig.count() < d {
                    sig.set(next);
                    next += 1;
                }
                sig
            })
            .collect();
        let m = Metric::with_fixed_dim(kind, d);
        let mut entry = Signature::empty(NBITS);
        for s in &sigs {
            entry.or_assign(s);
        }
        let lb = m.mindist(&q, &entry);
        for s in &sigs {
            prop_assert!(
                lb <= m.dist(&q, s) + 1e-9,
                "{:?}/d={}: lb {} > dist {}", kind, d, lb, m.dist(&q, s)
            );
        }
    }

    #[test]
    fn mindist_monotone_under_entry_growth(
        m in arb_metric(), q in arb_sig(), a in arb_sig(), b in arb_sig()
    ) {
        // Growing an entry can only loosen (decrease) the bound.
        let grown = a.or(&b);
        prop_assert!(m.mindist(&q, &grown) <= m.mindist(&q, &a) + 1e-12);
    }

    #[test]
    fn gray_key_total_order_consistent(a in arb_sig(), b in arb_sig()) {
        // Keys are equal iff the signatures are equal (gray decode is a
        // bijection on the full bitmap).
        prop_assert_eq!(a.gray_key() == b.gray_key(), a == b);
    }
}
