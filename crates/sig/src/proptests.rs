//! Property-based tests for the signature kernel: algebraic laws of the set
//! operations, metric axioms, lower-bound validity, and codec roundtrips.

use crate::codec;
use crate::{Metric, MetricKind, Signature};
use proptest::prelude::*;

const NBITS: u32 = 525;

fn arb_items() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..NBITS, 0..80)
}

fn arb_sig() -> impl Strategy<Value = Signature> {
    arb_items().prop_map(|items| Signature::from_items(NBITS, &items))
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![
        Just(Metric::hamming()),
        Just(Metric::jaccard()),
        Just(Metric::new(MetricKind::Dice)),
        Just(Metric::new(MetricKind::Overlap)),
    ]
}

proptest! {
    #[test]
    fn union_is_commutative_and_covers(a in arb_sig(), b in arb_sig()) {
        let ab = a.or(&b);
        let ba = b.or(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.contains(&a));
        prop_assert!(ab.contains(&b));
        prop_assert_eq!(ab.count(), a.union_count(&b));
    }

    #[test]
    fn inclusion_exclusion(a in arb_sig(), b in arb_sig()) {
        prop_assert_eq!(
            a.union_count(&b) + a.and_count(&b),
            a.count() + b.count()
        );
        prop_assert_eq!(a.andnot_count(&b), a.count() - a.and_count(&b));
        prop_assert_eq!(
            a.hamming(&b),
            a.andnot_count(&b) + b.andnot_count(&a)
        );
    }

    #[test]
    fn containment_iff_andnot_zero(a in arb_sig(), b in arb_sig()) {
        prop_assert_eq!(a.contains(&b), b.andnot_count(&a) == 0);
    }

    #[test]
    fn items_roundtrip(items in arb_items()) {
        let sig = Signature::from_items(NBITS, &items);
        let mut sorted: Vec<u32> = items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sig.items(), sorted);
    }

    #[test]
    fn enlargement_zero_iff_contained(a in arb_sig(), b in arb_sig()) {
        prop_assert_eq!(a.enlargement(&b) == 0, a.contains(&b));
    }

    #[test]
    fn codec_roundtrip(sig in arb_sig()) {
        let mut buf = Vec::new();
        let n = codec::encode(&sig, &mut buf);
        prop_assert_eq!(n, codec::encoded_len(&sig));
        prop_assert!(n <= codec::max_encoded_len(NBITS));
        let (back, used) = codec::decode(NBITS, &buf).unwrap();
        prop_assert_eq!(used, n);
        prop_assert_eq!(back, sig);
    }

    #[test]
    fn codec_roundtrip_dense(items in prop::collection::vec(0..NBITS, 200..500)) {
        let sig = Signature::from_items(NBITS, &items);
        let mut buf = Vec::new();
        codec::encode(&sig, &mut buf);
        let (back, _) = codec::decode(NBITS, &buf).unwrap();
        prop_assert_eq!(back, sig);
    }

    #[test]
    fn metric_axioms(m in arb_metric(), a in arb_sig(), b in arb_sig()) {
        prop_assert!(m.dist(&a, &a) <= 1e-12, "identity");
        prop_assert!((m.dist(&a, &b) - m.dist(&b, &a)).abs() < 1e-12, "symmetry");
        prop_assert!(m.dist(&a, &b) >= 0.0, "non-negativity");
    }

    #[test]
    fn hamming_triangle_inequality(a in arb_sig(), b in arb_sig(), c in arb_sig()) {
        let m = Metric::hamming();
        prop_assert!(m.dist(&a, &c) <= m.dist(&a, &b) + m.dist(&b, &c) + 1e-9);
    }

    #[test]
    fn jaccard_triangle_inequality(a in arb_sig(), b in arb_sig(), c in arb_sig()) {
        let m = Metric::jaccard();
        prop_assert!(m.dist(&a, &c) <= m.dist(&a, &b) + m.dist(&b, &c) + 1e-9);
    }

    #[test]
    fn mindist_is_valid_lower_bound(
        m in arb_metric(),
        q in arb_sig(),
        ts in prop::collection::vec(arb_items(), 1..12),
    ) {
        let sigs: Vec<Signature> =
            ts.iter().map(|t| Signature::from_items(NBITS, t)).collect();
        let mut entry = Signature::empty(NBITS);
        for s in &sigs {
            entry.or_assign(s);
        }
        let lb = m.mindist(&q, &entry);
        for s in &sigs {
            prop_assert!(
                lb <= m.dist(&q, s) + 1e-9,
                "{:?}: lb {} > dist {}", m.kind(), lb, m.dist(&q, s)
            );
        }
    }

    #[test]
    fn fixed_dim_mindist_valid(
        kind in prop_oneof![
            Just(MetricKind::Hamming),
            Just(MetricKind::Jaccard),
            Just(MetricKind::Dice),
            Just(MetricKind::Overlap),
        ],
        q in arb_sig(),
        seeds in prop::collection::vec(prop::collection::vec(0..NBITS, 8), 1..10),
    ) {
        // Build transactions with exactly 8 distinct items each.
        let d = 8u32;
        let sigs: Vec<Signature> = seeds
            .iter()
            .map(|s| {
                let mut sig = Signature::from_items(NBITS, s);
                let mut next = 0u32;
                while sig.count() < d {
                    sig.set(next);
                    next += 1;
                }
                sig
            })
            .collect();
        let m = Metric::with_fixed_dim(kind, d);
        let mut entry = Signature::empty(NBITS);
        for s in &sigs {
            entry.or_assign(s);
        }
        let lb = m.mindist(&q, &entry);
        for s in &sigs {
            prop_assert!(
                lb <= m.dist(&q, s) + 1e-9,
                "{:?}/d={}: lb {} > dist {}", kind, d, lb, m.dist(&q, s)
            );
        }
    }

    #[test]
    fn mindist_monotone_under_entry_growth(
        m in arb_metric(), q in arb_sig(), a in arb_sig(), b in arb_sig()
    ) {
        // Growing an entry can only loosen (decrease) the bound.
        let grown = a.or(&b);
        prop_assert!(m.mindist(&q, &grown) <= m.mindist(&q, &a) + 1e-12);
    }

    #[test]
    fn gray_key_total_order_consistent(a in arb_sig(), b in arb_sig()) {
        // Keys are equal iff the signatures are equal (gray decode is a
        // bijection on the full bitmap).
        prop_assert_eq!(a.gray_key() == b.gray_key(), a == b);
    }
}

// ---------------------------------------------------------------------------
// Kernel differential harness: every compiled-in kernel variant must agree
// with the scalar reference exactly — on the raw lane ops and on everything
// derived from them (count, contains, Hamming distance, metric dist and
// mindist down to the f64 bit pattern).
// ---------------------------------------------------------------------------

/// Universe widths straddling word boundaries (63/64/65 exercise a 1-word
/// lane with and without tail masking; 127/128 the 2-word edge) plus the
/// paper's dataset widths.
const WIDTHS: [u32; 8] = [63, 64, 65, 127, 128, 256, 525, 1000];

/// Builds a signature over `nbits` items in one of four shapes: empty,
/// full, sparse (a handful of items), or as dense as `raw` allows.
fn shaped_sig(nbits: u32, raw: &[u32], shape: u8) -> Signature {
    match shape % 4 {
        0 => Signature::empty(nbits),
        1 => Signature::from_iter(nbits, 0..nbits),
        2 => Signature::from_iter(nbits, raw.iter().take(6).map(|i| i % nbits)),
        _ => Signature::from_iter(nbits, raw.iter().map(|i| i % nbits)),
    }
}

fn arb_raw_items() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..1_000_000, 0..300)
}

proptest! {
    #[test]
    fn kernel_variants_agree_with_scalar(
        w_idx in 0usize..WIDTHS.len(),
        raw_a in arb_raw_items(),
        shape_a in 0u8..4,
        raw_b in arb_raw_items(),
        shape_b in 0u8..4,
    ) {
        use crate::kernels::{self, scalar};

        let nbits = WIDTHS[w_idx];
        let a = shaped_sig(nbits, &raw_a, shape_a);
        let b = shaped_sig(nbits, &raw_b, shape_b);
        let (wa, wb) = (a.words(), b.words());
        for &kind in kernels::variants() {
            let k = kernels::for_kind(kind);
            prop_assert_eq!(k.count(wa), scalar::count(wa), "{:?} count", kind);
            prop_assert_eq!(
                k.and_count(wa, wb), scalar::and_count(wa, wb),
                "{:?} and_count", kind
            );
            prop_assert_eq!(
                k.andnot_count(wa, wb), scalar::andnot_count(wa, wb),
                "{:?} andnot_count", kind
            );
            prop_assert_eq!(
                k.or_count(wa, wb), scalar::or_count(wa, wb),
                "{:?} or_count", kind
            );
            prop_assert_eq!(
                k.xor_count(wa, wb), scalar::xor_count(wa, wb),
                "{:?} xor_count (hamming)", kind
            );
            prop_assert_eq!(
                k.contains(wa, wb), scalar::contains(wa, wb),
                "{:?} contains", kind
            );
            prop_assert_eq!(
                k.contains(wb, wa), scalar::contains(wb, wa),
                "{:?} contains rev", kind
            );
        }
    }

    #[test]
    fn kernel_variants_agree_on_derived_metrics(
        w_idx in 0usize..WIDTHS.len(),
        raw_q in arb_raw_items(),
        shape_q in 0u8..4,
        raw_e in arb_raw_items(),
        shape_e in 0u8..4,
        m in arb_metric(),
    ) {
        use crate::kernels::{self, scalar};

        let nbits = WIDTHS[w_idx];
        let q = shaped_sig(nbits, &raw_q, shape_q);
        let e = shaped_sig(nbits, &raw_e, shape_e);
        let (wq, we) = (q.words(), e.words());
        // Reference distances from scalar counts.
        let dist_ref = m.dist_from_counts(
            scalar::count(wq), scalar::count(we), scalar::and_count(wq, we),
        );
        let mindist_ref =
            m.mindist_from_counts(scalar::count(wq), scalar::and_count(wq, we));
        for &kind in kernels::variants() {
            let k = kernels::for_kind(kind);
            let dist =
                m.dist_from_counts(k.count(wq), k.count(we), k.and_count(wq, we));
            let mindist =
                m.mindist_from_counts(k.count(wq), k.and_count(wq, we));
            // Exact integer counts feed identical arithmetic: require
            // bit-identical f64s, not approximate equality.
            prop_assert_eq!(
                dist.to_bits(), dist_ref.to_bits(),
                "{:?} dist {} vs {}", kind, dist, dist_ref
            );
            prop_assert_eq!(
                mindist.to_bits(), mindist_ref.to_bits(),
                "{:?} mindist {} vs {}", kind, mindist, mindist_ref
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Codec: encode/decode round-trips, and predicates evaluated directly on
// the compressed form must equal the decompressed answers bit for bit.
// ---------------------------------------------------------------------------

/// Run-structured items: consecutive runs separated by gaps, the
/// adversarial shape for the galloping search (long stretches where every
/// probe hits, then jumps).
fn arb_run_items() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..1_000_000, 1u32..40), 0..12)
}

fn sig_from_runs(nbits: u32, runs: &[(u32, u32)]) -> Signature {
    let mut sig = Signature::empty(nbits);
    for &(start, len) in runs {
        let start = start % nbits;
        for i in start..(start + len).min(nbits) {
            sig.set(i);
        }
    }
    sig
}

proptest! {
    #[test]
    fn codec_view_matches_decoded_semantics(
        w_idx in 0usize..WIDTHS.len(),
        raw_e in arb_raw_items(),
        shape_e in 0u8..4,
        raw_q in arb_raw_items(),
        shape_q in 0u8..4,
    ) {
        let nbits = WIDTHS[w_idx];
        let entry = shaped_sig(nbits, &raw_e, shape_e);
        let q = shaped_sig(nbits, &raw_q, shape_q);
        let q_items = q.items();

        let mut buf = Vec::new();
        let n = codec::encode(&entry, &mut buf);
        let (view, used) = codec::EncodedView::parse(nbits, &buf).unwrap();
        prop_assert_eq!(used, n);

        // Round-trip through the view.
        prop_assert_eq!(view.to_signature(), entry.clone());
        let mut pos = Vec::new();
        view.positions_into(&mut pos);
        prop_assert_eq!(pos, entry.items());

        // Predicates on the compressed form == decompressed answers.
        prop_assert_eq!(view.count(), entry.count());
        prop_assert_eq!(view.and_count(&q), entry.and_count(&q));
        prop_assert_eq!(view.and_count_items(&q, &q_items), entry.and_count(&q));
        prop_assert_eq!(view.contains(&q, &q_items), entry.contains(&q));
        prop_assert_eq!(view.covered_by(&q), q.contains(&entry));
        prop_assert_eq!(view.equals(&q), entry == q);
    }

    #[test]
    fn codec_view_matches_on_run_patterns(
        w_idx in 0usize..WIDTHS.len(),
        runs_e in arb_run_items(),
        runs_q in arb_run_items(),
    ) {
        let nbits = WIDTHS[w_idx];
        let entry = sig_from_runs(nbits, &runs_e);
        let q = sig_from_runs(nbits, &runs_q);
        let q_items = q.items();

        let mut buf = Vec::new();
        codec::encode(&entry, &mut buf);
        let (view, _) = codec::EncodedView::parse(nbits, &buf).unwrap();

        prop_assert_eq!(view.to_signature(), entry.clone());
        prop_assert_eq!(view.count(), entry.count());
        prop_assert_eq!(view.and_count(&q), entry.and_count(&q));
        prop_assert_eq!(view.and_count_items(&q, &q_items), entry.and_count(&q));
        prop_assert_eq!(view.contains(&q, &q_items), entry.contains(&q));
        prop_assert_eq!(view.covered_by(&q), q.contains(&entry));

        // Distances derived from compressed-form counts are bit-identical
        // to the decode-first path.
        let m = Metric::hamming();
        let decoded = view.to_signature();
        let from_view =
            m.mindist_from_counts(q.count(), view.and_count_items(&q, &q_items));
        prop_assert_eq!(from_view.to_bits(), m.mindist(&q, &decoded).to_bits());
    }
}
