//! Bit-parallel visit kernels over contiguous `u64` lanes.
//!
//! Every hot signature operation — popcount ("area"), intersection /
//! union / difference cardinality, containment, Hamming — reduces to a
//! word-wise sweep over two equal-length `&[u64]` slices. This module
//! provides three interchangeable implementations of that sweep:
//!
//! * [`scalar`] — the straightforward one-word-at-a-time loop. The
//!   reference semantics; every other variant must agree with it bit for
//!   bit (see the differential proptests in `proptests.rs`).
//! * [`unrolled`] — four-words-per-iteration loops with independent
//!   accumulators, giving the CPU real instruction-level parallelism
//!   without any platform-specific code.
//! * [`simd`] — `std::arch` x86-64 kernels: an AVX2 path (4 words per
//!   vector op, popcounts via `popcnt` on the extracted words) chosen by
//!   runtime feature detection, with an SSE2 fallback that is always
//!   available on x86-64. Compiled out on other architectures or when the
//!   `no-simd` feature is enabled (the Miri CI job uses that).
//!
//! # Selection
//!
//! The active variant is resolved once, on first use:
//! 1. the `SG_KERNEL` environment variable (`scalar` | `unrolled` |
//!    `simd`) if set to a recognized value;
//! 2. otherwise auto-detection — `simd` when AVX2 is available, else
//!    `unrolled`.
//!
//! [`force`] overrides the choice at runtime (used by the differential
//! tests to sweep every variant in one process); [`active`] returns the
//! current kernel table. All variants produce *identical* results — the
//! counts are exact integers — so query answers are byte-identical no
//! matter which kernel serves them.

use std::sync::atomic::{AtomicU8, Ordering};

/// Identifies one kernel implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// One word per iteration; the reference implementation.
    Scalar,
    /// Four words per iteration, independent accumulators.
    Unrolled,
    /// `std::arch` SSE2/AVX2 (x86-64 only, gated by the `no-simd` feature).
    Simd,
}

impl KernelKind {
    /// The kernel's name as accepted by `SG_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Unrolled => "unrolled",
            KernelKind::Simd => "simd",
        }
    }

    /// Parses an `SG_KERNEL` value.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "unrolled" => Some(KernelKind::Unrolled),
            "simd" => Some(KernelKind::Simd),
            _ => None,
        }
    }
}

/// A table of kernel entry points. All functions require `a.len() ==
/// b.len()` (debug-asserted; callers pass lanes of one signature
/// universe).
pub struct Kernels {
    /// Which implementation this table routes to.
    pub kind: KernelKind,
    count: fn(&[u64]) -> u32,
    and_count: fn(&[u64], &[u64]) -> u32,
    andnot_count: fn(&[u64], &[u64]) -> u32,
    or_count: fn(&[u64], &[u64]) -> u32,
    xor_count: fn(&[u64], &[u64]) -> u32,
    contains: fn(&[u64], &[u64]) -> bool,
}

impl Kernels {
    /// Number of set bits in `a`.
    #[inline]
    pub fn count(&self, a: &[u64]) -> u32 {
        (self.count)(a)
    }

    /// `|a ∩ b|`.
    #[inline]
    pub fn and_count(&self, a: &[u64], b: &[u64]) -> u32 {
        (self.and_count)(a, b)
    }

    /// `|a \ b|`.
    #[inline]
    pub fn andnot_count(&self, a: &[u64], b: &[u64]) -> u32 {
        (self.andnot_count)(a, b)
    }

    /// `|a ∪ b|`.
    #[inline]
    pub fn or_count(&self, a: &[u64], b: &[u64]) -> u32 {
        (self.or_count)(a, b)
    }

    /// `|a Δ b|` — the Hamming distance.
    #[inline]
    pub fn xor_count(&self, a: &[u64], b: &[u64]) -> u32 {
        (self.xor_count)(a, b)
    }

    /// `true` iff `a ⊇ b` (every set bit of `b` is set in `a`).
    #[inline]
    pub fn contains(&self, a: &[u64], b: &[u64]) -> bool {
        (self.contains)(a, b)
    }
}

// ---------------------------------------------------------------------------
// Scalar: the reference.
// ---------------------------------------------------------------------------

/// One-word-at-a-time reference kernels.
pub mod scalar {
    /// Number of set bits.
    #[inline]
    pub fn count(a: &[u64]) -> u32 {
        a.iter().map(|w| w.count_ones()).sum()
    }

    /// `|a ∩ b|`.
    #[inline]
    pub fn and_count(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x & y).count_ones())
            .sum()
    }

    /// `|a \ b|`.
    #[inline]
    pub fn andnot_count(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x & !y).count_ones())
            .sum()
    }

    /// `|a ∪ b|`.
    #[inline]
    pub fn or_count(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x | y).count_ones())
            .sum()
    }

    /// `|a Δ b|`.
    #[inline]
    pub fn xor_count(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum()
    }

    /// `a ⊇ b`.
    #[inline]
    pub fn contains(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).all(|(x, y)| y & !x == 0)
    }
}

// ---------------------------------------------------------------------------
// Unrolled: 4 independent accumulators per pass.
// ---------------------------------------------------------------------------

/// Four-way unrolled kernels: portable instruction-level parallelism.
pub mod unrolled {
    /// Number of set bits.
    pub fn count(a: &[u64]) -> u32 {
        let mut it = a.chunks_exact(4);
        let (mut c0, mut c1, mut c2, mut c3) = (0u32, 0u32, 0u32, 0u32);
        for w in it.by_ref() {
            c0 += w[0].count_ones();
            c1 += w[1].count_ones();
            c2 += w[2].count_ones();
            c3 += w[3].count_ones();
        }
        let mut tail = 0u32;
        for w in it.remainder() {
            tail += w.count_ones();
        }
        c0 + c1 + c2 + c3 + tail
    }

    macro_rules! unrolled_binop_count {
        ($(#[$doc:meta])* $name:ident, |$x:ident, $y:ident| $op:expr) => {
            $(#[$doc])*
            pub fn $name(a: &[u64], b: &[u64]) -> u32 {
                debug_assert_eq!(a.len(), b.len());
                let n = a.len().min(b.len());
                let (a, b) = (&a[..n], &b[..n]);
                let mut ca = a.chunks_exact(4);
                let mut cb = b.chunks_exact(4);
                let (mut c0, mut c1, mut c2, mut c3) = (0u32, 0u32, 0u32, 0u32);
                for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
                    let f = |$x: u64, $y: u64| -> u64 { $op };
                    c0 += f(wa[0], wb[0]).count_ones();
                    c1 += f(wa[1], wb[1]).count_ones();
                    c2 += f(wa[2], wb[2]).count_ones();
                    c3 += f(wa[3], wb[3]).count_ones();
                }
                let mut tail = 0u32;
                for (&$x, &$y) in ca.remainder().iter().zip(cb.remainder().iter()) {
                    tail += ($op).count_ones();
                }
                c0 + c1 + c2 + c3 + tail
            }
        };
    }

    unrolled_binop_count!(
        /// `|a ∩ b|`.
        and_count, |x, y| x & y
    );
    unrolled_binop_count!(
        /// `|a \ b|`.
        andnot_count, |x, y| x & !y
    );
    unrolled_binop_count!(
        /// `|a ∪ b|`.
        or_count, |x, y| x | y
    );
    unrolled_binop_count!(
        /// `|a Δ b|`.
        xor_count, |x, y| x ^ y
    );

    /// `a ⊇ b`: ORs the uncovered words four at a time so the loop is
    /// branch-free; a single test at the end decides.
    pub fn contains(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        let mut acc = 0u64;
        for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
            acc |= (wb[0] & !wa[0]) | (wb[1] & !wa[1]) | (wb[2] & !wa[2]) | (wb[3] & !wa[3]);
        }
        for (x, y) in ca.remainder().iter().zip(cb.remainder().iter()) {
            acc |= y & !x;
        }
        acc == 0
    }
}

// ---------------------------------------------------------------------------
// SIMD: std::arch x86-64, AVX2 with an SSE2 fallback.
// ---------------------------------------------------------------------------

/// Whether the SIMD variant is compiled into this build.
#[inline]
pub const fn simd_compiled() -> bool {
    cfg!(all(target_arch = "x86_64", not(feature = "no-simd")))
}

/// x86-64 SIMD kernels. The public functions are safe: they pick the AVX2
/// path only when runtime detection confirms it and otherwise use SSE2,
/// which is part of the x86-64 baseline.
#[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
pub mod simd {
    /// `true` when the AVX2 + POPCNT fast path will be used.
    #[inline]
    pub fn avx2_available() -> bool {
        // `is_x86_feature_detected!` caches its answer in an atomic, so
        // the per-call cost is one relaxed load and a predictable branch.
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
    }

    macro_rules! simd_dispatch_count {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[inline]
            pub fn $name(a: &[u64], b: &[u64]) -> u32 {
                debug_assert_eq!(a.len(), b.len());
                if avx2_available() {
                    // SAFETY: AVX2 and POPCNT were just detected.
                    unsafe { avx2::$name(a, b) }
                } else {
                    // SAFETY: SSE2 is unconditionally part of x86-64.
                    unsafe { sse2::$name(a, b) }
                }
            }
        };
    }

    /// Number of set bits.
    #[inline]
    pub fn count(a: &[u64]) -> u32 {
        if avx2_available() {
            // SAFETY: POPCNT was just detected.
            unsafe { avx2::count(a) }
        } else {
            super::unrolled::count(a)
        }
    }

    simd_dispatch_count!(
        /// `|a ∩ b|`.
        and_count
    );
    simd_dispatch_count!(
        /// `|a \ b|`.
        andnot_count
    );
    simd_dispatch_count!(
        /// `|a ∪ b|`.
        or_count
    );
    simd_dispatch_count!(
        /// `|a Δ b|`.
        xor_count
    );

    /// `a ⊇ b`.
    #[inline]
    pub fn contains(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        if avx2_available() {
            // SAFETY: AVX2 was just detected.
            unsafe { avx2::contains(a, b) }
        } else {
            // SAFETY: SSE2 is unconditionally part of x86-64.
            unsafe { sse2::contains(a, b) }
        }
    }

    mod avx2 {
        use std::arch::x86_64::*;

        /// Popcounts one 256-bit vector by extracting its four words;
        /// `popcnt` is enabled, so each `count_ones` is a single
        /// instruction.
        #[inline]
        #[target_feature(enable = "avx2,popcnt")]
        unsafe fn popcount256(v: __m256i) -> u32 {
            (_mm256_extract_epi64::<0>(v) as u64).count_ones()
                + (_mm256_extract_epi64::<1>(v) as u64).count_ones()
                + (_mm256_extract_epi64::<2>(v) as u64).count_ones()
                + (_mm256_extract_epi64::<3>(v) as u64).count_ones()
        }

        #[target_feature(enable = "avx2,popcnt")]
        pub(super) unsafe fn count(a: &[u64]) -> u32 {
            let mut it = a.chunks_exact(4);
            let mut total = 0u32;
            for w in it.by_ref() {
                // SAFETY: `w` covers 4 u64s = 32 bytes; unaligned load.
                let v = unsafe { _mm256_loadu_si256(w.as_ptr() as *const __m256i) };
                total += unsafe { popcount256(v) };
            }
            for w in it.remainder() {
                total += w.count_ones();
            }
            total
        }

        macro_rules! avx2_binop_count {
            ($name:ident, $vec_op:expr, |$x:ident, $y:ident| $scalar_op:expr) => {
                #[target_feature(enable = "avx2,popcnt")]
                pub(super) unsafe fn $name(a: &[u64], b: &[u64]) -> u32 {
                    let n = a.len().min(b.len());
                    let (a, b) = (&a[..n], &b[..n]);
                    let mut ca = a.chunks_exact(4);
                    let mut cb = b.chunks_exact(4);
                    let mut total = 0u32;
                    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
                        // SAFETY: each chunk covers exactly 32 bytes.
                        let va = unsafe { _mm256_loadu_si256(wa.as_ptr() as *const __m256i) };
                        let vb = unsafe { _mm256_loadu_si256(wb.as_ptr() as *const __m256i) };
                        let f = $vec_op;
                        total += unsafe { popcount256(f(va, vb)) };
                    }
                    for (&$x, &$y) in ca.remainder().iter().zip(cb.remainder().iter()) {
                        total += ($scalar_op).count_ones();
                    }
                    total
                }
            };
        }

        avx2_binop_count!(and_count, |va, vb| _mm256_and_si256(va, vb), |x, y| x & y);
        avx2_binop_count!(
            andnot_count,
            // `_mm256_andnot_si256(b, a)` computes `!b & a` = `a \ b`.
            |va, vb| _mm256_andnot_si256(vb, va),
            |x, y| x & !y
        );
        avx2_binop_count!(or_count, |va, vb| _mm256_or_si256(va, vb), |x, y| x | y);
        avx2_binop_count!(xor_count, |va, vb| _mm256_xor_si256(va, vb), |x, y| x ^ y);

        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn contains(a: &[u64], b: &[u64]) -> bool {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut ca = a.chunks_exact(4);
            let mut cb = b.chunks_exact(4);
            for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
                // SAFETY: each chunk covers exactly 32 bytes.
                let va = unsafe { _mm256_loadu_si256(wa.as_ptr() as *const __m256i) };
                let vb = unsafe { _mm256_loadu_si256(wb.as_ptr() as *const __m256i) };
                // testc(a, b) == 1 iff (!a & b) == 0, i.e. b ⊆ a.
                if _mm256_testc_si256(va, vb) == 0 {
                    return false;
                }
            }
            ca.remainder()
                .iter()
                .zip(cb.remainder().iter())
                .all(|(x, y)| y & !x == 0)
        }
    }

    mod sse2 {
        use std::arch::x86_64::*;

        /// SSE2 moves 2 words per load; popcounts fall back to the
        /// compiler's SWAR `count_ones` since POPCNT is not part of the
        /// x86-64 baseline.
        macro_rules! sse2_binop_count {
            ($name:ident, $vec_op:expr, |$x:ident, $y:ident| $scalar_op:expr) => {
                #[target_feature(enable = "sse2")]
                pub(super) unsafe fn $name(a: &[u64], b: &[u64]) -> u32 {
                    let n = a.len().min(b.len());
                    let (a, b) = (&a[..n], &b[..n]);
                    let mut ca = a.chunks_exact(2);
                    let mut cb = b.chunks_exact(2);
                    let mut total = 0u32;
                    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
                        // SAFETY: each chunk covers exactly 16 bytes.
                        let va = unsafe { _mm_loadu_si128(wa.as_ptr() as *const __m128i) };
                        let vb = unsafe { _mm_loadu_si128(wb.as_ptr() as *const __m128i) };
                        let f = $vec_op;
                        let r = f(va, vb);
                        let mut out = [0u64; 2];
                        unsafe { _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, r) };
                        total += out[0].count_ones() + out[1].count_ones();
                    }
                    for (&$x, &$y) in ca.remainder().iter().zip(cb.remainder().iter()) {
                        total += ($scalar_op).count_ones();
                    }
                    total
                }
            };
        }

        sse2_binop_count!(and_count, |va, vb| _mm_and_si128(va, vb), |x, y| x & y);
        sse2_binop_count!(andnot_count, |va, vb| _mm_andnot_si128(vb, va), |x, y| x
            & !y);
        sse2_binop_count!(or_count, |va, vb| _mm_or_si128(va, vb), |x, y| x | y);
        sse2_binop_count!(xor_count, |va, vb| _mm_xor_si128(va, vb), |x, y| x ^ y);

        #[target_feature(enable = "sse2")]
        pub(super) unsafe fn contains(a: &[u64], b: &[u64]) -> bool {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut ca = a.chunks_exact(2);
            let mut cb = b.chunks_exact(2);
            let mut acc = _mm_setzero_si128();
            for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
                // SAFETY: each chunk covers exactly 16 bytes.
                let va = unsafe { _mm_loadu_si128(wa.as_ptr() as *const __m128i) };
                let vb = unsafe { _mm_loadu_si128(wb.as_ptr() as *const __m128i) };
                acc = _mm_or_si128(acc, _mm_andnot_si128(va, vb));
            }
            let mut out = [0u64; 2];
            unsafe { _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, acc) };
            let mut rest = out[0] | out[1];
            for (x, y) in ca.remainder().iter().zip(cb.remainder().iter()) {
                rest |= y & !x;
            }
            rest == 0
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

static SCALAR: Kernels = Kernels {
    kind: KernelKind::Scalar,
    count: scalar::count,
    and_count: scalar::and_count,
    andnot_count: scalar::andnot_count,
    or_count: scalar::or_count,
    xor_count: scalar::xor_count,
    contains: scalar::contains,
};

static UNROLLED: Kernels = Kernels {
    kind: KernelKind::Unrolled,
    count: unrolled::count,
    and_count: unrolled::and_count,
    andnot_count: unrolled::andnot_count,
    or_count: unrolled::or_count,
    xor_count: unrolled::xor_count,
    contains: unrolled::contains,
};

#[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
static SIMD: Kernels = Kernels {
    kind: KernelKind::Simd,
    count: simd::count,
    and_count: simd::and_count,
    andnot_count: simd::andnot_count,
    or_count: simd::or_count,
    xor_count: simd::xor_count,
    contains: simd::contains,
};

/// The kernel variants compiled into this build, scalar first.
pub fn variants() -> &'static [KernelKind] {
    #[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
    {
        &[KernelKind::Scalar, KernelKind::Unrolled, KernelKind::Simd]
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "no-simd"))))]
    {
        &[KernelKind::Scalar, KernelKind::Unrolled]
    }
}

/// The kernel table for a specific variant. Asking for [`KernelKind::Simd`]
/// in a build without it returns the unrolled table (the same silent
/// downgrade `SG_KERNEL=simd` gets).
pub fn for_kind(kind: KernelKind) -> &'static Kernels {
    match kind {
        KernelKind::Scalar => &SCALAR,
        KernelKind::Unrolled => &UNROLLED,
        KernelKind::Simd => {
            #[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
            {
                &SIMD
            }
            #[cfg(not(all(target_arch = "x86_64", not(feature = "no-simd"))))]
            {
                &UNROLLED
            }
        }
    }
}

/// Encoded active-kernel state: 0 = unresolved, otherwise kind + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn decode(tag: u8) -> &'static Kernels {
    match tag {
        1 => &SCALAR,
        2 => &UNROLLED,
        _ => for_kind(KernelKind::Simd),
    }
}

fn encode(kind: KernelKind) -> u8 {
    match kind {
        KernelKind::Scalar => 1,
        KernelKind::Unrolled => 2,
        KernelKind::Simd => 3,
    }
}

#[cold]
fn resolve() -> &'static Kernels {
    let kind = std::env::var("SG_KERNEL")
        .ok()
        .and_then(|v| KernelKind::parse(&v))
        .unwrap_or_else(auto_kind);
    // A racing resolve picks the same answer; last store wins harmlessly.
    ACTIVE.store(encode(kind), Ordering::Relaxed);
    for_kind(kind)
}

/// The variant auto-detection would choose on this machine.
pub fn auto_kind() -> KernelKind {
    #[cfg(all(target_arch = "x86_64", not(feature = "no-simd")))]
    {
        if simd::avx2_available() {
            return KernelKind::Simd;
        }
    }
    KernelKind::Unrolled
}

/// The active kernel table (resolving `SG_KERNEL` / auto-detection on
/// first use). Costs one relaxed atomic load once resolved.
#[inline]
pub fn active() -> &'static Kernels {
    let tag = ACTIVE.load(Ordering::Relaxed);
    if tag == 0 {
        resolve()
    } else {
        decode(tag)
    }
}

/// Forces the active kernel, overriding `SG_KERNEL` and auto-detection.
/// Used by the differential tests to sweep variants in one process; safe
/// to call at any time (all variants return identical results).
pub fn force(kind: KernelKind) {
    ACTIVE.store(encode(kind), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic lane patterns hitting word-boundary widths (63 / 64 /
    /// 65 / 127 / 128 bits correspond to 1–3 word lanes with partial last
    /// words), plus all-zeros, all-ones, and alternating runs.
    fn fixtures() -> Vec<(Vec<u64>, Vec<u64>)> {
        let mut out = Vec::new();
        for words in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17] {
            let a: Vec<u64> = (0..words)
                .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i as u32 * 7) ^ i as u64)
                .collect();
            let b: Vec<u64> = (0..words)
                .map(|i| 0xC2B2_AE3D_27D4_EB4Fu64.rotate_right(i as u32 * 5) | (i as u64) << 32)
                .collect();
            out.push((a.clone(), b.clone()));
            out.push((vec![0; words], b.clone()));
            out.push((vec![u64::MAX; words], b.clone()));
            out.push((a.clone(), vec![0; words]));
            out.push((a.clone(), vec![u64::MAX; words]));
            out.push((vec![0; words], vec![0; words]));
            out.push((vec![u64::MAX; words], vec![u64::MAX; words]));
            // Word-boundary partial masks: 63-, 1-, 33-bit final words.
            if words > 0 {
                let mut c = a.clone();
                *c.last_mut().unwrap() &= (1u64 << 63) - 1;
                let mut d = b.clone();
                *d.last_mut().unwrap() &= 1;
                out.push((c, d));
            }
        }
        out
    }

    #[test]
    fn all_variants_agree_on_fixtures() {
        for &kind in variants() {
            let k = for_kind(kind);
            for (a, b) in fixtures() {
                assert_eq!(k.count(&a), scalar::count(&a), "{kind:?} count");
                assert_eq!(
                    k.and_count(&a, &b),
                    scalar::and_count(&a, &b),
                    "{kind:?} and_count"
                );
                assert_eq!(
                    k.andnot_count(&a, &b),
                    scalar::andnot_count(&a, &b),
                    "{kind:?} andnot_count"
                );
                assert_eq!(
                    k.or_count(&a, &b),
                    scalar::or_count(&a, &b),
                    "{kind:?} or_count"
                );
                assert_eq!(
                    k.xor_count(&a, &b),
                    scalar::xor_count(&a, &b),
                    "{kind:?} xor_count"
                );
                assert_eq!(
                    k.contains(&a, &b),
                    scalar::contains(&a, &b),
                    "{kind:?} contains"
                );
                assert_eq!(
                    k.contains(&b, &a),
                    scalar::contains(&b, &a),
                    "{kind:?} contains rev"
                );
            }
        }
    }

    #[test]
    fn identities_hold_per_variant() {
        for &kind in variants() {
            let k = for_kind(kind);
            for (a, b) in fixtures() {
                // Inclusion–exclusion ties the four counts together.
                assert_eq!(
                    k.or_count(&a, &b) + k.and_count(&a, &b),
                    k.count(&a) + k.count(&b),
                    "{kind:?}"
                );
                assert_eq!(
                    k.xor_count(&a, &b),
                    k.andnot_count(&a, &b) + k.andnot_count(&b, &a),
                    "{kind:?}"
                );
                assert_eq!(k.contains(&a, &b), k.andnot_count(&b, &a) == 0, "{kind:?}");
                // Self-relations.
                assert_eq!(k.and_count(&a, &a), k.count(&a), "{kind:?}");
                assert_eq!(k.xor_count(&a, &a), 0, "{kind:?}");
                assert!(k.contains(&a, &a), "{kind:?}");
            }
        }
    }

    #[test]
    fn parse_and_names_roundtrip() {
        for &kind in variants() {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(KernelKind::parse("SIMD"), Some(KernelKind::Simd));
        assert_eq!(KernelKind::parse("bogus"), None);
    }

    #[test]
    fn force_switches_active_table() {
        let before = active().kind;
        force(KernelKind::Scalar);
        assert_eq!(active().kind, KernelKind::Scalar);
        force(KernelKind::Unrolled);
        assert_eq!(active().kind, KernelKind::Unrolled);
        force(before);
        assert_eq!(active().kind, before);
    }
}
