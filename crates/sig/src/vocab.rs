//! Mapping between application item labels and the dense ids a signature
//! universe requires.
//!
//! Signatures index a fixed universe `{0, …, N-1}`. Real data — SKUs,
//! categorical `(attribute, value)` pairs, gene names — needs a stable
//! label → id assignment first. [`Vocabulary`] provides that mapping with
//! interning semantics plus signature construction helpers, so library
//! users never hand-manage ids:
//!
//! ```
//! use sg_sig::Vocabulary;
//!
//! let mut vocab = Vocabulary::with_capacity_hint(64);
//! let sig = vocab.signature_of(["bread", "milk", "butter"]);
//! assert_eq!(sig.count(), 3);
//! assert_eq!(vocab.id("milk"), Some(1));
//! assert_eq!(vocab.label(1), Some("milk"));
//! // Interning is stable: repeated labels reuse their id.
//! let again = vocab.signature_of(["milk"]);
//! assert!(sig.contains(&again));
//! ```
//!
//! The vocabulary's *capacity* is the signature length, fixed up front
//! (growing it would invalidate existing signatures); interning past the
//! capacity returns an error rather than silently corrupting the universe.

use crate::Signature;
use std::collections::HashMap;
use std::fmt;

/// Error returned when interning would exceed the fixed universe size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VocabularyFull {
    /// The configured universe size.
    pub capacity: u32,
    /// The label that did not fit.
    pub label: String,
}

impl fmt::Display for VocabularyFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vocabulary full: cannot intern {:?} into a {}-item universe",
            self.label, self.capacity
        )
    }
}

impl std::error::Error for VocabularyFull {}

/// An interning label ↔ dense-id map over a fixed-size item universe.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    capacity: u32,
    by_label: HashMap<String, u32>,
    by_id: Vec<String>,
}

impl Vocabulary {
    /// A vocabulary whose universe holds exactly `capacity` items.
    pub fn new(capacity: u32) -> Self {
        Vocabulary {
            capacity,
            by_label: HashMap::new(),
            by_id: Vec::new(),
        }
    }

    /// Convenience alias for [`Vocabulary::new`] that reads as a sizing
    /// hint at call sites.
    pub fn with_capacity_hint(capacity: u32) -> Self {
        Self::new(capacity)
    }

    /// The universe size — the `nbits` of every signature this vocabulary
    /// produces.
    pub fn nbits(&self) -> u32 {
        self.capacity
    }

    /// Number of labels interned so far.
    pub fn len(&self) -> u32 {
        self.by_id.len() as u32
    }

    /// `true` when no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Returns the id of `label`, interning it if new.
    pub fn intern(&mut self, label: &str) -> Result<u32, VocabularyFull> {
        if let Some(&id) = self.by_label.get(label) {
            return Ok(id);
        }
        let id = self.by_id.len() as u32;
        if id >= self.capacity {
            return Err(VocabularyFull {
                capacity: self.capacity,
                label: label.to_string(),
            });
        }
        self.by_label.insert(label.to_string(), id);
        self.by_id.push(label.to_string());
        Ok(id)
    }

    /// Looks up a label's id without interning.
    pub fn id(&self, label: &str) -> Option<u32> {
        self.by_label.get(label).copied()
    }

    /// Looks up the label of an id.
    pub fn label(&self, id: u32) -> Option<&str> {
        self.by_id.get(id as usize).map(|s| s.as_str())
    }

    /// Builds a signature from labels, interning new ones.
    ///
    /// # Panics
    ///
    /// Panics if interning overflows the universe; use
    /// [`Vocabulary::try_signature_of`] to handle that case.
    pub fn signature_of<I, S>(&mut self, labels: I) -> Signature
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.try_signature_of(labels).expect("vocabulary overflow")
    }

    /// Builds a signature from labels, interning new ones; errors when the
    /// universe is full.
    pub fn try_signature_of<I, S>(&mut self, labels: I) -> Result<Signature, VocabularyFull>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut sig = Signature::empty(self.capacity);
        for label in labels {
            sig.set(self.intern(label.as_ref())?);
        }
        Ok(sig)
    }

    /// Builds a signature from labels *without* interning: unknown labels
    /// are skipped (useful for queries against a frozen vocabulary, where
    /// an unseen item cannot match anything anyway).
    pub fn signature_of_known<I, S>(&self, labels: I) -> Signature
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut sig = Signature::empty(self.capacity);
        for label in labels {
            if let Some(id) = self.id(label.as_ref()) {
                sig.set(id);
            }
        }
        sig
    }

    /// Decodes a signature back into its labels (ascending id order).
    /// Ids never interned decode as `None` and are skipped.
    pub fn labels_of(&self, sig: &Signature) -> Vec<&str> {
        sig.ones().filter_map(|id| self.label(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let mut v = Vocabulary::new(10);
        let a = v.intern("alpha").unwrap();
        let b = v.intern("beta").unwrap();
        assert_eq!(v.intern("alpha").unwrap(), a);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.label(a), Some("alpha"));
        assert_eq!(v.id("beta"), Some(b));
        assert_eq!(v.id("gamma"), None);
    }

    #[test]
    fn signature_roundtrip_through_labels() {
        let mut v = Vocabulary::new(16);
        let sig = v.signature_of(["c", "a", "b", "a"]);
        assert_eq!(sig.count(), 3);
        assert_eq!(v.labels_of(&sig), vec!["c", "a", "b"]);
        assert_eq!(sig.nbits(), 16);
    }

    #[test]
    fn overflow_is_an_error_not_corruption() {
        let mut v = Vocabulary::new(2);
        v.intern("x").unwrap();
        v.intern("y").unwrap();
        let err = v.intern("z").unwrap_err();
        assert_eq!(err.capacity, 2);
        assert_eq!(err.label, "z");
        assert_eq!(v.len(), 2);
        assert!(v.try_signature_of(["x", "z"]).is_err());
        // Re-interning existing labels still works at capacity.
        assert_eq!(v.intern("x").unwrap(), 0);
    }

    #[test]
    fn known_only_signatures_skip_unseen() {
        let mut v = Vocabulary::new(8);
        v.signature_of(["p", "q"]);
        let q = v.signature_of_known(["p", "unseen", "q"]);
        assert_eq!(q.count(), 2);
        assert_eq!(v.len(), 2, "no interning happened");
    }

    #[test]
    fn empty_vocabulary() {
        let v = Vocabulary::new(4);
        assert!(v.is_empty());
        assert_eq!(v.signature_of_known(["a"]).count(), 0);
        assert!(v.labels_of(&Signature::from_items(4, &[3])).is_empty());
    }
}
