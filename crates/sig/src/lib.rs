//! Bitmap *signatures* for set and categorical data.
//!
//! A signature is a fixed-length bitmap over an item universe
//! `S = {0, 1, …, N-1}`: bit `i` is set iff item `i` belongs to the
//! represented set. Signatures serve double duty in the SG-tree
//! (Mamoulis, Cheung & Lian, ICDE 2003):
//!
//! * a **transaction** (a market-basket itemset, or the value set of a
//!   categorical tuple) is a signature, and
//! * a **group of transactions** is the bitwise OR of their signatures
//!   (Definition 5 of the paper) — bit `i` is set iff *some* transaction in
//!   the group contains item `i`.
//!
//! This crate provides the [`Signature`] type with the bit-parallel
//! operations the index needs (union, intersection cardinality, containment,
//! area/popcount, enlargement), the set-similarity [`metric`]s used for
//! search (Hamming, Jaccard, Dice, overlap) together with their directory
//! lower bounds, and the [`codec`] that stores sparse signatures as
//! position lists (§3.2 of the paper).

pub mod account;
pub mod codec;
pub mod kernels;
pub mod metric;
mod signature;
mod vocab;

pub use metric::{Metric, MetricKind};
pub use signature::{Signature, SignatureOnes};
pub use vocab::{Vocabulary, VocabularyFull};

#[cfg(test)]
mod proptests;
