//! Tree configuration: page geometry, heuristics, and their encodings.

use sg_sig::codec;

/// Which split algorithm an overflowing node uses (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitPolicy {
    /// R-tree-style quadratic split: seed the two groups with the entry
    /// pair at maximum Hamming distance, then assign the rest by minimum
    /// area enlargement (ties: min area, then min count). Cheapest to run;
    /// produces the worst trees in the paper's Table 1.
    Quadratic,
    /// Agglomerative clustering with *group-average* linkage: merge the
    /// cluster pair with the smallest mean pairwise entry distance until
    /// two clusters remain. `av-link` in the paper — adopted there as the
    /// standard policy ("the best quality of the three at an acceptable
    /// cost", Table 1).
    AvLink,
    /// Agglomerative clustering with *single* linkage (equivalently, cut
    /// the longest edge of the minimum spanning tree): merge the cluster
    /// pair containing the closest entry pair. `min-link` in the paper —
    /// its pick as the standard policy.
    MinLink,
}

impl SplitPolicy {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            SplitPolicy::Quadratic => 0,
            SplitPolicy::AvLink => 1,
            SplitPolicy::MinLink => 2,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(SplitPolicy::Quadratic),
            1 => Some(SplitPolicy::AvLink),
            2 => Some(SplitPolicy::MinLink),
            _ => None,
        }
    }

    /// The paper's label for the policy.
    pub fn name(&self) -> &'static str {
        match self {
            SplitPolicy::Quadratic => "q-split",
            SplitPolicy::AvLink => "av-link",
            SplitPolicy::MinLink => "min-link",
        }
    }
}

/// Which subtree-choice heuristic insertion uses (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChooseSubtree {
    /// The paper's choice: if exactly one entry contains the new signature
    /// take it; if several contain it take the one with minimum area;
    /// otherwise take the one needing minimum area enlargement (ties: min
    /// area).
    MinEnlargement,
    /// The alternative the paper implemented and rejected: among the
    /// candidates, pick the entry whose extension increases *overlap* with
    /// its siblings the least (ties: min area enlargement, then min area).
    /// Same tree quality at a much higher insertion cost — kept for the
    /// ablation experiment.
    MinOverlap,
}

impl ChooseSubtree {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            ChooseSubtree::MinEnlargement => 0,
            ChooseSubtree::MinOverlap => 1,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ChooseSubtree::MinEnlargement),
            1 => Some(ChooseSubtree::MinOverlap),
            _ => None,
        }
    }
}

/// Configuration of an [`crate::SgTree`].
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Signature length: the size of the item universe.
    pub nbits: u32,
    /// Split policy for overflowing nodes.
    pub split: SplitPolicy,
    /// Subtree-choice heuristic for insertion.
    pub choose: ChooseSubtree,
    /// Minimum node fill as a fraction of capacity (`c = ⌈fill · C⌉`,
    /// clamped to `[1, C/2]`). The classic R-tree default is 0.4.
    pub min_fill: f64,
    /// Store sparse signatures as position lists (§3.2). Affects only the
    /// on-page encoding, never the node capacity, so a node always fits its
    /// page.
    pub compression: bool,
    /// Buffer-pool capacity in frames for the tree's own page accesses.
    pub pool_frames: usize,
}

impl TreeConfig {
    /// The paper's defaults: `av-link` splits (Table 1's best-quality
    /// policy, adopted as the paper's standard), min-enlargement subtree
    /// choice, 40% minimum fill, compression on, and a modest pool.
    pub fn new(nbits: u32) -> Self {
        TreeConfig {
            nbits,
            split: SplitPolicy::AvLink,
            choose: ChooseSubtree::MinEnlargement,
            min_fill: 0.4,
            compression: true,
            pool_frames: 256,
        }
    }

    /// Sets the split policy.
    pub fn split(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }

    /// Sets the choose-subtree heuristic.
    pub fn choose(mut self, choose: ChooseSubtree) -> Self {
        self.choose = choose;
        self
    }

    /// Sets the minimum-fill fraction.
    pub fn min_fill(mut self, min_fill: f64) -> Self {
        assert!((0.0..=0.5).contains(&min_fill));
        self.min_fill = min_fill;
        self
    }

    /// Enables or disables sparse-signature compression.
    pub fn compression(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }

    /// Sets the buffer-pool capacity in frames.
    pub fn pool_frames(mut self, frames: usize) -> Self {
        self.pool_frames = frames;
        self
    }

    /// Maximum node capacity `C` for a given page size: how many
    /// worst-case-encoded entries fit after the node header.
    pub fn capacity_for(&self, page_size: usize) -> usize {
        let entry = 8 + codec::max_encoded_len(self.nbits);
        (page_size - crate::node::NODE_HEADER) / entry
    }

    /// Minimum node fill `c` for a given capacity (count form, used as the
    /// bulk-loading floor).
    pub fn min_entries_for(&self, capacity: usize) -> usize {
        (((capacity as f64) * self.min_fill).ceil() as usize).clamp(1, (capacity / 2).max(1))
    }

    /// Minimum on-page node size in bytes: `min_fill ×` the page size.
    /// Nodes are byte-budgeted (sparse signatures buy fan-out), so the
    /// fill requirement is a byte requirement too.
    pub fn min_bytes_for(&self, page_size: usize) -> usize {
        ((page_size as f64) * self.min_fill) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_bytes_roundtrip() {
        for p in [
            SplitPolicy::Quadratic,
            SplitPolicy::AvLink,
            SplitPolicy::MinLink,
        ] {
            assert_eq!(SplitPolicy::from_byte(p.to_byte()), Some(p));
        }
        assert_eq!(SplitPolicy::from_byte(99), None);
        for c in [ChooseSubtree::MinEnlargement, ChooseSubtree::MinOverlap] {
            assert_eq!(ChooseSubtree::from_byte(c.to_byte()), Some(c));
        }
        assert_eq!(ChooseSubtree::from_byte(9), None);
    }

    #[test]
    fn capacity_matches_paper_ballpark() {
        // 1000-bit signatures on 4 KiB pages: "C in the order of several
        // tens, signature length in the order of several hundreds" (§3).
        let cfg = TreeConfig::new(1000);
        let c = cfg.capacity_for(4096);
        assert!((20..=40).contains(&c), "capacity {c}");
        // CENSUS: 525-bit signatures.
        let c525 = TreeConfig::new(525).capacity_for(4096);
        assert!((40..=70).contains(&c525), "capacity {c525}");
    }

    #[test]
    fn min_entries_at_most_half_capacity() {
        let cfg = TreeConfig::new(1000).min_fill(0.5);
        for cap in [2usize, 3, 10, 31] {
            let c = cfg.min_entries_for(cap);
            assert!(c >= 1);
            assert!(c <= (cap / 2).max(1), "cap {cap} -> c {c}");
        }
    }
}
