//! Per-query cost accounting, matching the paper's reported metrics.

use sg_obs::ResourceVec;
use sg_pager::IoSnapshot;

/// Costs incurred by a single query.
///
/// The paper's three evaluation metrics map onto the fields as:
///
/// * *"% of data processed"* — [`QueryStats::data_compared`] over the number
///   of indexed transactions (the harness computes the percentage);
/// * *"number of random I/Os"* — `io.physical_reads`;
/// * *CPU time* — measured by the harness around the call.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Tree nodes (pages) visited.
    pub nodes_accessed: u64,
    /// Leaf entries (transactions) whose exact distance to the query was
    /// computed — the paper's "data accessed and compared with the query
    /// transaction".
    pub data_compared: u64,
    /// Total distance/bound evaluations, including directory lower bounds.
    pub dist_computations: u64,
    /// Page-level I/O performed during the query.
    pub io: IoSnapshot,
    /// The query's resource bill: thread CPU, kernel lane operations,
    /// codec bytes, page pins, WAL bytes. Feeds the cost model and is
    /// echoed per shard by the executor.
    pub resources: ResourceVec,
}

impl QueryStats {
    /// Element-wise sum, for averaging over a query workload.
    pub fn add(&mut self, other: &QueryStats) {
        self.nodes_accessed += other.nodes_accessed;
        self.data_compared += other.data_compared;
        self.dist_computations += other.dist_computations;
        self.io.logical_reads += other.io.logical_reads;
        self.io.physical_reads += other.io.physical_reads;
        self.io.evictions += other.io.evictions;
        self.io.writes += other.io.writes;
        self.resources.add(&other.resources);
    }

    /// Buffer-pool hits during the query (logical reads served from cache).
    pub fn pool_hits(&self) -> u64 {
        self.io.pool_hits()
    }

    /// Fraction of the query's logical reads served from the pool.
    pub fn hit_rate(&self) -> f64 {
        self.io.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_all_fields() {
        let mut a = QueryStats {
            nodes_accessed: 1,
            data_compared: 2,
            dist_computations: 3,
            io: IoSnapshot {
                logical_reads: 4,
                physical_reads: 5,
                evictions: 1,
                writes: 6,
            },
            resources: ResourceVec {
                cpu_ns: 7,
                visits: 1,
                lane_ops: 8,
                pages_pinned: 4,
                bytes_decoded: 9,
                wal_bytes: 0,
            },
        };
        a.add(&a.clone());
        assert_eq!(a.nodes_accessed, 2);
        assert_eq!(a.data_compared, 4);
        assert_eq!(a.dist_computations, 6);
        assert_eq!(a.io.logical_reads, 8);
        assert_eq!(a.io.physical_reads, 10);
        assert_eq!(a.io.evictions, 2);
        assert_eq!(a.io.writes, 12);
        assert_eq!(a.resources.cpu_ns, 14);
        assert_eq!(a.resources.lane_ops, 16);
        assert_eq!(a.resources.bytes_decoded, 18);
    }

    #[test]
    fn hit_rate_delegates_to_io() {
        let s = QueryStats {
            io: IoSnapshot {
                logical_reads: 8,
                physical_reads: 2,
                evictions: 0,
                writes: 0,
            },
            ..QueryStats::default()
        };
        assert_eq!(s.pool_hits(), 6);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
