//! Query correctness against the sequential-scan ground truth, plus
//! behaviour checks specific to the branch-and-bound algorithms.

use crate::api::{QueryOptions, QueryRequest};
use crate::query::Neighbor;
use crate::scan::ScanIndex;
use crate::tree::SgTree;
use crate::{SplitPolicy, TreeConfig};
use sg_pager::MemStore;
use sg_sig::{Metric, MetricKind, Signature};
use std::sync::Arc;

const NBITS: u32 = 128;

fn make_data(n: u64) -> Vec<(u64, Signature)> {
    // Deterministic pseudo-random transactions of 2–6 items with cluster
    // structure (items drawn from a per-cluster band).
    let mut out = Vec::with_capacity(n as usize);
    let mut x = 0x243F6A8885A308D3u64;
    for tid in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let cluster = (x >> 60) as u32 % 4;
        let len = 2 + ((x >> 33) % 5) as usize;
        let mut items = Vec::with_capacity(len);
        let mut y = x;
        for _ in 0..len {
            y = y
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            items.push(cluster * 32 + ((y >> 40) % 32) as u32);
        }
        out.push((tid, Signature::from_items(NBITS, &items)));
    }
    out
}

fn tree_of(data: &[(u64, Signature)]) -> SgTree {
    let mut tree = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
    for (tid, sig) in data {
        tree.insert(*tid, sig);
    }
    tree
}

fn scan_of(data: &[(u64, Signature)]) -> ScanIndex {
    ScanIndex::build(
        Arc::new(MemStore::new(512)),
        NBITS,
        64,
        data.iter().cloned(),
    )
}

fn queries() -> Vec<Signature> {
    let mut out = Vec::new();
    let mut x = 0xB7E151628AED2A6Bu64;
    for _ in 0..25 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
        let len = 1 + ((x >> 33) % 6) as usize;
        let mut items = Vec::with_capacity(len);
        let mut y = x;
        for _ in 0..len {
            y = y.wrapping_mul(6364136223846793005).wrapping_add(7);
            items.push(((y >> 40) % NBITS as u64) as u32);
        }
        out.push(Signature::from_items(NBITS, &items));
    }
    out
}

fn dists(ns: &[Neighbor]) -> Vec<f64> {
    ns.iter().map(|n| n.dist).collect()
}

fn all_metrics() -> Vec<Metric> {
    vec![
        Metric::hamming(),
        Metric::jaccard(),
        Metric::new(MetricKind::Dice),
    ]
}

#[test]
fn knn_matches_scan_for_all_metrics_and_ks() {
    let data = make_data(400);
    let tree = tree_of(&data);
    let scan = scan_of(&data);
    for metric in all_metrics() {
        for q in queries() {
            for k in [1usize, 3, 10, 50] {
                let (got, _) = tree.knn(&q, k, &metric);
                let (want, _) = scan.knn(&q, k, &metric);
                assert_eq!(
                    dists(&got),
                    dists(&want),
                    "{:?} k={k} q={:?}",
                    metric.kind(),
                    q.items()
                );
            }
        }
    }
}

#[test]
fn best_first_knn_matches_depth_first() {
    let data = make_data(400);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    for q in queries() {
        for k in [1usize, 7, 25] {
            let (df, _) = tree.knn(&q, k, &m);
            let (bf, _) = tree.knn_best_first(&q, k, &m);
            assert_eq!(dists(&df), dists(&bf), "k={k}");
        }
    }
}

#[test]
fn best_first_accesses_no_more_nodes_than_depth_first() {
    let data = make_data(600);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    let mut df_total = 0u64;
    let mut bf_total = 0u64;
    for q in queries() {
        let (_, df) = tree.knn(&q, 1, &m);
        let (_, bf) = tree.knn_best_first(&q, 1, &m);
        df_total += df.nodes_accessed;
        bf_total += bf.nodes_accessed;
    }
    assert!(
        bf_total <= df_total,
        "best-first should be node-optimal: {bf_total} vs {df_total}"
    );
}

#[test]
fn range_matches_scan() {
    let data = make_data(400);
    let tree = tree_of(&data);
    let scan = scan_of(&data);
    let m = Metric::hamming();
    for q in queries() {
        for eps in [0.0, 2.0, 5.0, 10.0] {
            let (got, _) = tree.range(&q, eps, &m);
            let (want, _) = scan.range(&q, eps, &m);
            let mut g: Vec<u64> = got.iter().map(|n| n.tid).collect();
            let mut w: Vec<u64> = want.iter().map(|n| n.tid).collect();
            g.sort_unstable();
            w.sort_unstable();
            assert_eq!(g, w, "eps={eps}");
        }
    }
}

#[test]
fn range_jaccard_matches_scan() {
    let data = make_data(300);
    let tree = tree_of(&data);
    let scan = scan_of(&data);
    let m = Metric::jaccard();
    for q in queries().into_iter().take(10) {
        for eps in [0.25, 0.5, 0.8] {
            let (got, _) = tree.range(&q, eps, &m);
            let (want, _) = scan.range(&q, eps, &m);
            assert_eq!(got.len(), want.len(), "eps={eps}");
        }
    }
}

#[test]
fn nn_all_ties_returns_every_minimum() {
    let data = make_data(300);
    let tree = tree_of(&data);
    let scan = scan_of(&data);
    let m = Metric::hamming();
    for q in queries().into_iter().take(10) {
        let (ties, _) = tree.nn_all_ties(&q, &m);
        let (all, _) = scan.knn(&q, 300, &m);
        let best = all[0].dist;
        let want: Vec<u64> = all
            .iter()
            .filter(|n| n.dist == best)
            .map(|n| n.tid)
            .collect();
        let mut got: Vec<u64> = ties.iter().map(|n| n.tid).collect();
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(ties.iter().all(|n| n.dist == best));
    }
}

#[test]
fn containment_queries_match_scan() {
    let data = make_data(400);
    let tree = tree_of(&data);
    let scan = scan_of(&data);
    for q in queries().into_iter().take(15) {
        let (g1, _) = tree.containing(&q);
        let (w1, _) = scan.containing(&q);
        assert_eq!(g1, w1, "containing {:?}", q.items());
        let (g2, _) = tree.contained_in(&q);
        let (w2, _) = scan.contained_in(&q);
        assert_eq!(g2, w2, "contained_in");
        let (g3, _) = tree.exact(&q);
        let (w3, _) = scan.exact(&q);
        assert_eq!(g3, w3, "exact");
    }
}

#[test]
fn exact_finds_inserted_signature() {
    let data = make_data(200);
    let tree = tree_of(&data);
    for (tid, sig) in data.iter().take(20) {
        let (hits, _) = tree.exact(sig);
        assert!(hits.contains(tid));
    }
}

#[test]
fn containment_example_from_paper_section3() {
    // "find all transactions containing items 2 and 6" — build a small
    // universe where that query selects a known subset.
    let nbits = 8u32;
    let data: Vec<(u64, Signature)> = vec![
        (1, Signature::from_items(nbits, &[2, 6])),
        (2, Signature::from_items(nbits, &[2, 3, 6])),
        (3, Signature::from_items(nbits, &[2, 3])),
        (4, Signature::from_items(nbits, &[6])),
        (5, Signature::from_items(nbits, &[0, 2, 5, 6])),
    ];
    let mut tree = SgTree::create(Arc::new(MemStore::new(256)), TreeConfig::new(nbits)).unwrap();
    for (tid, sig) in &data {
        tree.insert(*tid, sig);
    }
    let (hits, _) = tree.containing(&Signature::from_items(nbits, &[2, 6]));
    assert_eq!(hits, vec![1, 2, 5]);
}

#[test]
fn knn_respects_k_larger_than_data() {
    let data = make_data(10);
    let tree = tree_of(&data);
    let (hits, _) = tree.knn(&Signature::from_items(NBITS, &[1]), 100, &Metric::hamming());
    assert_eq!(hits.len(), 10);
}

#[test]
fn queries_on_empty_tree() {
    let tree = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
    let q = Signature::from_items(NBITS, &[1, 2]);
    let m = Metric::hamming();
    assert!(tree.nn(&q, &m).0.is_empty());
    assert!(tree.knn_best_first(&q, 3, &m).0.is_empty());
    assert!(tree.range(&q, 10.0, &m).0.is_empty());
    assert!(tree.containing(&q).0.is_empty());
    assert!(tree.nn_all_ties(&q, &m).0.is_empty());
}

#[test]
fn stats_data_compared_bounded_by_len_and_positive() {
    let data = make_data(500);
    let tree = tree_of(&data);
    let (_, stats) = tree.nn(
        &Signature::from_items(NBITS, &[1, 2, 3]),
        &Metric::hamming(),
    );
    assert!(stats.data_compared >= 1);
    assert!(stats.data_compared <= 500);
    assert!(stats.nodes_accessed >= tree.height() as u64);
}

#[test]
fn nn_prunes_relative_to_scan_on_clustered_data() {
    let data = make_data(2000);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    let mut compared = 0u64;
    let qs = queries();
    for q in &qs {
        let (_, stats) = tree.nn(q, &m);
        compared += stats.data_compared;
    }
    let frac = compared as f64 / (2000.0 * qs.len() as f64);
    assert!(
        frac < 0.8,
        "NN search should prune: compared {frac:.2} of data"
    );
}

#[test]
fn similarity_join_matches_nested_loop() {
    let left_data = make_data(120);
    let right_data: Vec<(u64, Signature)> = make_data(150)
        .into_iter()
        .map(|(tid, s)| (tid + 1000, s))
        .collect();
    let left = tree_of(&left_data);
    let right = tree_of(&right_data);
    let m = Metric::hamming();
    for eps in [0.0, 2.0, 4.0] {
        let (got, _) = left.similarity_join(&right, eps, &m);
        let mut want = Vec::new();
        for (lt, ls) in &left_data {
            for (rt, rs) in &right_data {
                let d = m.dist(ls, rs);
                if d <= eps {
                    want.push((*lt, *rt, d));
                }
            }
        }
        assert_eq!(got.len(), want.len(), "eps={eps}");
        let got_set: std::collections::HashSet<(u64, u64)> =
            got.iter().map(|p| (p.left, p.right)).collect();
        for (l, r, _) in &want {
            assert!(got_set.contains(&(*l, *r)));
        }
    }
}

#[test]
fn closest_pair_matches_nested_loop() {
    let left_data = make_data(80);
    let right_data: Vec<(u64, Signature)> = make_data(90)
        .into_iter()
        .map(|(tid, s)| {
            (
                tid + 1000,
                Signature::from_items(NBITS, &{
                    // Shift items so distance 0 pairs are unlikely but possible.
                    let mut it = s.items();
                    if let Some(first) = it.first_mut() {
                        *first = (*first + 1) % NBITS;
                    }
                    it
                }),
            )
        })
        .collect();
    let left = tree_of(&left_data);
    let right = tree_of(&right_data);
    let m = Metric::hamming();
    let (got, _) = left.closest_pair(&right, &m);
    let got = got.expect("nonempty trees");
    let mut best = f64::INFINITY;
    for (_, ls) in &left_data {
        for (_, rs) in &right_data {
            best = best.min(m.dist(ls, rs));
        }
    }
    assert_eq!(got.dist, best);
}

#[test]
fn closest_pair_empty_side_is_none() {
    let a = tree_of(&make_data(10));
    let b = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
    assert!(a.closest_pair(&b, &Metric::hamming()).0.is_none());
    assert!(b.closest_pair(&a, &Metric::hamming()).0.is_none());
}

#[test]
fn fixed_dim_metric_prunes_more_on_categorical_data() {
    // Fixed-size tuples: the §6 bound must reduce data compared, never
    // change results.
    let d = 6u32;
    let mut data = Vec::new();
    let mut x = 7u64;
    for tid in 0..500u64 {
        let mut items = Vec::new();
        for a in 0..d {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            items.push(a * 20 + ((x >> 40) % 20) as u32);
        }
        data.push((tid, Signature::from_items(NBITS, &items)));
    }
    let tree = tree_of(&data);
    let scan = scan_of(&data);
    let relaxed = Metric::hamming();
    let strict = Metric::with_fixed_dim(MetricKind::Hamming, d);
    let mut relaxed_cmp = 0u64;
    let mut strict_cmp = 0u64;
    for q in queries().into_iter().take(10) {
        let (g1, s1) = tree.knn(&q, 5, &relaxed);
        let (g2, s2) = tree.knn(&q, 5, &strict);
        let (want, _) = scan.knn(&q, 5, &relaxed);
        assert_eq!(dists(&g1), dists(&want));
        assert_eq!(dists(&g2), dists(&want));
        relaxed_cmp += s1.data_compared;
        strict_cmp += s2.data_compared;
    }
    assert!(
        strict_cmp <= relaxed_cmp,
        "fixed-dim bound should prune at least as much: {strict_cmp} vs {relaxed_cmp}"
    );
}

#[test]
fn all_split_policies_answer_queries_identically() {
    let data = make_data(400);
    let scan = scan_of(&data);
    let m = Metric::hamming();
    for policy in [
        SplitPolicy::Quadratic,
        SplitPolicy::AvLink,
        SplitPolicy::MinLink,
    ] {
        let mut tree = SgTree::create(
            Arc::new(MemStore::new(512)),
            TreeConfig::new(NBITS).split(policy),
        )
        .unwrap();
        for (tid, sig) in &data {
            tree.insert(*tid, sig);
        }
        tree.validate();
        for q in queries().into_iter().take(8) {
            let (got, _) = tree.knn(&q, 5, &m);
            let (want, _) = scan.knn(&q, 5, &m);
            assert_eq!(dists(&got), dists(&want), "{policy:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// QueryStats coverage: every query type produces nonzero, sensible counters,
// and the counters are monotone in the query's selectivity knobs.
// ---------------------------------------------------------------------------

#[test]
fn query_stats_nonzero_for_every_query_type() {
    let data = make_data(400);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    let q = Signature::from_items(NBITS, &[1, 2, 3]);
    let named: Vec<(&str, crate::QueryStats)> = vec![
        ("knn", tree.knn(&q, 10, &m).1),
        ("knn_best_first", tree.knn_best_first(&q, 10, &m).1),
        ("nn_all_ties", tree.nn_all_ties(&q, &m).1),
        ("range", tree.range(&q, 4.0, &m).1),
        ("containing", tree.containing(&q).1),
        ("contained_in", tree.contained_in(&q).1),
        ("exact", tree.exact(&q).1),
    ];
    for (name, s) in named {
        assert!(s.nodes_accessed >= 1, "{name}: no nodes accessed");
        assert!(
            s.dist_computations + s.data_compared >= 1,
            "{name}: no work counted"
        );
        // Every node access goes through the pool.
        assert!(
            s.io.logical_reads >= s.nodes_accessed,
            "{name}: logical reads {} < nodes {}",
            s.io.logical_reads,
            s.nodes_accessed
        );
        assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0, "{name}");
    }
    // Joins combine the I/O of both trees.
    let other = tree_of(&make_data(120));
    let (_, js) = tree.similarity_join(&other, 2.0, &m);
    assert!(js.nodes_accessed >= 1);
    assert!(js.dist_computations >= 1);
    assert!(js.io.logical_reads >= js.nodes_accessed);
    let (_, cs) = tree.closest_pair(&other, &m);
    assert!(cs.nodes_accessed >= 1);
    assert!(cs.dist_computations >= 1);
}

#[test]
fn query_stats_monotone_in_k() {
    let data = make_data(600);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    let q = Signature::from_items(NBITS, &[5, 9, 33]);
    for variant in ["dfs", "best_first"] {
        let mut prev_cmp = 0u64;
        let mut prev_nodes = 0u64;
        for k in [1usize, 5, 20, 80] {
            let (_, s) = match variant {
                "dfs" => tree.knn(&q, k, &m),
                _ => tree.knn_best_first(&q, k, &m),
            };
            assert!(
                s.data_compared >= prev_cmp && s.nodes_accessed >= prev_nodes,
                "{variant} k={k}: counters shrank"
            );
            prev_cmp = s.data_compared;
            prev_nodes = s.nodes_accessed;
        }
    }
}

#[test]
fn query_stats_monotone_in_eps() {
    let data = make_data(600);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    let q = Signature::from_items(NBITS, &[5, 9, 33]);
    let mut prev_nodes = 0u64;
    let mut prev_cmp = 0u64;
    let mut prev_hits = 0usize;
    for eps in [0.0, 2.0, 4.0, 8.0, 16.0] {
        let (hits, s) = tree.range(&q, eps, &m);
        assert!(s.nodes_accessed >= prev_nodes, "eps={eps}");
        assert!(s.data_compared >= prev_cmp, "eps={eps}");
        assert!(hits.len() >= prev_hits, "eps={eps}");
        prev_nodes = s.nodes_accessed;
        prev_cmp = s.data_compared;
        prev_hits = hits.len();
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN traces: per-level breakdowns are consistent with the aggregate
// stats, obey the descend-or-prune conservation law, and round-trip JSON.
// ---------------------------------------------------------------------------

/// For every directory level L, each lower-bound evaluation either led to a
/// descent (a visit one level down) or was pruned at L.
fn assert_trace_conservation(trace: &crate::QueryTrace) {
    for l in &trace.levels {
        if l.level == 0 {
            continue;
        }
        let below_visits = trace
            .levels
            .iter()
            .find(|x| x.level == l.level - 1)
            .map_or(0, |x| x.nodes_visited);
        assert_eq!(
            l.lower_bound_evals,
            below_visits + l.entries_pruned,
            "level {}: {} lb-evals != {} descents + {} pruned",
            l.level,
            l.lower_bound_evals,
            below_visits,
            l.entries_pruned
        );
    }
}

fn assert_trace_matches_stats(trace: &crate::QueryTrace, stats: &crate::QueryStats) {
    assert_eq!(trace.nodes_accessed, stats.nodes_accessed);
    assert_eq!(trace.data_compared, stats.data_compared);
    assert_eq!(trace.dist_computations, stats.dist_computations);
    let visits: u64 = trace.levels.iter().map(|l| l.nodes_visited).sum();
    assert_eq!(visits, stats.nodes_accessed);
    let exact: u64 = trace.levels.iter().map(|l| l.exact_distances).sum();
    assert_eq!(exact, stats.data_compared);
    let lb: u64 = trace.levels.iter().map(|l| l.lower_bound_evals).sum();
    assert_eq!(lb + exact, stats.dist_computations);
}

#[test]
fn knn_explain_trace_is_consistent_and_roundtrips() {
    let data = make_data(800);
    let tree = tree_of(&data);
    assert!(tree.height() >= 2, "need a directory level");
    let m = Metric::hamming();
    // A wide single-cluster query: cross-cluster subtrees have a Hamming
    // lower bound of |q| = 8, well beyond the in-cluster k-th distance, so
    // the (strict) canonical pruning rule demonstrably fires.
    let q = Signature::from_items(NBITS, &[1, 3, 5, 9, 14, 17, 22, 28]);
    let resp = tree
        .query(
            &QueryRequest::Knn {
                q: q.clone(),
                k: 10,
                metric: m,
            },
            &QueryOptions::traced(),
        )
        .unwrap();
    let hits = resp.output.neighbors().unwrap();
    let (stats, trace) = (resp.stats, resp.trace.expect("trace requested"));
    assert_eq!(hits.len(), 10);
    assert_eq!(trace.results, 10);
    assert_trace_matches_stats(&trace, &stats);
    assert_trace_conservation(&trace);
    // Levels span leaf to root.
    assert!(trace.levels.iter().any(|l| l.level == 0));
    let top = trace.levels.iter().map(|l| l.level).max().unwrap();
    assert_eq!(top, (tree.height() - 1) as u32);
    // Something was pruned on clustered data.
    let pruned: u64 = trace.levels.iter().map(|l| l.entries_pruned).sum();
    assert!(pruned > 0, "expected pruning on clustered data");
    // Render mentions every section; JSON round-trips losslessly.
    let text = trace.render();
    assert!(text.contains("EXPLAIN knn k=10"), "{text}");
    assert!(text.contains("leaf"), "{text}");
    assert!(text.contains("pool hit rate"), "{text}");
    let back = crate::QueryTrace::from_json(&trace.to_json()).unwrap();
    assert_eq!(back, trace);
}

#[test]
#[allow(deprecated)] // the deprecated shim itself is under test here
fn best_first_explain_trace_is_consistent() {
    let data = make_data(800);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    let q = Signature::from_items(NBITS, &[3, 17, 40]);
    let (hits, stats, trace) = tree.knn_best_first_explain(&q, 5, &m);
    assert_eq!(trace.results, hits.len() as u64);
    assert_trace_matches_stats(&trace, &stats);
    assert_trace_conservation(&trace);
    let back = crate::QueryTrace::from_json(&trace.to_json()).unwrap();
    assert_eq!(back, trace);
}

#[test]
fn range_and_containing_traces_are_consistent() {
    let data = make_data(500);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    let q = Signature::from_items(NBITS, &[3, 17]);
    let resp = tree
        .query(
            &QueryRequest::Range {
                q: q.clone(),
                eps: 4.0,
                metric: m,
            },
            &QueryOptions::traced(),
        )
        .unwrap();
    let trace = resp.trace.expect("trace requested");
    assert_eq!(trace.results, resp.output.len() as u64);
    assert_trace_matches_stats(&trace, &resp.stats);
    assert_trace_conservation(&trace);

    let cresp = tree
        .query(
            &QueryRequest::Containing { q: q.clone() },
            &QueryOptions::traced(),
        )
        .unwrap();
    let ctrace = cresp.trace.expect("trace requested");
    assert_eq!(ctrace.results, cresp.output.len() as u64);
    assert_eq!(ctrace.nodes_accessed, cresp.stats.nodes_accessed);
    assert_eq!(ctrace.data_compared, cresp.stats.data_compared);
    assert_trace_conservation(&ctrace);
    let back = crate::QueryTrace::from_json(&ctrace.to_json()).unwrap();
    assert_eq!(back, ctrace);
}

#[test]
fn traced_queries_do_not_change_results_or_counters() {
    let data = make_data(400);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    let q = Signature::from_items(NBITS, &[7, 21, 60]);
    let (plain, ps) = tree.knn(&q, 10, &m);
    let resp = tree
        .query(
            &QueryRequest::Knn {
                q: q.clone(),
                k: 10,
                metric: m,
            },
            &QueryOptions::traced(),
        )
        .unwrap();
    let traced = resp.output.neighbors().unwrap().to_vec();
    let ts = resp.stats;
    assert_eq!(dists(&plain), dists(&traced));
    assert_eq!(ps.nodes_accessed, ts.nodes_accessed);
    assert_eq!(ps.data_compared, ts.data_compared);
    assert_eq!(ps.dist_computations, ts.dist_computations);
}

// ---------------------------------------------------------------------------
// The unified API: untraced parity, option handling, and SetIndex dynamics.
// ---------------------------------------------------------------------------

#[test]
fn unified_query_matches_legacy_methods_untraced() {
    use crate::api::QueryOutput;
    let data = make_data(600);
    let tree = tree_of(&data);
    let m = Metric::jaccard();
    let q = Signature::from_items(NBITS, &[5, 9, 33]);
    let opts = QueryOptions::default();

    let (legacy, _) = tree.knn(&q, 7, &m);
    let resp = tree
        .query(
            &QueryRequest::Knn {
                q: q.clone(),
                k: 7,
                metric: m,
            },
            &opts,
        )
        .unwrap();
    assert_eq!(resp.output, QueryOutput::Neighbors(legacy));
    assert!(resp.trace.is_none());
    assert!(resp.per_shard.is_empty());

    let (legacy_r, _) = tree.range(&q, 0.7, &m);
    let resp = tree
        .query(
            &QueryRequest::Range {
                q: q.clone(),
                eps: 0.7,
                metric: m,
            },
            &opts,
        )
        .unwrap();
    assert_eq!(resp.output, QueryOutput::Neighbors(legacy_r));

    for (req, legacy) in [
        (
            QueryRequest::Containing { q: q.clone() },
            tree.containing(&q).0,
        ),
        (
            QueryRequest::ContainedIn { q: q.clone() },
            tree.contained_in(&q).0,
        ),
        (QueryRequest::Exact { q: q.clone() }, tree.exact(&q).0),
    ] {
        let resp = tree.query(&req, &opts).unwrap();
        assert_eq!(resp.output, QueryOutput::Tids(legacy), "{}", req.label());
    }
}

#[test]
fn unified_query_rejects_cancelled_mismatched_and_expired() {
    use crate::api::CancelFlag;
    use sg_pager::SgError;
    let data = make_data(100);
    let tree = tree_of(&data);
    let m = Metric::hamming();
    let req = QueryRequest::Knn {
        q: Signature::from_items(NBITS, &[1]),
        k: 3,
        metric: m,
    };

    let cancel = CancelFlag::new();
    cancel.cancel();
    let opts = QueryOptions {
        cancel: Some(cancel),
        ..QueryOptions::default()
    };
    assert!(matches!(tree.query(&req, &opts), Err(SgError::Cancelled)));

    let opts = QueryOptions {
        deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
        ..QueryOptions::default()
    };
    assert!(matches!(tree.query(&req, &opts), Err(SgError::Cancelled)));

    let bad = QueryRequest::Exact {
        q: Signature::from_items(NBITS * 2, &[1]),
    };
    assert!(matches!(
        tree.query(&bad, &QueryOptions::default()),
        Err(SgError::Invalid(_))
    ));
}

#[test]
fn set_index_trait_mutates_and_queries_through_dyn() {
    use crate::api::SetIndex;
    let mut tree = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
    let idx: &mut dyn SetIndex = &mut tree;
    let a = Signature::from_items(NBITS, &[1, 2, 3]);
    let b = Signature::from_items(NBITS, &[4, 5]);
    idx.insert(7, &a).unwrap();
    idx.insert(8, &b).unwrap();
    assert_eq!(idx.len(), 2);
    let resp = idx
        .query(
            &QueryRequest::Exact { q: a.clone() },
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(resp.output.tids().unwrap(), &[7]);
    assert!(idx.delete(7, &a).unwrap());
    assert!(!idx.delete(7, &a).unwrap());
    assert_eq!(idx.len(), 1);
}

// ---------------------------------------------------------------------------
// Metrics registry integration: attached instruments see queries and
// maintenance operations.
// ---------------------------------------------------------------------------

#[test]
fn registered_obs_records_queries_and_maintenance() {
    let registry = crate::Registry::new();
    let mut tree = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
    tree.register_obs(&registry, "sg_tree");
    // The pool instruments only mirror I/O from attachment on; baseline the
    // pool counters here so the comparison below covers the same window.
    let io0 = tree.pool().stats().snapshot();
    let data = make_data(300);
    for (tid, sig) in &data {
        tree.insert(*tid, sig);
    }
    let m = Metric::hamming();
    let q = Signature::from_items(NBITS, &[1, 2, 3]);
    let (_, s1) = tree.knn(&q, 5, &m);
    let (_, s2) = tree.range(&q, 3.0, &m);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("sg_tree.queries"), 2);
    assert_eq!(
        snap.counter("sg_tree.nodes_accessed"),
        s1.nodes_accessed + s2.nodes_accessed
    );
    assert_eq!(
        snap.counter("sg_tree.data_compared"),
        s1.data_compared + s2.data_compared
    );
    assert_eq!(snap.counter("sg_tree.inserts"), 300);
    assert!(
        snap.counter("sg_tree.splits") >= 1,
        "300 inserts must split"
    );
    assert!(snap.counter("sg_tree.choose_entries_scanned") >= 1);
    // The pool instruments mirror the tree's I/O counters.
    let io = tree.pool().stats().snapshot().since(&io0);
    assert_eq!(
        snap.counter("sg_tree.pool.hits") + snap.counter("sg_tree.pool.misses"),
        io.logical_reads
    );
    assert_eq!(snap.counter("sg_tree.pool.misses"), io.physical_reads);
    assert_eq!(snap.counter("sg_tree.pool.writes"), io.writes);
    assert_eq!(snap.counter("sg_tree.pool.evictions"), io.evictions);
    // Deletion counters.
    let (tid, sig) = &data[0];
    assert!(tree.delete(*tid, sig));
    let snap2 = registry.snapshot();
    assert_eq!(snap2.counter("sg_tree.deletes"), 1);
}
