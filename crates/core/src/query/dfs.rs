//! Depth-first branch-and-bound search — the paper's Figure 4, generalized
//! to `k`-NN, all-ties NN, bounded NN, and range queries.
//!
//! When visiting a directory node the entries are sorted by ascending
//! `mindist`, ties broken by **minimum area** — the paper's secondary key:
//! among subtrees covering the query equally, a smaller (denser) one is
//! probabilistically more likely to hold the optimistic neighbor. Once an
//! entry's lower bound exceeds the pruning distance, that entry *and every
//! later one in the order* are skipped.
//!
//! The `k`-NN candidate set is **canonical**: ties at the k-th boundary are
//! resolved by ascending tid, so the result is exactly the `k` smallest
//! `(dist, tid)` pairs regardless of traversal order. That determinism is
//! what lets the sharded executor (`sg-exec`) merge per-shard answers into
//! a byte-identical copy of the single-tree result.
//!
//! Visits run on the [`SoaNode`] layout: the query is prepared once as a
//! [`QueryProbe`] (padded bitmap + sorted items + cached weight) and each
//! node is a strided kernel sweep over one contiguous buffer — or a
//! galloping list intersection when the node stays in compressed form.

use super::{Neighbor, OrdF64, SearchCtx, SharedBound};
use crate::node::{QueryProbe, SoaNode};
use crate::tree::SgTree;
use sg_pager::PageId;
use sg_sig::{Metric, Signature};
use std::collections::BinaryHeap;

/// Max-heap item: the current k-NN candidate set keeps its *worst* member
/// on top for O(log k) replacement.
#[derive(PartialEq, Eq)]
struct HeapItem {
    dist: OrdF64,
    tid: u64,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist.cmp(&other.dist).then(self.tid.cmp(&other.tid))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Sorts directory entries by `(mindist, area)`, the Figure 4 visit order.
/// One strided sweep computes every bound; areas come from the decode-time
/// weight cache instead of a per-entry popcount.
fn ordered_children(
    node: &SoaNode,
    probe: &QueryProbe,
    metric: &Metric,
    ctx: &mut SearchCtx,
) -> Vec<(f64, u32, PageId)> {
    let mut order: Vec<(f64, u32, PageId)> = (0..node.len())
        .map(|i| {
            ctx.lower_bound(node.level);
            (node.mindist(i, probe, metric), node.weight(i), node.ptr(i))
        })
        .collect();
    order.sort_by(|a, b| {
        OrdF64(a.0)
            .cmp(&OrdF64(b.0))
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    order
}

/// `k`-NN, depth-first. `init_bound` seeds the pruning distance (exclusive)
/// — `f64::INFINITY` for an unbounded search.
///
/// When `shared` is given, the search additionally prunes against the
/// cross-shard distance bound and publishes its own k-th-best distance
/// into it, so concurrent searches over sibling shards prune against each
/// other's best-so-far.
fn knn_bounded(
    tree: &SgTree,
    q: &Signature,
    k: usize,
    metric: &Metric,
    init_bound: f64,
    shared: Option<&SharedBound>,
    ctx: &mut SearchCtx,
) -> Vec<Neighbor> {
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
    if k == 0 || tree.is_empty() {
        return Vec::new();
    }
    let probe = QueryProbe::new(q);
    #[allow(clippy::too_many_arguments)] // faithful transliteration of Fig. 4's recursion state
    fn recurse(
        tree: &SgTree,
        page: PageId,
        probe: &QueryProbe,
        k: usize,
        metric: &Metric,
        init_bound: f64,
        shared: Option<&SharedBound>,
        heap: &mut BinaryHeap<HeapItem>,
        ctx: &mut SearchCtx,
    ) {
        let node = tree.read_soa(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for i in 0..node.len() {
                ctx.exact(node.level);
                let d = node.dist(i, probe, metric);
                let cand = HeapItem {
                    dist: OrdF64(d),
                    tid: node.ptr(i),
                };
                // Canonical acceptance: below k the only gate is the
                // caller's exclusive bound; at k the candidate must beat
                // the current worst under the (dist, tid) order. A
                // candidate strictly beyond the cross-shard bound can
                // never reach the merged top-k (equality is kept — it may
                // still win its tie on tid).
                let accept = shared.map_or(true, |s| d <= s.get())
                    && if heap.len() < k {
                        d < init_bound
                    } else {
                        cand < *heap.peek().expect("heap is full")
                    };
                if accept {
                    heap.push(cand);
                    if heap.len() > k {
                        heap.pop();
                    }
                    if heap.len() == k {
                        if let Some(s) = shared {
                            // k local results at ≤ this distance exist, so
                            // the *global* k-th distance is at most it.
                            s.observe(heap.peek().expect("heap is full").dist.0);
                        }
                    }
                }
            }
            return;
        }
        let order = ordered_children(&node, probe, metric, ctx);
        for (i, (mindist, _, child)) in order.iter().enumerate() {
            // With a full candidate set the subtree is pruned only when its
            // bound is *strictly* worse than the k-th distance: at equality
            // it may still hold an equal-distance, smaller-tid neighbor.
            // Below k the caller's `init_bound` is exclusive, so `>=` prunes.
            let prune = shared.is_some_and(|s| *mindist > s.get())
                || if heap.len() == k {
                    *mindist > heap.peek().expect("heap is full").dist.0
                } else {
                    *mindist >= init_bound
                };
            if prune {
                // Later entries have even larger bounds: this one and the
                // rest of the order are all pruned. (The shared bound only
                // ever decreases, so the break stays valid for it too.)
                ctx.pruned(node.level, (order.len() - i) as u64);
                break;
            }
            recurse(
                tree, *child, probe, k, metric, init_bound, shared, heap, ctx,
            );
        }
    }
    recurse(
        tree,
        tree.root_page(),
        &probe,
        k,
        metric,
        init_bound,
        shared,
        &mut heap,
        ctx,
    );
    let mut out: Vec<Neighbor> = heap
        .into_sorted_vec()
        .into_iter()
        .map(|h| Neighbor {
            tid: h.tid,
            dist: h.dist.0,
        })
        .collect();
    out.sort_by(|a, b| OrdF64(a.dist).cmp(&OrdF64(b.dist)).then(a.tid.cmp(&b.tid)));
    out
}

pub(crate) fn knn(
    tree: &SgTree,
    q: &Signature,
    k: usize,
    metric: &Metric,
    ctx: &mut SearchCtx,
) -> Vec<Neighbor> {
    knn_bounded(tree, q, k, metric, f64::INFINITY, None, ctx)
}

/// `k`-NN cooperating with sibling shards through a [`SharedBound`].
pub(crate) fn knn_shared(
    tree: &SgTree,
    q: &Signature,
    k: usize,
    metric: &Metric,
    shared: &SharedBound,
    ctx: &mut SearchCtx,
) -> Vec<Neighbor> {
    knn_bounded(tree, q, k, metric, f64::INFINITY, Some(shared), ctx)
}

/// Single NN strictly closer than `bound`.
pub(crate) fn nn_within(
    tree: &SgTree,
    q: &Signature,
    bound: f64,
    metric: &Metric,
    ctx: &mut SearchCtx,
) -> Option<Neighbor> {
    knn_bounded(tree, q, 1, metric, bound, None, ctx)
        .into_iter()
        .next()
}

/// All nearest neighbors at the minimum distance (Figure 4 with `≤`).
pub(crate) fn nn_all_ties(
    tree: &SgTree,
    q: &Signature,
    metric: &Metric,
    ctx: &mut SearchCtx,
) -> Vec<Neighbor> {
    if tree.is_empty() {
        return Vec::new();
    }
    let probe = QueryProbe::new(q);
    let mut best = f64::INFINITY;
    let mut out: Vec<Neighbor> = Vec::new();
    fn recurse(
        tree: &SgTree,
        page: PageId,
        probe: &QueryProbe,
        metric: &Metric,
        best: &mut f64,
        out: &mut Vec<Neighbor>,
        ctx: &mut SearchCtx,
    ) {
        let node = tree.read_soa(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for i in 0..node.len() {
                ctx.exact(node.level);
                let d = node.dist(i, probe, metric);
                if d < *best {
                    *best = d;
                    out.clear();
                }
                if d <= *best {
                    out.push(Neighbor {
                        tid: node.ptr(i),
                        dist: d,
                    });
                }
            }
            return;
        }
        let order = ordered_children(&node, probe, metric, ctx);
        for (i, (mindist, _, child)) in order.iter().enumerate() {
            if *mindist > *best {
                ctx.pruned(node.level, (order.len() - i) as u64);
                break;
            }
            recurse(tree, *child, probe, metric, best, out, ctx);
        }
    }
    recurse(
        tree,
        tree.root_page(),
        &probe,
        metric,
        &mut best,
        &mut out,
        ctx,
    );
    out.sort_by_key(|n| n.tid);
    out
}

/// Similarity range query: everything within `eps` (inclusive).
pub(crate) fn range(
    tree: &SgTree,
    q: &Signature,
    eps: f64,
    metric: &Metric,
    ctx: &mut SearchCtx,
) -> Vec<Neighbor> {
    if tree.is_empty() {
        return Vec::new();
    }
    let probe = QueryProbe::new(q);
    let mut out = Vec::new();
    fn recurse(
        tree: &SgTree,
        page: PageId,
        probe: &QueryProbe,
        eps: f64,
        metric: &Metric,
        out: &mut Vec<Neighbor>,
        ctx: &mut SearchCtx,
    ) {
        let node = tree.read_soa(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for i in 0..node.len() {
                ctx.exact(node.level);
                let d = node.dist(i, probe, metric);
                if d <= eps {
                    out.push(Neighbor {
                        tid: node.ptr(i),
                        dist: d,
                    });
                }
            }
            return;
        }
        for i in 0..node.len() {
            ctx.lower_bound(node.level);
            if node.mindist(i, probe, metric) <= eps {
                recurse(tree, node.ptr(i), probe, eps, metric, out, ctx);
            } else {
                ctx.pruned(node.level, 1);
            }
        }
    }
    recurse(tree, tree.root_page(), &probe, eps, metric, &mut out, ctx);
    out.sort_by(|a, b| OrdF64(a.dist).cmp(&OrdF64(b.dist)).then(a.tid.cmp(&b.tid)));
    out
}
