//! Containment, subset, and exact-match queries.
//!
//! §3 walks through the *itemset containment* query ("find all transactions
//! containing items 2 and 6"): transform the itemset into a signature and
//! descend only entries whose signature covers it — if an entry's signature
//! lacks a query bit, no transaction below can contain the itemset.

use super::SearchCtx;
use crate::tree::SgTree;
use crate::Tid;
use sg_pager::PageId;
use sg_sig::Signature;

/// All `tid` with `t ⊇ q`.
pub(crate) fn containing(tree: &SgTree, q: &Signature, ctx: &mut SearchCtx) -> Vec<Tid> {
    let mut out = Vec::new();
    fn recurse(
        tree: &SgTree,
        page: PageId,
        q: &Signature,
        out: &mut Vec<Tid>,
        ctx: &mut SearchCtx,
    ) {
        let node = tree.read_node(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for e in &node.entries {
                ctx.checked(node.level);
                if e.sig.contains(q) {
                    out.push(e.ptr);
                }
            }
            return;
        }
        for e in &node.entries {
            ctx.lower_bound(node.level);
            if e.sig.contains(q) {
                recurse(tree, e.ptr, q, out, ctx);
            } else {
                ctx.pruned(node.level, 1);
            }
        }
    }
    recurse(tree, tree.root_page(), q, &mut out, ctx);
    out.sort_unstable();
    out
}

/// All `tid` with `t ⊆ q`. An OR-signature cannot exclude small subsets,
/// so every node is visited; the one available shortcut prunes the exact
/// comparison when the entry signature is itself covered by `q` (then
/// *every* transaction below qualifies).
pub(crate) fn contained_in(tree: &SgTree, q: &Signature, ctx: &mut SearchCtx) -> Vec<Tid> {
    let mut out = Vec::new();
    fn collect_all(tree: &SgTree, page: PageId, out: &mut Vec<Tid>, ctx: &mut SearchCtx) {
        let node = tree.read_node(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            out.extend(node.entries.iter().map(|e| e.ptr));
            return;
        }
        for e in &node.entries {
            collect_all(tree, e.ptr, out, ctx);
        }
    }
    fn recurse(
        tree: &SgTree,
        page: PageId,
        q: &Signature,
        out: &mut Vec<Tid>,
        ctx: &mut SearchCtx,
    ) {
        let node = tree.read_node(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for e in &node.entries {
                ctx.checked(node.level);
                if q.contains(&e.sig) {
                    out.push(e.ptr);
                }
            }
            return;
        }
        for e in &node.entries {
            ctx.lower_bound(node.level);
            if q.contains(&e.sig) {
                // The whole subtree is covered: every transaction below is
                // a subset of q.
                collect_all(tree, e.ptr, out, ctx);
            } else {
                recurse(tree, e.ptr, q, out, ctx);
            }
        }
    }
    recurse(tree, tree.root_page(), q, &mut out, ctx);
    out.sort_unstable();
    out
}

/// All `tid` with `t = q` exactly.
pub(crate) fn exact(tree: &SgTree, q: &Signature, ctx: &mut SearchCtx) -> Vec<Tid> {
    let mut out = Vec::new();
    fn recurse(
        tree: &SgTree,
        page: PageId,
        q: &Signature,
        out: &mut Vec<Tid>,
        ctx: &mut SearchCtx,
    ) {
        let node = tree.read_node(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for e in &node.entries {
                ctx.checked(node.level);
                if e.sig == *q {
                    out.push(e.ptr);
                }
            }
            return;
        }
        for e in &node.entries {
            ctx.lower_bound(node.level);
            if e.sig.contains(q) {
                recurse(tree, e.ptr, q, out, ctx);
            } else {
                ctx.pruned(node.level, 1);
            }
        }
    }
    recurse(tree, tree.root_page(), q, &mut out, ctx);
    out.sort_unstable();
    out
}
