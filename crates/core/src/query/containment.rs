//! Containment, subset, and exact-match queries.
//!
//! §3 walks through the *itemset containment* query ("find all transactions
//! containing items 2 and 6"): transform the itemset into a signature and
//! descend only entries whose signature covers it — if an entry's signature
//! lacks a query bit, no transaction below can contain the itemset.
//!
//! Visits run on the [`SoaNode`](crate::node::SoaNode) layout: the prepared [`QueryProbe`] is
//! tested against each node with one kernel sweep (dense nodes) or a
//! galloping list check (compressed nodes).

use super::SearchCtx;
use crate::node::QueryProbe;
use crate::tree::SgTree;
use crate::Tid;
use sg_pager::PageId;
use sg_sig::Signature;

/// All `tid` with `t ⊇ q`.
pub(crate) fn containing(tree: &SgTree, q: &Signature, ctx: &mut SearchCtx) -> Vec<Tid> {
    let probe = QueryProbe::new(q);
    let mut out = Vec::new();
    fn recurse(
        tree: &SgTree,
        page: PageId,
        probe: &QueryProbe,
        out: &mut Vec<Tid>,
        ctx: &mut SearchCtx,
    ) {
        let node = tree.read_soa(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for i in 0..node.len() {
                ctx.checked(node.level);
                if node.contains_query(i, probe) {
                    out.push(node.ptr(i));
                }
            }
            return;
        }
        for i in 0..node.len() {
            ctx.lower_bound(node.level);
            if node.contains_query(i, probe) {
                recurse(tree, node.ptr(i), probe, out, ctx);
            } else {
                ctx.pruned(node.level, 1);
            }
        }
    }
    recurse(tree, tree.root_page(), &probe, &mut out, ctx);
    out.sort_unstable();
    out
}

/// All `tid` with `t ⊆ q`. An OR-signature cannot exclude small subsets,
/// so every node is visited; the one available shortcut prunes the exact
/// comparison when the entry signature is itself covered by `q` (then
/// *every* transaction below qualifies).
pub(crate) fn contained_in(tree: &SgTree, q: &Signature, ctx: &mut SearchCtx) -> Vec<Tid> {
    let probe = QueryProbe::new(q);
    let mut out = Vec::new();
    fn collect_all(tree: &SgTree, page: PageId, out: &mut Vec<Tid>, ctx: &mut SearchCtx) {
        let node = tree.read_soa(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            out.extend((0..node.len()).map(|i| node.ptr(i)));
            return;
        }
        for i in 0..node.len() {
            collect_all(tree, node.ptr(i), out, ctx);
        }
    }
    fn recurse(
        tree: &SgTree,
        page: PageId,
        probe: &QueryProbe,
        out: &mut Vec<Tid>,
        ctx: &mut SearchCtx,
    ) {
        let node = tree.read_soa(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for i in 0..node.len() {
                ctx.checked(node.level);
                if node.covered_by_query(i, probe) {
                    out.push(node.ptr(i));
                }
            }
            return;
        }
        for i in 0..node.len() {
            ctx.lower_bound(node.level);
            if node.covered_by_query(i, probe) {
                // The whole subtree is covered: every transaction below is
                // a subset of q.
                collect_all(tree, node.ptr(i), out, ctx);
            } else {
                recurse(tree, node.ptr(i), probe, out, ctx);
            }
        }
    }
    recurse(tree, tree.root_page(), &probe, &mut out, ctx);
    out.sort_unstable();
    out
}

/// All `tid` with `t = q` exactly.
pub(crate) fn exact(tree: &SgTree, q: &Signature, ctx: &mut SearchCtx) -> Vec<Tid> {
    let probe = QueryProbe::new(q);
    let mut out = Vec::new();
    fn recurse(
        tree: &SgTree,
        page: PageId,
        probe: &QueryProbe,
        out: &mut Vec<Tid>,
        ctx: &mut SearchCtx,
    ) {
        let node = tree.read_soa(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for i in 0..node.len() {
                ctx.checked(node.level);
                if node.equals_query(i, probe) {
                    out.push(node.ptr(i));
                }
            }
            return;
        }
        for i in 0..node.len() {
            ctx.lower_bound(node.level);
            if node.contains_query(i, probe) {
                recurse(tree, node.ptr(i), probe, out, ctx);
            } else {
                ctx.pruned(node.level, 1);
            }
        }
    }
    recurse(tree, tree.root_page(), &probe, &mut out, ctx);
    out.sort_unstable();
    out
}
