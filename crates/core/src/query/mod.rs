//! Query processing on the SG-tree (§4): branch-and-bound similarity
//! search adapted from R-tree algorithms, plus the containment queries of
//! §3 and the join/closest-pair queries of §4.2.
//!
//! Every public query returns its result together with a [`QueryStats`]
//! describing the paper's cost metrics for that call.

mod bestfirst;
mod containment;
mod dfs;
mod incremental;
mod join;

#[cfg(test)]
mod tests;

pub use incremental::NnIter;
pub use join::JoinPair;

use crate::stats::QueryStats;
use crate::tree::SgTree;
use crate::Tid;
use sg_sig::{Metric, Signature};

/// One similarity-search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The matching transaction's id.
    pub tid: Tid,
    /// Its exact distance to the query under the search metric.
    pub dist: f64,
}

/// Total order on finite distances (all metrics produce finite values).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("distances are finite")
    }
}

/// Mutable per-query counters threaded through the traversals.
#[derive(Default)]
pub(crate) struct SearchCtx {
    pub nodes_accessed: u64,
    pub data_compared: u64,
    pub dist_computations: u64,
}

impl SearchCtx {
    fn into_stats(self, tree: &SgTree, io_before: sg_pager::IoSnapshot) -> QueryStats {
        QueryStats {
            nodes_accessed: self.nodes_accessed,
            data_compared: self.data_compared,
            dist_computations: self.dist_computations,
            io: tree.pool().stats().snapshot().since(&io_before),
        }
    }
}

impl SgTree {
    /// Runs `f` with a fresh [`SearchCtx`] and converts it (plus the I/O
    /// delta) into [`QueryStats`].
    pub(crate) fn run_query<R>(
        &self,
        f: impl FnOnce(&mut SearchCtx) -> R,
    ) -> (R, QueryStats) {
        let io_before = self.pool().stats().snapshot();
        let mut ctx = SearchCtx::default();
        let result = f(&mut ctx);
        let stats = ctx.into_stats(self, io_before);
        (result, stats)
    }

    /// Nearest-neighbor query (the paper's Figure 4, `k = 1`), depth-first.
    /// Returns at most one hit (none only for an empty tree).
    pub fn nn(&self, q: &Signature, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.knn(q, 1, metric)
    }

    /// `k`-nearest-neighbor query, depth-first branch-and-bound. Results
    /// sorted by ascending distance (ties by tid for determinism).
    pub fn knn(&self, q: &Signature, k: usize, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.run_query(|ctx| dfs::knn(self, q, k, metric, ctx))
    }

    /// All nearest neighbors at the minimum distance — Figure 4's variant
    /// with the `≤` predicates.
    pub fn nn_all_ties(&self, q: &Signature, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.run_query(|ctx| dfs::nn_all_ties(self, q, metric, ctx))
    }

    /// `k`-NN by best-first (Hjaltason–Samet) search — the node-access-
    /// optimal algorithm §4.1 recommends over depth-first.
    pub fn knn_best_first(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
    ) -> (Vec<Neighbor>, QueryStats) {
        self.run_query(|ctx| bestfirst::knn(self, q, k, metric, ctx))
    }

    /// Similarity range query: every transaction within distance `eps` of
    /// `q`, sorted by ascending distance.
    pub fn range(&self, q: &Signature, eps: f64, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.run_query(|ctx| dfs::range(self, q, eps, metric, ctx))
    }

    /// Itemset-containment query (§3's example): ids of all transactions
    /// `t ⊇ q`.
    pub fn containing(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        self.run_query(|ctx| containment::containing(self, q, ctx))
    }

    /// Subset query: ids of all transactions `t ⊆ q`. Signature trees
    /// cannot prune this query type (a known weakness — see Helmer &
    /// Moerkotte, cited as \[14\] by the paper); the traversal visits every
    /// node and is provided for completeness.
    pub fn contained_in(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        self.run_query(|ctx| containment::contained_in(self, q, ctx))
    }

    /// Exact-match query: ids of all transactions with signature exactly
    /// `q`.
    pub fn exact(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        self.run_query(|ctx| containment::exact(self, q, ctx))
    }

    /// Nearest neighbor strictly closer than `bound`, or `None`. Used by
    /// the closest-pair search and handy for incremental algorithms.
    pub fn nn_within(
        &self,
        q: &Signature,
        bound: f64,
        metric: &Metric,
    ) -> (Option<Neighbor>, QueryStats) {
        self.run_query(|ctx| dfs::nn_within(self, q, bound, metric, ctx))
    }

    /// Similarity join (§4.2): all pairs `(t₁ ∈ self, t₂ ∈ other)` with
    /// `dist(t₁, t₂) ≤ eps`. Index-nested-loop evaluation: each leaf entry
    /// of `self` probes `other` with a range query, so `other`'s directory
    /// bounds prune the quadratic pair space.
    pub fn similarity_join(
        &self,
        other: &SgTree,
        eps: f64,
        metric: &Metric,
    ) -> (Vec<JoinPair>, QueryStats) {
        join::similarity_join(self, other, eps, metric)
    }

    /// Closest-pair query (§4.2): the pair `(t₁ ∈ self, t₂ ∈ other)` with
    /// the minimum distance, `None` if either tree is empty. The running
    /// best distance bounds every probe.
    pub fn closest_pair(
        &self,
        other: &SgTree,
        metric: &Metric,
    ) -> (Option<JoinPair>, QueryStats) {
        join::closest_pair(self, other, metric)
    }
}
