//! Query processing on the SG-tree (§4): branch-and-bound similarity
//! search adapted from R-tree algorithms, plus the containment queries of
//! §3 and the join/closest-pair queries of §4.2.
//!
//! Every public query returns its result together with a [`QueryStats`]
//! describing the paper's cost metrics for that call.

mod bestfirst;
mod containment;
mod dfs;
mod incremental;
mod join;

#[cfg(test)]
mod tests;

pub use incremental::NnIter;
pub use join::JoinPair;

use crate::stats::QueryStats;
use crate::tree::SgTree;
use crate::Tid;
use sg_obs::span::{self, Span};
use sg_obs::{QueryTrace, ResourceVec};
use sg_sig::{account, Metric, Signature};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Synthesizes one flight-recorder span per tree level from a finished
/// [`QueryTrace`], nested under the query's `core.query` span. Levels
/// have no individually-measured wall time, so the parent's duration is
/// partitioned across them proportionally to nodes visited — the spans
/// carry the *accounting* (visits, prunes, exact distances); their
/// widths are an attribution aid, not a measurement.
fn emit_level_spans(parent: span::SpanCtx, start_ns: u64, end_ns: u64, trace: &QueryTrace) {
    let total: u64 = trace.levels.iter().map(|l| l.nodes_visited.max(1)).sum();
    if total == 0 {
        return;
    }
    let dur = end_ns.saturating_sub(start_ns);
    let mut offset = 0u64;
    for l in &trace.levels {
        let d = dur * l.nodes_visited.max(1) / total;
        span::emit(
            parent.trace_id,
            parent.span_id,
            "core.level",
            "core",
            start_ns + offset,
            d,
            &[
                ("level", l.level as u64),
                ("nodes_visited", l.nodes_visited),
                ("pruned", l.entries_pruned),
                ("exact", l.exact_distances),
            ],
        );
        offset += d;
    }
}

/// A monotonically non-increasing distance bound shared by concurrent
/// searches over sibling shards (the sharded executor's k-NN fan-out).
///
/// Each shard publishes its local k-th-best distance with
/// [`SharedBound::observe`]; every shard prunes subtrees whose directory
/// lower bound strictly exceeds [`SharedBound::get`]. The invariant that
/// makes this sound: once *any* shard holds `k` candidates at distance
/// `≤ d`, the merged k-th-nearest distance is `≤ d`, so no pruned entry
/// can reach the merged top-k. Equal distances are never pruned — they
/// may still win their tie on tid, keeping the merged result canonical.
///
/// Distances are non-negative IEEE-754 doubles, whose bit patterns order
/// exactly like their values, so the bound is one lock-free
/// `AtomicU64::fetch_min`.
#[derive(Debug)]
pub struct SharedBound(AtomicU64);

impl Default for SharedBound {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedBound {
    /// An unbounded (infinite) starting bound.
    pub fn new() -> Self {
        SharedBound(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// The current bound. Stale reads are safe: the bound only ever
    /// decreases, so a stale value is merely conservative.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Lowers the bound to `dist` if it improves on the current value.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `dist` is non-negative (negative distances
    /// would break the bit-pattern ordering trick).
    #[inline]
    pub fn observe(&self, dist: f64) {
        debug_assert!(dist >= 0.0, "distances must be non-negative");
        self.0.fetch_min(dist.to_bits(), Ordering::Relaxed);
    }
}

/// One similarity-search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The matching transaction's id.
    pub tid: Tid,
    /// Its exact distance to the query under the search metric.
    pub dist: f64,
}

/// Total order on finite distances (all metrics produce finite values).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("distances are finite")
    }
}

/// Mutable per-query counters threaded through the traversals, with an
/// optional [`QueryTrace`] collecting the per-level breakdown. The trace
/// is `None` on the normal path, so tracing costs one branch per event.
#[derive(Default)]
pub(crate) struct SearchCtx {
    pub nodes_accessed: u64,
    pub data_compared: u64,
    pub dist_computations: u64,
    pub trace: Option<QueryTrace>,
}

impl SearchCtx {
    /// Counts reading one node at tree `level` (0 = leaf).
    #[inline]
    pub(crate) fn visit(&mut self, level: u16) {
        self.nodes_accessed += 1;
        if let Some(t) = self.trace.as_mut() {
            t.visit(level as u32);
        }
    }

    /// Counts one directory lower-bound evaluation at `level` (the level
    /// of the node holding the entry).
    #[inline]
    pub(crate) fn lower_bound(&mut self, level: u16) {
        self.dist_computations += 1;
        if let Some(t) = self.trace.as_mut() {
            t.lower_bounds(level as u32, 1);
        }
    }

    /// Counts `n` entries at `level` whose subtrees were pruned by the
    /// directory lower bound.
    #[inline]
    pub(crate) fn pruned(&mut self, level: u16, n: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.pruned(level as u32, n);
        }
    }

    /// Counts one exact distance computation against a stored transaction.
    #[inline]
    pub(crate) fn exact(&mut self, level: u16) {
        self.data_compared += 1;
        self.dist_computations += 1;
        if let Some(t) = self.trace.as_mut() {
            t.exact(level as u32, 1);
        }
    }

    /// Counts one predicate check (no distance) against a stored
    /// transaction — the containment queries' leaf comparisons.
    #[inline]
    pub(crate) fn checked(&mut self, level: u16) {
        self.data_compared += 1;
        if let Some(t) = self.trace.as_mut() {
            t.exact(level as u32, 1);
        }
    }

    fn stats(&self, tree: &SgTree, io_before: sg_pager::IoSnapshot) -> QueryStats {
        QueryStats {
            nodes_accessed: self.nodes_accessed,
            data_compared: self.data_compared,
            dist_computations: self.dist_computations,
            io: tree.pool().stats().snapshot().since(&io_before),
            resources: ResourceVec::default(),
        }
    }
}

/// Point-in-time readings taken before a traversal so its resource bill
/// can be computed as a delta afterwards. Queries run on one thread end
/// to end, so both the CPU clock and the kernel counters are exact.
pub(crate) struct BillStart {
    cpu_ns: u64,
    acct: account::Reading,
}

impl BillStart {
    pub(crate) fn now() -> BillStart {
        BillStart {
            cpu_ns: sg_obs::cost::self_cpu_ns(),
            acct: account::read(),
        }
    }

    /// Fills `stats.resources` from the deltas since `self`.
    pub(crate) fn bill(&self, stats: &mut QueryStats) {
        let acct = account::read().delta(&self.acct);
        stats.resources = ResourceVec {
            cpu_ns: sg_obs::cost::self_cpu_ns().saturating_sub(self.cpu_ns),
            visits: stats.nodes_accessed,
            lane_ops: acct.lane_ops,
            pages_pinned: stats.io.logical_reads,
            bytes_decoded: acct.bytes_decoded,
            wal_bytes: 0,
        };
    }
}

impl SgTree {
    /// Runs `f` with a fresh [`SearchCtx`] and converts it (plus the I/O
    /// delta) into [`QueryStats`]. When metrics are attached the query's
    /// aggregate costs and wall time are recorded into them.
    pub(crate) fn run_query<R>(&self, f: impl FnOnce(&mut SearchCtx) -> R) -> (R, QueryStats) {
        // No-op (one relaxed load) unless the flight recorder is on.
        let mut qspan = Span::start("core.query", "core");
        let start = self.obs().map(|_| Instant::now());
        let io_before = self.pool().stats().snapshot();
        let bill = BillStart::now();
        let mut ctx = SearchCtx::default();
        let result = f(&mut ctx);
        let mut stats = ctx.stats(self, io_before);
        bill.bill(&mut stats);
        qspan.attr("nodes", stats.nodes_accessed);
        qspan.attr("data_compared", stats.data_compared);
        qspan.attr("dists", stats.dist_computations);
        if let (Some(obs), Some(start)) = (self.obs(), start) {
            obs.observe_query(
                stats.nodes_accessed,
                stats.data_compared,
                stats.dist_computations,
                stats.io.logical_reads,
                stats.io.physical_reads,
                start.elapsed().as_nanos() as u64,
            );
        }
        (result, stats)
    }

    /// Like [`SgTree::run_query`], but also collects a per-level
    /// [`QueryTrace`] labelled `label`. The caller sets `trace.results`.
    pub(crate) fn run_query_traced<R>(
        &self,
        label: &str,
        f: impl FnOnce(&mut SearchCtx) -> R,
    ) -> (R, QueryStats, QueryTrace) {
        let mut qspan = Span::start("core.query", "core");
        let span_start = qspan.ctx().map(|_| span::now_ns());
        let start = Instant::now();
        let io_before = self.pool().stats().snapshot();
        let bill = BillStart::now();
        let mut ctx = SearchCtx {
            trace: Some(QueryTrace::new(label, "sg-tree")),
            ..SearchCtx::default()
        };
        let result = f(&mut ctx);
        let mut stats = ctx.stats(self, io_before);
        bill.bill(&mut stats);
        let mut trace = ctx.trace.take().expect("trace installed above");
        trace.nodes_accessed = stats.nodes_accessed;
        trace.data_compared = stats.data_compared;
        trace.dist_computations = stats.dist_computations;
        trace.logical_reads = stats.io.logical_reads;
        trace.physical_reads = stats.io.physical_reads;
        trace.duration_ns = start.elapsed().as_nanos() as u64;
        if let (Some(span_ctx), Some(span_start)) = (qspan.ctx(), span_start) {
            qspan.attr("nodes", stats.nodes_accessed);
            qspan.attr("data_compared", stats.data_compared);
            qspan.attr("dists", stats.dist_computations);
            emit_level_spans(span_ctx, span_start, span::now_ns(), &trace);
        }
        if let Some(obs) = self.obs() {
            obs.observe_query(
                stats.nodes_accessed,
                stats.data_compared,
                stats.dist_computations,
                stats.io.logical_reads,
                stats.io.physical_reads,
                trace.duration_ns,
            );
        }
        (result, stats, trace)
    }

    /// Nearest-neighbor query (the paper's Figure 4, `k = 1`), depth-first.
    /// Returns at most one hit (none only for an empty tree).
    pub fn nn(&self, q: &Signature, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.knn(q, 1, metric)
    }

    /// `k`-nearest-neighbor query, depth-first branch-and-bound. Results
    /// sorted by ascending distance (ties by tid for determinism).
    pub fn knn(&self, q: &Signature, k: usize, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.run_query(|ctx| dfs::knn(self, q, k, metric, ctx))
    }

    /// All nearest neighbors at the minimum distance — Figure 4's variant
    /// with the `≤` predicates.
    pub fn nn_all_ties(&self, q: &Signature, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.run_query(|ctx| dfs::nn_all_ties(self, q, metric, ctx))
    }

    /// `k`-nearest-neighbor query cooperating with concurrent searches
    /// over sibling shards: prunes against the cross-shard [`SharedBound`]
    /// and publishes its own k-th-best distance into it. With a fresh
    /// bound this is exactly [`SgTree::knn`].
    pub fn knn_shared(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
        shared: &SharedBound,
    ) -> (Vec<Neighbor>, QueryStats) {
        self.run_query(|ctx| dfs::knn_shared(self, q, k, metric, shared, ctx))
    }

    /// `k`-NN by best-first (Hjaltason–Samet) search — the node-access-
    /// optimal algorithm §4.1 recommends over depth-first.
    pub fn knn_best_first(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
    ) -> (Vec<Neighbor>, QueryStats) {
        self.run_query(|ctx| bestfirst::knn(self, q, k, metric, ctx))
    }

    /// Similarity range query: every transaction within distance `eps` of
    /// `q`, sorted by ascending distance.
    pub fn range(&self, q: &Signature, eps: f64, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        self.run_query(|ctx| dfs::range(self, q, eps, metric, ctx))
    }

    /// Itemset-containment query (§3's example): ids of all transactions
    /// `t ⊇ q`.
    pub fn containing(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        self.run_query(|ctx| containment::containing(self, q, ctx))
    }

    /// Subset query: ids of all transactions `t ⊆ q`. Signature trees
    /// cannot prune this query type (a known weakness — see Helmer &
    /// Moerkotte, cited as \[14\] by the paper); the traversal visits every
    /// node and is provided for completeness.
    pub fn contained_in(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        self.run_query(|ctx| containment::contained_in(self, q, ctx))
    }

    /// Exact-match query: ids of all transactions with signature exactly
    /// `q`.
    pub fn exact(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        self.run_query(|ctx| containment::exact(self, q, ctx))
    }

    /// Nearest neighbor strictly closer than `bound`, or `None`. Used by
    /// the closest-pair search and handy for incremental algorithms.
    pub fn nn_within(
        &self,
        q: &Signature,
        bound: f64,
        metric: &Metric,
    ) -> (Option<Neighbor>, QueryStats) {
        self.run_query(|ctx| dfs::nn_within(self, q, bound, metric, ctx))
    }

    /// Similarity join (§4.2): all pairs `(t₁ ∈ self, t₂ ∈ other)` with
    /// `dist(t₁, t₂) ≤ eps`. Index-nested-loop evaluation: each leaf entry
    /// of `self` probes `other` with a range query, so `other`'s directory
    /// bounds prune the quadratic pair space.
    pub fn similarity_join(
        &self,
        other: &SgTree,
        eps: f64,
        metric: &Metric,
    ) -> (Vec<JoinPair>, QueryStats) {
        join::similarity_join(self, other, eps, metric)
    }

    /// Closest-pair query (§4.2): the pair `(t₁ ∈ self, t₂ ∈ other)` with
    /// the minimum distance, `None` if either tree is empty. The running
    /// best distance bounds every probe.
    pub fn closest_pair(&self, other: &SgTree, metric: &Metric) -> (Option<JoinPair>, QueryStats) {
        join::closest_pair(self, other, metric)
    }

    /// Runs `f` (one of the public untraced query methods' bodies) under a
    /// fresh EXPLAIN trace labelled `label`. Used by the unified
    /// [`SgTree::query`](crate::api) path for the kinds that never had a
    /// dedicated `*_explain` method.
    pub(crate) fn run_traced_request<R>(
        &self,
        label: &str,
        f: impl FnOnce(&SgTree, &mut SearchCtx) -> R,
    ) -> (R, QueryStats, QueryTrace) {
        self.run_query_traced(label, |ctx| f(self, ctx))
    }

    /// Traced k-NN (depth-first), for the unified API and the deprecated
    /// `knn_explain` shim.
    pub(crate) fn knn_traced(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
    ) -> (Vec<Neighbor>, QueryStats, QueryTrace) {
        let label = format!("knn k={k} metric={:?}", metric.kind());
        let (result, stats, mut trace) =
            self.run_query_traced(&label, |ctx| dfs::knn(self, q, k, metric, ctx));
        trace.results = result.len() as u64;
        (result, stats, trace)
    }

    /// Traced shared-bound k-NN, for the unified API's sharded path.
    pub(crate) fn knn_shared_traced(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
        shared: &SharedBound,
    ) -> (Vec<Neighbor>, QueryStats, QueryTrace) {
        let label = format!("knn-shared k={k} metric={:?}", metric.kind());
        let (result, stats, mut trace) = self.run_query_traced(&label, |ctx| {
            dfs::knn_shared(self, q, k, metric, shared, ctx)
        });
        trace.results = result.len() as u64;
        (result, stats, trace)
    }

    /// Traced range query, for the unified API.
    pub(crate) fn range_traced(
        &self,
        q: &Signature,
        eps: f64,
        metric: &Metric,
    ) -> (Vec<Neighbor>, QueryStats, QueryTrace) {
        let label = format!("range eps={eps} metric={:?}", metric.kind());
        let (result, stats, mut trace) =
            self.run_query_traced(&label, |ctx| dfs::range(self, q, eps, metric, ctx));
        trace.results = result.len() as u64;
        (result, stats, trace)
    }

    /// Traced containment query, for the unified API.
    pub(crate) fn containing_traced(&self, q: &Signature) -> (Vec<Tid>, QueryStats, QueryTrace) {
        let (result, stats, mut trace) = self.run_traced_request("containment", |tree, ctx| {
            containment::containing(tree, q, ctx)
        });
        trace.results = result.len() as u64;
        (result, stats, trace)
    }

    /// Traced subset query, for the unified API (`contained_in` has no
    /// legacy `*_explain` twin).
    pub(crate) fn contained_in_traced(&self, q: &Signature) -> (Vec<Tid>, QueryStats, QueryTrace) {
        let (result, stats, mut trace) = self.run_traced_request("contained-in", |tree, ctx| {
            containment::contained_in(tree, q, ctx)
        });
        trace.results = result.len() as u64;
        (result, stats, trace)
    }

    /// Traced exact-match query, for the unified API.
    pub(crate) fn exact_traced(&self, q: &Signature) -> (Vec<Tid>, QueryStats, QueryTrace) {
        let (result, stats, mut trace) =
            self.run_traced_request("exact", |tree, ctx| containment::exact(tree, q, ctx));
        trace.results = result.len() as u64;
        (result, stats, trace)
    }

    /// [`SgTree::knn`] with an EXPLAIN-style [`QueryTrace`]: per-level
    /// nodes visited, entries pruned by the directory lower bound,
    /// lower-bound evaluations and exact distances, plus pool behaviour.
    #[deprecated(
        since = "0.1.0",
        note = "use `query(&QueryRequest::Knn { .. }, &QueryOptions::traced())`"
    )]
    pub fn knn_explain(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
    ) -> (Vec<Neighbor>, QueryStats, QueryTrace) {
        self.knn_traced(q, k, metric)
    }

    /// [`SgTree::knn_shared`] with an EXPLAIN-style [`QueryTrace`] — the
    /// per-shard trace the sharded executor nests under its fan-out trace.
    #[deprecated(
        since = "0.1.0",
        note = "use `query_shared(&QueryRequest::Knn { .. }, &QueryOptions::traced(), bound)`"
    )]
    pub fn knn_shared_explain(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
        shared: &SharedBound,
    ) -> (Vec<Neighbor>, QueryStats, QueryTrace) {
        self.knn_shared_traced(q, k, metric, shared)
    }

    /// [`SgTree::knn_best_first`] with an EXPLAIN-style [`QueryTrace`].
    #[deprecated(
        since = "0.1.0",
        note = "use `query` with `QueryOptions::traced()` (best-first stays available untraced)"
    )]
    pub fn knn_best_first_explain(
        &self,
        q: &Signature,
        k: usize,
        metric: &Metric,
    ) -> (Vec<Neighbor>, QueryStats, QueryTrace) {
        let label = format!("knn-best-first k={k} metric={:?}", metric.kind());
        let (result, stats, mut trace) =
            self.run_query_traced(&label, |ctx| bestfirst::knn(self, q, k, metric, ctx));
        trace.results = result.len() as u64;
        (result, stats, trace)
    }

    /// [`SgTree::range`] with an EXPLAIN-style [`QueryTrace`].
    #[deprecated(
        since = "0.1.0",
        note = "use `query(&QueryRequest::Range { .. }, &QueryOptions::traced())`"
    )]
    pub fn range_explain(
        &self,
        q: &Signature,
        eps: f64,
        metric: &Metric,
    ) -> (Vec<Neighbor>, QueryStats, QueryTrace) {
        self.range_traced(q, eps, metric)
    }

    /// [`SgTree::containing`] with an EXPLAIN-style [`QueryTrace`].
    #[deprecated(
        since = "0.1.0",
        note = "use `query(&QueryRequest::Containing { .. }, &QueryOptions::traced())`"
    )]
    pub fn containing_explain(&self, q: &Signature) -> (Vec<Tid>, QueryStats, QueryTrace) {
        self.containing_traced(q)
    }
}
