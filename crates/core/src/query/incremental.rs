//! Incremental ("distance browsing") nearest-neighbor iteration.
//!
//! The best-first algorithm of Hjaltason & Samet — the paper's \[15\], which
//! §4.1 cites as the node-access-optimal way to search the SG-tree —
//! naturally supports *incremental* retrieval: neighbors stream out in
//! ascending distance order and the consumer decides when to stop, without
//! fixing `k` in advance. That is exactly what the paper's motivating
//! recommender needs ("keep fetching similar customers until enough
//! evidence accumulates"), and what k-NN-with-unknown-k analysis tasks
//! (classification, outlier scoring) want.
//!
//! [`SgTree::nn_iter`] returns a lazy [`NnIter`]; each `next()` pops the
//! priority queue, reading only the nodes whose lower bound precedes the
//! next answer.

use super::{Neighbor, OrdF64};
use crate::node::QueryProbe;
use crate::stats::QueryStats;
use crate::tree::SgTree;
use sg_pager::PageId;
use sg_sig::{Metric, Signature};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

enum Item {
    Node(PageId),
    Data(u64),
}

struct QueueEntry {
    key: OrdF64,
    item: Item,
}

impl QueueEntry {
    fn rank(&self) -> (Reverse<OrdF64>, u8, Reverse<u64>) {
        let (pri, tie) = match self.item {
            Item::Data(tid) => (1u8, tid),
            Item::Node(page) => (0u8, page),
        };
        (Reverse(self.key), pri, Reverse(tie))
    }
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

/// A lazy stream of neighbors in ascending distance order.
///
/// Borrows the tree immutably; create with [`SgTree::nn_iter`]. Query
/// costs accumulate across the pulls and can be inspected at any point
/// with [`NnIter::stats`].
pub struct NnIter<'t> {
    tree: &'t SgTree,
    probe: QueryProbe,
    metric: Metric,
    queue: BinaryHeap<QueueEntry>,
    stats: QueryStats,
    io_start: sg_pager::IoSnapshot,
    yielded: u64,
}

impl<'t> NnIter<'t> {
    pub(crate) fn new(tree: &'t SgTree, q: Signature, metric: Metric) -> Self {
        let mut queue = BinaryHeap::new();
        if !tree.is_empty() {
            queue.push(QueueEntry {
                key: OrdF64(0.0),
                item: Item::Node(tree.root_page()),
            });
        }
        NnIter {
            tree,
            probe: QueryProbe::new(&q),
            metric,
            queue,
            stats: QueryStats::default(),
            io_start: tree.pool().stats().snapshot(),
            yielded: 0,
        }
    }

    /// Costs incurred by the pulls so far. `io` reflects the tree pool's
    /// activity since the iterator was created, so interleaving other
    /// queries on the same tree blurs that one field (the node/data
    /// counters stay exact).
    pub fn stats(&self) -> QueryStats {
        let mut s = self.stats;
        s.io = self.tree.pool().stats().snapshot().since(&self.io_start);
        s.resources.visits = s.nodes_accessed;
        s.resources.pages_pinned = s.io.logical_reads;
        s
    }

    /// Number of neighbors produced so far.
    pub fn yielded(&self) -> u64 {
        self.yielded
    }
}

impl Iterator for NnIter<'_> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        while let Some(entry) = self.queue.pop() {
            match entry.item {
                Item::Data(tid) => {
                    self.yielded += 1;
                    return Some(Neighbor {
                        tid,
                        dist: entry.key.0,
                    });
                }
                Item::Node(page) => {
                    self.stats.nodes_accessed += 1;
                    let node = self.tree.read_soa(page);
                    if node.is_leaf() {
                        for i in 0..node.len() {
                            self.stats.data_compared += 1;
                            self.stats.dist_computations += 1;
                            self.queue.push(QueueEntry {
                                key: OrdF64(node.dist(i, &self.probe, &self.metric)),
                                item: Item::Data(node.ptr(i)),
                            });
                        }
                    } else {
                        for i in 0..node.len() {
                            self.stats.dist_computations += 1;
                            self.queue.push(QueueEntry {
                                key: OrdF64(node.mindist(i, &self.probe, &self.metric)),
                                item: Item::Node(node.ptr(i)),
                            });
                        }
                    }
                }
            }
        }
        None
    }
}

impl SgTree {
    /// Streams neighbors of `q` in ascending distance order (distance
    /// browsing). Reading the whole iterator enumerates every indexed
    /// transaction sorted by distance; stopping early reads only the nodes
    /// needed for the neighbors pulled.
    pub fn nn_iter(&self, q: &Signature, metric: &Metric) -> NnIter<'_> {
        assert_eq!(q.nbits(), self.nbits(), "signature universe mismatch");
        NnIter::new(self, q.clone(), *metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeConfig;
    use sg_pager::MemStore;
    use std::sync::Arc;

    const NBITS: u32 = 128;

    fn build(n: u64) -> (SgTree, Vec<Signature>) {
        let mut tree =
            SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
        let mut sigs = Vec::new();
        for tid in 0..n {
            let items = [
                (tid % 64) as u32,
                ((tid * 11 + 3) % NBITS as u64) as u32,
                ((tid * 29 + 7) % NBITS as u64) as u32,
            ];
            let s = Signature::from_items(NBITS, &items);
            tree.insert(tid, &s);
            sigs.push(s);
        }
        (tree, sigs)
    }

    #[test]
    fn iterator_yields_ascending_distances() {
        let (tree, _) = build(300);
        let q = Signature::from_items(NBITS, &[5, 40, 90]);
        let m = Metric::hamming();
        let dists: Vec<f64> = tree.nn_iter(&q, &m).map(|n| n.dist).collect();
        assert_eq!(dists.len(), 300);
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "not ascending");
    }

    #[test]
    fn prefix_matches_knn() {
        let (tree, _) = build(250);
        let q = Signature::from_items(NBITS, &[1, 2, 3]);
        let m = Metric::hamming();
        for k in [1usize, 5, 20] {
            let stream: Vec<f64> = tree.nn_iter(&q, &m).take(k).map(|n| n.dist).collect();
            let (knn, _) = tree.knn(&q, k, &m);
            let kd: Vec<f64> = knn.iter().map(|n| n.dist).collect();
            assert_eq!(stream, kd, "k={k}");
        }
    }

    #[test]
    fn early_stop_reads_fewer_nodes_than_full_drain() {
        // Clustered data (items confined to per-cluster bands) so the
        // directory bounds are informative and an early stop can skip
        // whole subtrees.
        let mut tree =
            SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
        for tid in 0..1000u64 {
            let c = (tid % 4) as u32;
            let items = [
                c * 32 + (tid % 16) as u32,
                c * 32 + ((tid * 7 + 1) % 32) as u32,
                c * 32 + ((tid * 13 + 5) % 32) as u32,
            ];
            tree.insert(tid, &Signature::from_items(NBITS, &items));
        }
        // Query with an indexed transaction: its cluster answers at
        // distance 0 and every other cluster's bound (≥ 3) prunes.
        let q = Signature::from_items(NBITS, &[0, 1, 5]); // tid 0's signature
        let m = Metric::hamming();
        let mut it = tree.nn_iter(&q, &m);
        let first = it.next().expect("nonempty");
        let early = it.stats().nodes_accessed;
        let mut it2 = tree.nn_iter(&q, &m);
        for _ in it2.by_ref() {}
        let full = it2.stats().nodes_accessed;
        assert!(early < full, "early {early} vs full {full}");
        assert_eq!(full, tree.node_count());
        assert_eq!(it2.yielded(), 1000);
        // The streamed first neighbor equals the 1-NN answer.
        let (nn, _) = tree.nn(&q, &m);
        assert_eq!(first.dist, nn[0].dist);
    }

    #[test]
    fn iterator_on_empty_tree() {
        let tree = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
        let q = Signature::from_items(NBITS, &[1]);
        assert!(tree.nn_iter(&q, &Metric::hamming()).next().is_none());
    }

    #[test]
    fn jaccard_browsing_ascending() {
        let (tree, _) = build(200);
        let q = Signature::from_items(NBITS, &[5, 6, 7]);
        let dists: Vec<f64> = tree
            .nn_iter(&q, &Metric::jaccard())
            .take(50)
            .map(|n| n.dist)
            .collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }
}
