//! Similarity joins and closest-pair queries between two SG-trees (§4.2).
//!
//! The paper's page describing §4.2 in detail is lost to OCR; the query
//! types are reconstructed from its citations ([4] Brinkhoff et al. spatial
//! joins, [5] Corral et al. closest pairs). Both are evaluated here as
//! *index-nested-loop* algorithms: the outer tree's leaves stream through
//! once, and each outer transaction probes the inner tree with a bounded
//! search, so the inner tree's directory bounds prune the quadratic pair
//! space. The closest-pair search additionally shrinks its probe bound as
//! better pairs are found.

use super::{dfs, BillStart, Neighbor, OrdF64, SearchCtx};
use crate::stats::QueryStats;
use crate::tree::SgTree;
use crate::Tid;
use sg_pager::PageId;
use sg_sig::{Metric, Signature};

/// One result of a join or closest-pair query.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPair {
    /// Transaction id in the outer (left) tree.
    pub left: Tid,
    /// Transaction id in the inner (right) tree.
    pub right: Tid,
    /// Their distance under the join metric.
    pub dist: f64,
}

/// Streams every leaf entry of `tree` through `f`, counting node accesses.
fn for_each_leaf_entry(
    tree: &SgTree,
    ctx: &mut SearchCtx,
    f: &mut impl FnMut(Tid, &Signature, &mut SearchCtx),
) {
    fn recurse(
        tree: &SgTree,
        page: PageId,
        ctx: &mut SearchCtx,
        f: &mut impl FnMut(Tid, &Signature, &mut SearchCtx),
    ) {
        let node = tree.read_node(page);
        ctx.visit(node.level);
        if node.is_leaf() {
            for e in &node.entries {
                f(e.ptr, &e.sig, ctx);
            }
            return;
        }
        for e in &node.entries {
            recurse(tree, e.ptr, ctx, f);
        }
    }
    recurse(tree, tree.root_page(), ctx, f);
}

pub(crate) fn similarity_join(
    left: &SgTree,
    right: &SgTree,
    eps: f64,
    metric: &Metric,
) -> (Vec<JoinPair>, QueryStats) {
    let io_left = left.pool().stats().snapshot();
    let io_right = right.pool().stats().snapshot();
    let bill = BillStart::now();
    let mut ctx = SearchCtx::default();
    let mut out: Vec<JoinPair> = Vec::new();
    if !left.is_empty() && !right.is_empty() {
        for_each_leaf_entry(left, &mut ctx, &mut |tid, sig, ctx| {
            for Neighbor { tid: rtid, dist } in dfs::range(right, sig, eps, metric, ctx) {
                out.push(JoinPair {
                    left: tid,
                    right: rtid,
                    dist,
                });
            }
        });
    }
    out.sort_by(|a, b| {
        OrdF64(a.dist)
            .cmp(&OrdF64(b.dist))
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });
    let mut stats = combined_stats(left, right, ctx, io_left, io_right);
    bill.bill(&mut stats);
    (out, stats)
}

pub(crate) fn closest_pair(
    left: &SgTree,
    right: &SgTree,
    metric: &Metric,
) -> (Option<JoinPair>, QueryStats) {
    let io_left = left.pool().stats().snapshot();
    let io_right = right.pool().stats().snapshot();
    let bill = BillStart::now();
    let mut ctx = SearchCtx::default();
    let mut best: Option<JoinPair> = None;
    if !left.is_empty() && !right.is_empty() {
        let mut bound = f64::INFINITY;
        for_each_leaf_entry(left, &mut ctx, &mut |tid, sig, ctx| {
            // A probe only needs neighbors strictly better than the best
            // pair so far; on a zero-distance pair we could stop entirely,
            // but the stream is cheap relative to probes by then.
            if let Some(n) = dfs::nn_within(right, sig, bound, metric, ctx) {
                bound = n.dist;
                best = Some(JoinPair {
                    left: tid,
                    right: n.tid,
                    dist: n.dist,
                });
            }
        });
    }
    let mut stats = combined_stats(left, right, ctx, io_left, io_right);
    bill.bill(&mut stats);
    (best, stats)
}

fn combined_stats(
    left: &SgTree,
    right: &SgTree,
    ctx: SearchCtx,
    io_left: sg_pager::IoSnapshot,
    io_right: sg_pager::IoSnapshot,
) -> QueryStats {
    let l = left.pool().stats().snapshot().since(&io_left);
    let r = right.pool().stats().snapshot().since(&io_right);
    QueryStats {
        nodes_accessed: ctx.nodes_accessed,
        data_compared: ctx.data_compared,
        dist_computations: ctx.dist_computations,
        io: sg_pager::IoSnapshot {
            logical_reads: l.logical_reads + r.logical_reads,
            physical_reads: l.physical_reads + r.physical_reads,
            evictions: l.evictions + r.evictions,
            writes: l.writes + r.writes,
        },
        resources: sg_obs::ResourceVec::default(),
    }
}
