//! Best-first (Hjaltason–Samet) nearest-neighbor search: the I/O-optimal
//! algorithm §4.1 recommends. A global priority queue holds directory
//! nodes keyed by their lower bound and transactions keyed by their exact
//! distance; neighbors pop off in exact distance order, so the search
//! reads no node whose bound exceeds (or, thanks to the data-first
//! tie-break, equals) the k-th neighbor's distance.

use super::{Neighbor, OrdF64, SearchCtx};
use crate::node::QueryProbe;
use crate::tree::SgTree;
use sg_pager::PageId;
use sg_sig::{Metric, Signature};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq)]
enum Item {
    /// A tree node and its level, kept so pruned (never-popped) entries
    /// can be attributed to the directory level that held them.
    Node(PageId, u16),
    Data(u64),
}

/// Max-heap entry ordered so the *smallest* key pops first; on equal keys a
/// data item beats a node (a node with bound equal to the k-th distance
/// cannot contain anything strictly better, so it need not be read).
struct QueueEntry {
    key: OrdF64,
    item: Item,
}

impl QueueEntry {
    fn rank(&self) -> (Reverse<OrdF64>, u8, Reverse<u64>) {
        let (pri, tie) = match self.item {
            Item::Data(tid) => (1u8, tid),
            Item::Node(page, _) => (0u8, page),
        };
        (Reverse(self.key), pri, Reverse(tie))
    }
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

pub(crate) fn knn(
    tree: &SgTree,
    q: &Signature,
    k: usize,
    metric: &Metric,
    ctx: &mut SearchCtx,
) -> Vec<Neighbor> {
    if k == 0 || tree.is_empty() {
        return Vec::new();
    }
    let probe = QueryProbe::new(q);
    let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();
    queue.push(QueueEntry {
        key: OrdF64(0.0),
        item: Item::Node(tree.root_page(), tree.height() - 1),
    });
    let mut out = Vec::with_capacity(k);
    while let Some(entry) = queue.pop() {
        match entry.item {
            Item::Data(tid) => {
                out.push(Neighbor {
                    tid,
                    dist: entry.key.0,
                });
                if out.len() == k {
                    break;
                }
            }
            Item::Node(page, level) => {
                ctx.visit(level);
                let node = tree.read_soa(page);
                if node.is_leaf() {
                    for i in 0..node.len() {
                        ctx.exact(node.level);
                        queue.push(QueueEntry {
                            key: OrdF64(node.dist(i, &probe, metric)),
                            item: Item::Data(node.ptr(i)),
                        });
                    }
                } else {
                    for i in 0..node.len() {
                        ctx.lower_bound(node.level);
                        queue.push(QueueEntry {
                            key: OrdF64(node.mindist(i, &probe, metric)),
                            item: Item::Node(node.ptr(i), node.level - 1),
                        });
                    }
                }
            }
        }
    }
    // Node entries still queued when the k-th neighbor popped are exactly
    // the subtrees the bound pruned; attribute each to the directory level
    // that held its entry.
    if ctx.trace.is_some() {
        for entry in queue.iter() {
            if let Item::Node(_, level) = entry.item {
                ctx.pruned(level + 1, 1);
            }
        }
    }
    out
}
