//! Sequential-scan baseline.
//!
//! Stores the transactions as densely packed pages of encoded signatures
//! and answers every query type by a full scan. It is the ground truth the
//! test suite checks the SG-tree (and SG-table) against, and the "100% of
//! data, sequential I/O" yardstick for the experiments.

use crate::query::Neighbor;
use crate::stats::QueryStats;
use crate::Tid;
use sg_pager::{BufferPool, PageId, PageStore};
use sg_sig::{codec, Metric, Signature};
use std::sync::Arc;

/// Header per data page: entry count (u16).
const PAGE_HEADER: usize = 2;

/// A scan-only index over pages of `(tid, signature)` records.
pub struct ScanIndex {
    pool: Arc<BufferPool>,
    nbits: u32,
    pages: Vec<PageId>,
    len: u64,
}

impl ScanIndex {
    /// Packs `data` onto pages of `store`.
    pub fn build(
        store: Arc<dyn PageStore>,
        nbits: u32,
        pool_frames: usize,
        data: impl IntoIterator<Item = (Tid, Signature)>,
    ) -> ScanIndex {
        let pool = Arc::new(BufferPool::new(store, pool_frames));
        let page_size = pool.page_size();
        assert!(
            page_size >= PAGE_HEADER + 8 + codec::max_encoded_len(nbits),
            "page too small for one worst-case record"
        );
        let mut pages = Vec::new();
        let mut len = 0u64;
        let mut buf: Vec<u8> = vec![0, 0];
        let mut count: u16 = 0;
        let flush = |buf: &mut Vec<u8>, count: &mut u16, pages: &mut Vec<PageId>| {
            if *count == 0 {
                return;
            }
            buf[0..2].copy_from_slice(&count.to_le_bytes());
            buf.resize(page_size, 0);
            let id = pool.allocate();
            pool.write(id, buf);
            pages.push(id);
            buf.clear();
            buf.extend_from_slice(&[0, 0]);
            *count = 0;
        };
        for (tid, sig) in data {
            assert_eq!(sig.nbits(), nbits, "signature universe mismatch");
            let need = 8 + codec::encoded_len(&sig);
            if buf.len() + need > page_size {
                flush(&mut buf, &mut count, &mut pages);
            }
            buf.extend_from_slice(&tid.to_le_bytes());
            codec::encode(&sig, &mut buf);
            count += 1;
            len += 1;
        }
        flush(&mut buf, &mut count, &mut pages);
        ScanIndex {
            pool,
            nbits,
            pages,
            len,
        }
    }

    /// Number of stored transactions.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of data pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Signature width the index stores.
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// The buffer pool (for I/O statistics and cache control).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Streams every stored record through `visit` as a parsed
    /// [`codec::EncodedView`]: predicates evaluate directly on the
    /// encoded bytes, with no per-record signature allocation.
    fn scan(&self, mut visit: impl FnMut(Tid, &codec::EncodedView<'_>)) -> QueryStats {
        let io_before = self.pool.stats().snapshot();
        let bill = crate::query::BillStart::now();
        let mut stats = QueryStats::default();
        for &pid in &self.pages {
            stats.nodes_accessed += 1;
            let page = self.pool.read(pid);
            sg_sig::account::add_bytes_decoded(page.len() as u64);
            let count = u16::from_le_bytes([page[0], page[1]]) as usize;
            let mut off = PAGE_HEADER;
            for _ in 0..count {
                let tid = Tid::from_le_bytes(page[off..off + 8].try_into().expect("page layout"));
                off += 8;
                let (view, used) =
                    codec::EncodedView::parse(self.nbits, &page[off..]).expect("corrupt data page");
                off += used;
                stats.data_compared += 1;
                stats.dist_computations += 1;
                visit(tid, &view);
            }
        }
        stats.io = self.pool.stats().snapshot().since(&io_before);
        bill.bill(&mut stats);
        stats
    }

    /// Exact `k`-NN by full scan, sorted ascending (ties by tid).
    pub fn knn(&self, q: &Signature, k: usize, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        let (cq, q_items) = (q.count(), q.items());
        let mut all: Vec<Neighbor> = Vec::new();
        let stats = self.scan(|tid, view| {
            all.push(Neighbor {
                tid,
                dist: metric.dist_from_counts(cq, view.count(), view.and_count_items(q, &q_items)),
            });
        });
        all.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite distances")
                .then(a.tid.cmp(&b.tid))
        });
        all.truncate(k);
        (all, stats)
    }

    /// Exact range query by full scan.
    pub fn range(&self, q: &Signature, eps: f64, metric: &Metric) -> (Vec<Neighbor>, QueryStats) {
        let (cq, q_items) = (q.count(), q.items());
        let mut out: Vec<Neighbor> = Vec::new();
        let stats = self.scan(|tid, view| {
            let d = metric.dist_from_counts(cq, view.count(), view.and_count_items(q, &q_items));
            if d <= eps {
                out.push(Neighbor { tid, dist: d });
            }
        });
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite distances")
                .then(a.tid.cmp(&b.tid))
        });
        (out, stats)
    }

    /// All transactions containing `q` (supersets), by full scan.
    pub fn containing(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        let q_items = q.items();
        let mut out = Vec::new();
        let stats = self.scan(|tid, view| {
            if view.contains(q, &q_items) {
                out.push(tid);
            }
        });
        out.sort_unstable();
        (out, stats)
    }

    /// All transactions that are subsets of `q`, by full scan.
    pub fn contained_in(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.scan(|tid, view| {
            if view.covered_by(q) {
                out.push(tid);
            }
        });
        out.sort_unstable();
        (out, stats)
    }

    /// All transactions exactly equal to `q`, by full scan.
    pub fn exact(&self, q: &Signature) -> (Vec<Tid>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.scan(|tid, view| {
            if view.equals(q) {
                out.push(tid);
            }
        });
        out.sort_unstable();
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_pager::MemStore;

    fn build(n: u64, nbits: u32) -> ScanIndex {
        let data = (0..n).map(|tid| {
            let items = [
                (tid % nbits as u64) as u32,
                ((tid * 3 + 1) % nbits as u64) as u32,
            ];
            (tid, Signature::from_items(nbits, &items))
        });
        ScanIndex::build(Arc::new(MemStore::new(256)), nbits, 16, data)
    }

    #[test]
    fn scan_visits_everything_once() {
        let idx = build(100, 64);
        assert_eq!(idx.len(), 100);
        let (nn, stats) = idx.knn(&Signature::from_items(64, &[0, 1]), 1, &Metric::hamming());
        assert_eq!(nn.len(), 1);
        assert_eq!(stats.data_compared, 100);
        assert_eq!(stats.nodes_accessed as usize, idx.page_count());
        assert!(idx.page_count() > 1, "should span multiple pages");
    }

    #[test]
    fn knn_finds_exact_match_first() {
        let idx = build(50, 64);
        let q = Signature::from_items(64, &[7, 22]); // tid 7: {7, 22}
        let (nn, _) = idx.knn(&q, 3, &Metric::hamming());
        assert_eq!(nn[0].tid, 7);
        assert_eq!(nn[0].dist, 0.0);
        assert!(nn.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn range_matches_manual_filter() {
        let idx = build(80, 64);
        let q = Signature::from_items(64, &[0, 1]);
        let m = Metric::hamming();
        let (hits, _) = idx.range(&q, 2.0, &m);
        for h in &hits {
            assert!(h.dist <= 2.0);
        }
        let (all, _) = idx.knn(&q, 80, &m);
        let expect = all.iter().filter(|n| n.dist <= 2.0).count();
        assert_eq!(hits.len(), expect);
    }

    #[test]
    fn containment_queries_agree_with_definitions() {
        let idx = build(60, 64);
        let q = Signature::from_items(64, &[7]);
        let (sup, _) = idx.containing(&q);
        assert!(sup.contains(&7)); // tid 7 = {7, 22} ⊇ {7}
        let q2 = Signature::from_items(64, &[7, 22, 30]);
        let (sub, _) = idx.contained_in(&q2);
        assert!(sub.contains(&7)); // {7,22} ⊆ {7,22,30}
        let (ex, _) = idx.exact(&Signature::from_items(64, &[7, 22]));
        assert_eq!(ex, vec![7]);
    }

    #[test]
    fn empty_index() {
        let idx = ScanIndex::build(Arc::new(MemStore::new(256)), 64, 4, std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.page_count(), 0);
        let (nn, _) = idx.knn(&Signature::empty(64), 5, &Metric::hamming());
        assert!(nn.is_empty());
    }

    #[test]
    fn io_counted_per_page() {
        let idx = build(100, 64);
        idx.pool().clear();
        idx.pool().stats().reset();
        let (_, stats) = idx.knn(&Signature::empty(64), 1, &Metric::hamming());
        assert_eq!(stats.io.physical_reads as usize, idx.page_count());
    }
}
