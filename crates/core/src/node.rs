//! On-page node layout.
//!
//! A node is one disk page:
//!
//! ```text
//! [ level: u16 | count: u16 | entry … entry ]
//! entry = [ ptr: u64 LE | encoded signature ]
//! ```
//!
//! `level == 0` marks a leaf, where `ptr` is the transaction id; in a
//! directory node `ptr` is the child's page id. Signatures are stored with
//! the adaptive codec of `sg_sig::codec` (position list or raw bitmap); the
//! universe size is not repeated per node — it lives in the tree's meta
//! page.

use sg_sig::{codec, kernels, Metric, Signature};

/// Bytes of the fixed node header (`level` + `count`).
pub const NODE_HEADER: usize = 4;

/// One node entry: a signature plus either a child page id (directory) or a
/// transaction id (leaf).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// OR-signature of the subtree (directory) or the transaction's
    /// signature (leaf).
    pub sig: Signature,
    /// Child page id (directory) or transaction id (leaf).
    pub ptr: u64,
}

impl Entry {
    /// Creates an entry.
    pub fn new(sig: Signature, ptr: u64) -> Self {
        Entry { sig, ptr }
    }
}

/// Encoded size in bytes of one entry (pointer + signature) under the
/// given compression setting.
pub fn entry_encoded_len(sig: &Signature, compression: bool) -> usize {
    8 + if compression {
        codec::encoded_len(sig)
    } else {
        codec::max_encoded_len(sig.nbits())
    }
}

/// An in-memory node image.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// 0 for leaves; parents are one above their children.
    pub level: u16,
    /// The node's entries. May transiently exceed the capacity during an
    /// insert, between the overflow and the split.
    pub entries: Vec<Entry>,
}

impl Node {
    /// An empty node at `level`.
    pub fn new(level: u16) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Exact on-page size of the node in bytes under the given compression
    /// setting. Node capacity is *byte-budgeted*: a node overflows when
    /// this exceeds the page size, so sparse signatures buy proportionally
    /// higher fan-out (the practical payoff of §3.2's compression).
    pub fn encoded_size(&self, compression: bool) -> usize {
        NODE_HEADER
            + self
                .entries
                .iter()
                .map(|e| entry_encoded_len(&e.sig, compression))
                .sum::<usize>()
    }

    /// The OR of all entry signatures — the signature this node's parent
    /// entry must carry (Definition 5).
    pub fn union_signature(&self, nbits: u32) -> Signature {
        let mut sig = Signature::empty(nbits);
        for e in &self.entries {
            sig.or_assign(&e.sig);
        }
        sig
    }

    /// Serializes the node into a page image of exactly `page_size` bytes.
    ///
    /// With `compression` off every signature is stored as a raw bitmap
    /// (still preceded by the codec's flag byte so decoding is uniform).
    ///
    /// # Panics
    ///
    /// Panics if the encoded node exceeds the page — the tree's capacity
    /// accounting guarantees it never does.
    pub fn encode(&self, page_size: usize, compression: bool) -> Vec<u8> {
        let mut buf = Vec::with_capacity(page_size);
        buf.extend_from_slice(&self.level.to_le_bytes());
        buf.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for e in &self.entries {
            buf.extend_from_slice(&e.ptr.to_le_bytes());
            if compression {
                codec::encode(&e.sig, &mut buf);
            } else {
                encode_raw(&e.sig, &mut buf);
            }
        }
        assert!(
            buf.len() <= page_size,
            "node overflows page: {} > {} ({} entries)",
            buf.len(),
            page_size,
            self.entries.len()
        );
        buf.resize(page_size, 0);
        buf
    }

    /// Deserializes a node from a page image.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt page (reads past the end, bad positions): pages
    /// are only ever produced by [`Node::encode`], so corruption is a
    /// program error, not an input error.
    pub fn decode(nbits: u32, page: &[u8]) -> Node {
        let level = u16::from_le_bytes([page[0], page[1]]);
        let count = u16::from_le_bytes([page[2], page[3]]) as usize;
        let mut entries = Vec::with_capacity(count);
        let mut off = NODE_HEADER;
        for _ in 0..count {
            let ptr = u64::from_le_bytes(page[off..off + 8].try_into().expect("page truncated"));
            off += 8;
            let (sig, used) = codec::decode(nbits, &page[off..]).expect("corrupt node page");
            off += used;
            entries.push(Entry { sig, ptr });
        }
        Node { level, entries }
    }
}

// ---------------------------------------------------------------------------
// SoA node image: the query-side view of a page.
// ---------------------------------------------------------------------------

/// A 64-byte-aligned, contiguous `u64` buffer. Built safely by
/// over-allocating a `Vec<u64>` and offsetting to the first cache-line
/// boundary; the buffer is never grown after construction, so the
/// alignment holds for its lifetime.
#[derive(Debug)]
pub struct LaneBuf {
    buf: Vec<u64>,
    offset: usize,
    len: usize,
}

impl LaneBuf {
    /// A zeroed buffer of `len` words whose first word sits on a 64-byte
    /// boundary.
    pub fn new(len: usize) -> Self {
        let buf = vec![0u64; len + 7];
        // A Vec<u64> is 8-byte aligned, so the distance to the next
        // 64-byte boundary is a whole number of words, at most 7.
        let offset = (64 - (buf.as_ptr() as usize) % 64) % 64 / 8;
        LaneBuf { buf, offset, len }
    }

    /// The aligned words.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.buf[self.offset..self.offset + self.len]
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        &mut self.buf[self.offset..self.offset + self.len]
    }
}

/// A query prepared for kernel sweeps: its bitmap words padded to the
/// node stride, its sorted item list (for galloping against sparse
/// entries), and its cached weight. Built once per query, reused across
/// every node visit.
#[derive(Debug)]
pub struct QueryProbe {
    nbits: u32,
    /// Query bitmap, zero-padded to [`SoaNode::stride_for`] words.
    words: Vec<u64>,
    /// Set item ids, ascending.
    pub items: Vec<u32>,
    /// `|q|`, computed once.
    pub weight: u32,
}

impl QueryProbe {
    /// Prepares `q` for sweeps against nodes of the same universe.
    pub fn new(q: &Signature) -> Self {
        let stride = SoaNode::stride_for(q.nbits());
        let mut words = vec![0u64; stride];
        words[..q.words().len()].copy_from_slice(q.words());
        QueryProbe {
            nbits: q.nbits(),
            words,
            items: q.items(),
            weight: q.count(),
        }
    }

    /// The query as a fresh [`Signature`].
    pub fn to_signature(&self) -> Signature {
        Signature::from_items(self.nbits, &self.items)
    }
}

/// Entry signatures in one of two sweepable forms.
#[derive(Debug)]
enum SoaRepr {
    /// All entry bitmaps concatenated in one aligned buffer,
    /// `stride` words per entry: a directory visit is a strided kernel
    /// sweep with no per-entry pointer chasing.
    Dense { lanes: LaneBuf },
    /// Every entry kept as its sorted position list (§3.2's compressed
    /// form, never expanded): `positions[offsets[i]..offsets[i+1]]` are
    /// entry `i`'s items, probed by galloping intersection.
    Sparse {
        positions: Vec<u32>,
        offsets: Vec<u32>,
    },
}

/// The node layout queries actually visit: one page decoded
/// structure-of-arrays style. Pointers, cached signature weights, and
/// signature payloads live in separate contiguous arrays, so the hot
/// mindist/containment sweep touches memory linearly and never recomputes
/// a popcount.
///
/// The maintenance paths (insert, split, delete) keep using [`Node`] —
/// they mutate entries; this type is read-only by design.
#[derive(Debug)]
pub struct SoaNode {
    /// 0 for leaves; parents are one above their children.
    pub level: u16,
    len: usize,
    nbits: u32,
    stride: usize,
    ptrs: Vec<u64>,
    /// Per-entry popcounts, captured at decode time (lists carry the
    /// count in their flag byte for free).
    weights: Vec<u32>,
    repr: SoaRepr,
}

impl SoaNode {
    /// Words per entry lane for a universe of `nbits` items: the bitmap
    /// word count rounded up to a multiple of four, so unrolled and SIMD
    /// kernels sweep whole lanes without a remainder loop and every lane
    /// starts 32-byte aligned within the (64-byte-aligned) buffer.
    #[inline]
    pub fn stride_for(nbits: u32) -> usize {
        Signature::words_for(nbits).next_multiple_of(4)
    }

    /// Minimum lane stride (in words) for the sparse representation to be
    /// considered at all. Below this width a dense kernel sweep is a
    /// handful of word ops per entry — cheaper than any galloping
    /// intersection — so narrow universes always materialize lanes.
    /// 32 words = 2048 bits.
    pub const SPARSE_MIN_STRIDE: usize = 32;

    /// The per-node sparse/dense decision threshold: a node stays in
    /// position-list form only when the universe is wide (see
    /// [`Self::SPARSE_MIN_STRIDE`]) and *every* entry is list-encoded
    /// with at most this many positions. Defaults to `nbits / 64` (at
    /// least 4) — one position per lane word, the measured break-even
    /// where a galloping probe plus the skipped lane materialisation
    /// costs about as much as the dense decode-and-sweep (see the
    /// `repro kernels` figure). The `SG_DENSITY` environment variable
    /// overrides the fraction (e.g. `SG_DENSITY=0.03125`), read once per
    /// process.
    pub fn sparse_limit(nbits: u32) -> u32 {
        use std::sync::OnceLock;
        static FRACTION: OnceLock<f64> = OnceLock::new();
        let f = *FRACTION.get_or_init(|| {
            std::env::var("SG_DENSITY")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|f| (0.0..=1.0).contains(f))
                .unwrap_or(1.0 / 64.0)
        });
        ((nbits as f64 * f) as u32).max(4)
    }

    /// Decodes a page image into the SoA layout. Same panics as
    /// [`Node::decode`]: pages come from [`Node::encode`], so corruption
    /// is a program error.
    pub fn decode(nbits: u32, page: &[u8]) -> SoaNode {
        let level = u16::from_le_bytes([page[0], page[1]]);
        let count = u16::from_le_bytes([page[2], page[3]]) as usize;
        let stride = Self::stride_for(nbits);
        let mut ptrs = Vec::with_capacity(count);
        let mut weights = Vec::with_capacity(count);
        let mut views = Vec::with_capacity(count);
        let mut off = NODE_HEADER;
        for _ in 0..count {
            let ptr = u64::from_le_bytes(page[off..off + 8].try_into().expect("page truncated"));
            off += 8;
            let (view, used) =
                codec::EncodedView::parse(nbits, &page[off..]).expect("corrupt node page");
            off += used;
            ptrs.push(ptr);
            weights.push(view.count());
            views.push(view);
        }
        let limit = Self::sparse_limit(nbits);
        let all_sparse = stride >= Self::SPARSE_MIN_STRIDE
            && views.iter().all(|v| v.is_list())
            && weights.iter().all(|&w| w <= limit);
        let repr = if all_sparse {
            let total: usize = weights.iter().map(|&w| w as usize).sum();
            let mut positions = Vec::with_capacity(total);
            let mut offsets = Vec::with_capacity(count + 1);
            offsets.push(0);
            for v in &views {
                v.positions_into(&mut positions);
                offsets.push(positions.len() as u32);
            }
            SoaRepr::Sparse { positions, offsets }
        } else {
            let mut lanes = LaneBuf::new(count * stride);
            let dst = lanes.as_mut_slice();
            for (i, v) in views.iter().enumerate() {
                v.write_words_into(&mut dst[i * stride..i * stride + stride]);
            }
            SoaRepr::Dense { lanes }
        };
        SoaNode {
            level,
            len: count,
            nbits,
            stride,
            ptrs,
            weights,
            repr,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the node has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// `true` when entries are kept as position lists.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, SoaRepr::Sparse { .. })
    }

    /// Kernel lane operations one full sweep of this node costs: lane
    /// words touched per dense entry times entries, or the total sparse
    /// positions a galloping probe walks. Queries charge this per node
    /// visit — an upper bound for early-exit probes, exact for the
    /// mindist sweeps that dominate.
    #[inline]
    pub fn sweep_cost(&self) -> u64 {
        match &self.repr {
            SoaRepr::Dense { .. } => (self.len * self.stride) as u64,
            SoaRepr::Sparse { positions, .. } => positions.len() as u64,
        }
    }

    /// The universe size.
    #[inline]
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// Entry `i`'s child page id (directory) or transaction id (leaf).
    #[inline]
    pub fn ptr(&self, i: usize) -> u64 {
        self.ptrs[i]
    }

    /// Entry `i`'s signature weight (popcount), cached at decode time.
    #[inline]
    pub fn weight(&self, i: usize) -> u32 {
        self.weights[i]
    }

    #[inline]
    fn lane(lanes: &LaneBuf, stride: usize, i: usize) -> &[u64] {
        &lanes.as_slice()[i * stride..i * stride + stride]
    }

    #[inline]
    fn list<'a>(positions: &'a [u32], offsets: &[u32], i: usize) -> &'a [u32] {
        &positions[offsets[i] as usize..offsets[i + 1] as usize]
    }

    /// `|entry_i ∩ q|`.
    #[inline]
    pub fn and_count(&self, i: usize, probe: &QueryProbe) -> u32 {
        debug_assert_eq!(self.nbits, probe.nbits);
        match &self.repr {
            SoaRepr::Dense { lanes } => {
                kernels::active().and_count(Self::lane(lanes, self.stride, i), &probe.words)
            }
            SoaRepr::Sparse { positions, offsets } => {
                gallop_intersect_count(Self::list(positions, offsets, i), &probe.items)
            }
        }
    }

    /// The metric lower bound for entry `i` against the probe —
    /// `metric.mindist` with both cardinalities precomputed.
    #[inline]
    pub fn mindist(&self, i: usize, probe: &QueryProbe, metric: &Metric) -> f64 {
        metric.mindist_from_counts(probe.weight, self.and_count(i, probe))
    }

    /// The exact metric distance between leaf entry `i` and the probe.
    #[inline]
    pub fn dist(&self, i: usize, probe: &QueryProbe, metric: &Metric) -> f64 {
        metric.dist_from_counts(probe.weight, self.weight(i), self.and_count(i, probe))
    }

    /// `true` iff entry `i`'s signature covers the query (`e ⊇ q`): the
    /// descent test for subset (containment) queries.
    #[inline]
    pub fn contains_query(&self, i: usize, probe: &QueryProbe) -> bool {
        debug_assert_eq!(self.nbits, probe.nbits);
        match &self.repr {
            SoaRepr::Dense { lanes } => {
                kernels::active().contains(Self::lane(lanes, self.stride, i), &probe.words)
            }
            SoaRepr::Sparse { positions, offsets } => {
                contains_sorted(Self::list(positions, offsets, i), &probe.items)
            }
        }
    }

    /// `true` iff the query covers entry `i`'s signature (`q ⊇ e`): the
    /// superset-query test.
    #[inline]
    pub fn covered_by_query(&self, i: usize, probe: &QueryProbe) -> bool {
        debug_assert_eq!(self.nbits, probe.nbits);
        match &self.repr {
            SoaRepr::Dense { lanes } => {
                kernels::active().contains(&probe.words, Self::lane(lanes, self.stride, i))
            }
            SoaRepr::Sparse { positions, offsets } => {
                let list = Self::list(positions, offsets, i);
                let qw = &probe.words;
                list.iter()
                    .all(|&p| qw[p as usize / 64] >> (p as usize % 64) & 1 == 1)
            }
        }
    }

    /// `true` iff entry `i`'s signature equals the query exactly.
    #[inline]
    pub fn equals_query(&self, i: usize, probe: &QueryProbe) -> bool {
        self.weights[i] == probe.weight && self.covered_by_query(i, probe)
    }

    /// Materialises entry `i`'s signature (off the hot path: result
    /// assembly and tests).
    pub fn sig(&self, i: usize) -> Signature {
        match &self.repr {
            SoaRepr::Dense { lanes } => {
                let lane = Self::lane(lanes, self.stride, i);
                let words = lane[..Signature::words_for(self.nbits)]
                    .to_vec()
                    .into_boxed_slice();
                Signature::from_words(self.nbits, words)
            }
            SoaRepr::Sparse { positions, offsets } => {
                Signature::from_items(self.nbits, Self::list(positions, offsets, i))
            }
        }
    }
}

/// `|a ∩ b|` for two sorted, deduplicated slices, galloping through the
/// longer list: for each item of the shorter list, a doubling probe plus
/// binary search brackets its position in the longer one, so runs are
/// skipped in `O(log run)` rather than `O(run)`.
fn gallop_intersect_count(a: &[u32], b: &[u32]) -> u32 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut lo = 0usize;
    let mut hits = 0u32;
    for &item in short {
        lo = gallop_ge(long, lo, item);
        if lo >= long.len() {
            break;
        }
        if long[lo] == item {
            hits += 1;
            lo += 1;
        }
    }
    hits
}

/// `true` iff every item of `sub` occurs in the sorted slice `sup`.
fn contains_sorted(sup: &[u32], sub: &[u32]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut lo = 0usize;
    for &item in sub {
        lo = gallop_ge(sup, lo, item);
        if lo >= sup.len() || sup[lo] != item {
            return false;
        }
        lo += 1;
    }
    true
}

/// First index `>= lo` with `xs[index] >= target` (galloping search).
fn gallop_ge(xs: &[u32], lo: usize, target: u32) -> usize {
    if lo >= xs.len() || xs[lo] >= target {
        return lo;
    }
    let mut step = 1usize;
    while lo + step < xs.len() && xs[lo + step] < target {
        step <<= 1;
    }
    let left = lo + step / 2 + 1;
    let right = (lo + step).min(xs.len());
    xs[left..right].partition_point(|&x| x < target) + left
}

/// Encodes a signature as an (uncompressed) raw bitmap with the codec's
/// flag byte, so [`codec::decode`] reads it back transparently.
fn encode_raw(sig: &Signature, out: &mut Vec<u8>) {
    out.push(codec::RAW_FLAG);
    let mut remaining = codec::bitmap_bytes(sig.nbits());
    for word in sig.words() {
        let bytes = word.to_le_bytes();
        let take = remaining.min(8);
        out.extend_from_slice(&bytes[..take]);
        remaining -= take;
        if remaining == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_node(level: u16) -> Node {
        let mut n = Node::new(level);
        n.entries
            .push(Entry::new(Signature::from_items(300, &[1, 2, 3]), 10));
        n.entries.push(Entry::new(
            Signature::from_items(300, &(0..200).collect::<Vec<_>>()),
            11,
        ));
        n.entries.push(Entry::new(Signature::empty(300), 12));
        n
    }

    #[test]
    fn encode_decode_roundtrip_compressed() {
        let n = sample_node(0);
        let page = n.encode(4096, true);
        assert_eq!(page.len(), 4096);
        assert_eq!(Node::decode(300, &page), n);
    }

    #[test]
    fn encode_decode_roundtrip_uncompressed() {
        let n = sample_node(3);
        let page = n.encode(4096, false);
        let back = Node::decode(300, &page);
        assert_eq!(back, n);
        assert_eq!(back.level, 3);
    }

    #[test]
    fn uncompressed_encoding_has_fixed_entry_size() {
        let n = sample_node(1);
        let mut buf = Vec::new();
        for e in &n.entries {
            let before = buf.len();
            encode_raw(&e.sig, &mut buf);
            assert_eq!(buf.len() - before, codec::max_encoded_len(300));
        }
    }

    #[test]
    fn union_signature_is_or_of_entries() {
        let n = sample_node(0);
        let u = n.union_signature(300);
        for e in &n.entries {
            assert!(u.contains(&e.sig));
        }
        assert_eq!(u.count(), n.entries[0].sig.union_count(&n.entries[1].sig));
    }

    #[test]
    fn empty_node_roundtrip() {
        let n = Node::new(2);
        let page = n.encode(256, true);
        let back = Node::decode(300, &page);
        assert_eq!(back.level, 2);
        assert!(back.entries.is_empty());
    }

    #[test]
    #[should_panic(expected = "node overflows page")]
    fn oversized_node_panics() {
        let mut n = Node::new(0);
        for i in 0..100 {
            n.entries.push(Entry::new(
                Signature::from_items(300, &(0..250).collect::<Vec<_>>()),
                i,
            ));
        }
        n.encode(512, true);
    }

    /// Sweeps every per-entry SoA predicate against the AoS `Node` decode
    /// of the same page, for a set of probes.
    fn assert_soa_matches_node(nbits: u32, page: &[u8], probes: &[Signature]) {
        let node = Node::decode(nbits, page);
        let soa = SoaNode::decode(nbits, page);
        assert_eq!(soa.level, node.level);
        assert_eq!(soa.len(), node.entries.len());
        let metric = Metric::hamming();
        for (i, e) in node.entries.iter().enumerate() {
            assert_eq!(soa.ptr(i), e.ptr);
            assert_eq!(soa.weight(i), e.sig.count(), "cached weight, entry {i}");
            assert_eq!(soa.sig(i), e.sig, "materialised signature, entry {i}");
            for q in probes {
                let probe = QueryProbe::new(q);
                assert_eq!(soa.and_count(i, &probe), q.and_count(&e.sig));
                assert_eq!(soa.contains_query(i, &probe), e.sig.contains(q));
                assert_eq!(soa.covered_by_query(i, &probe), q.contains(&e.sig));
                assert_eq!(soa.equals_query(i, &probe), e.sig == *q);
                assert_eq!(
                    soa.mindist(i, &probe, &metric).to_bits(),
                    metric.mindist(q, &e.sig).to_bits()
                );
                assert_eq!(
                    soa.dist(i, &probe, &metric).to_bits(),
                    metric.dist(q, &e.sig).to_bits()
                );
            }
        }
    }

    fn probes(nbits: u32) -> Vec<Signature> {
        vec![
            Signature::empty(nbits),
            Signature::from_iter(nbits, 0..nbits),
            Signature::from_items(nbits, &[1, 2, 3]),
            Signature::from_items(nbits, &[2, 100, nbits - 1]),
            Signature::from_iter(nbits, (0..nbits).filter(|i| i % 3 == 0)),
        ]
    }

    #[test]
    fn soa_matches_node_on_mixed_density_page() {
        let n = sample_node(1);
        for compression in [true, false] {
            let page = n.encode(4096, compression);
            let soa = SoaNode::decode(300, &page);
            // The dense entry forces the dense representation.
            assert!(!soa.is_sparse(), "compression={compression}");
            assert_soa_matches_node(300, &page, &probes(300));
        }
    }

    #[test]
    fn soa_sparse_page_stays_compressed() {
        // Wide universe: stride = 66 words ≥ SPARSE_MIN_STRIDE, so short
        // position lists stay in compressed form.
        let nbits = 4200;
        let mut n = Node::new(0);
        for (i, items) in [&[1u32, 2, 3][..], &[7, 640, 1280, 4111], &[], &[4199]]
            .iter()
            .enumerate()
        {
            n.entries
                .push(Entry::new(Signature::from_items(nbits, items), i as u64));
        }
        let page = n.encode(8192, true);
        let soa = SoaNode::decode(nbits, &page);
        // All entries are short position lists: limit = 4200/64 = 65.
        assert!(soa.is_sparse());
        assert_soa_matches_node(nbits, &page, &probes(nbits));
    }

    #[test]
    fn soa_narrow_universe_never_sparse() {
        // Below SPARSE_MIN_STRIDE words a dense sweep is cheaper than
        // galloping, so list-encoded entries still materialize lanes.
        let nbits = 525; // 9 words -> stride 12 < 32
        let mut n = Node::new(0);
        n.entries
            .push(Entry::new(Signature::from_items(nbits, &[1, 2, 3]), 0));
        let page = n.encode(4096, true);
        assert!(!SoaNode::decode(nbits, &page).is_sparse());
        assert_soa_matches_node(nbits, &page, &probes(nbits));
    }

    #[test]
    fn soa_uncompressed_page_never_sparse() {
        // Without compression every entry is raw-encoded, so the sparse
        // representation must not be chosen even for tiny signatures.
        let nbits = 525;
        let mut n = Node::new(0);
        n.entries
            .push(Entry::new(Signature::from_items(nbits, &[1]), 0));
        let page = n.encode(4096, false);
        assert!(!SoaNode::decode(nbits, &page).is_sparse());
        assert_soa_matches_node(nbits, &page, &probes(nbits));
    }

    #[test]
    fn soa_empty_node() {
        let n = Node::new(2);
        let page = n.encode(256, true);
        let soa = SoaNode::decode(300, &page);
        assert_eq!(soa.level, 2);
        assert!(soa.is_empty());
        assert!(!soa.is_leaf());
    }

    /// Regression for the `sig.count()`-in-the-hot-loop fix: the visit
    /// order built from decode-time cached weights must be exactly the
    /// order the old code computed by re-popcounting every entry, so
    /// query results (which depend on the `(mindist, area)` tie-break)
    /// are unchanged.
    #[test]
    fn cached_weights_reproduce_recounted_visit_order() {
        let nbits = 300;
        let mut n = Node::new(1);
        // Entries engineered to collide on mindist but differ in weight,
        // so the ordering actually exercises the cached area tie-break.
        for (i, width) in [40u32, 10, 200, 10, 80, 1, 40].iter().enumerate() {
            let items: Vec<u32> = (0..*width).map(|j| (j * 7 + i as u32) % nbits).collect();
            n.entries
                .push(Entry::new(Signature::from_items(nbits, &items), i as u64));
        }
        let page = n.encode(4096, true);
        let soa = SoaNode::decode(nbits, &page);
        let metric = Metric::hamming();
        for q in probes(nbits) {
            let probe = QueryProbe::new(&q);
            let mut cached: Vec<(f64, u32, u64)> = (0..soa.len())
                .map(|i| (soa.mindist(i, &probe, &metric), soa.weight(i), soa.ptr(i)))
                .collect();
            let mut recounted: Vec<(f64, u32, u64)> = n
                .entries
                .iter()
                .map(|e| (metric.mindist(&q, &e.sig), e.sig.count(), e.ptr))
                .collect();
            let key = |t: &(f64, u32, u64)| (t.0.to_bits(), t.1, t.2);
            cached.sort_by_key(key);
            recounted.sort_by_key(key);
            assert_eq!(cached, recounted);
        }
    }

    #[test]
    fn lane_buf_is_cache_aligned() {
        for len in [0usize, 1, 4, 12, 100] {
            let buf = LaneBuf::new(len);
            let s = buf.as_slice();
            assert_eq!(s.len(), len);
            if len > 0 {
                assert_eq!(s.as_ptr() as usize % 64, 0, "len={len}");
            }
        }
    }

    #[test]
    fn stride_is_word_multiple_of_four() {
        assert_eq!(SoaNode::stride_for(63), 4);
        assert_eq!(SoaNode::stride_for(256), 4);
        assert_eq!(SoaNode::stride_for(257), 8);
        assert_eq!(SoaNode::stride_for(525), 12);
        assert_eq!(SoaNode::stride_for(1000), 16);
    }

    #[test]
    fn gallop_helpers_match_naive() {
        let sup: Vec<u32> = (0..100).chain(500..600).chain([1000, 1002]).collect();
        let subs: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![99, 100],
            vec![50, 550, 1002],
            (0..2000).filter(|x| x % 7 == 0).collect(),
            sup.clone(),
        ];
        for sub in &subs {
            let naive: u32 = sub.iter().filter(|x| sup.binary_search(x).is_ok()).count() as u32;
            assert_eq!(gallop_intersect_count(sub, &sup), naive, "{sub:?}");
            assert_eq!(gallop_intersect_count(&sup, sub), naive, "{sub:?} rev");
            let naive_contained = sub.iter().all(|x| sup.binary_search(x).is_ok());
            assert_eq!(contains_sorted(&sup, sub), naive_contained, "{sub:?}");
        }
    }

    #[test]
    fn max_capacity_node_fits_exactly() {
        // Fill a node to the capacity the config computes, with worst-case
        // (dense) signatures, and check it encodes within the page.
        let cfg = crate::TreeConfig::new(1000);
        let cap = cfg.capacity_for(4096);
        let dense = Signature::from_items(1000, &(0..1000).collect::<Vec<_>>());
        let mut n = Node::new(0);
        for i in 0..cap as u64 {
            n.entries.push(Entry::new(dense.clone(), i));
        }
        let page = n.encode(4096, true);
        assert_eq!(Node::decode(1000, &page).entries.len(), cap);
    }
}
