//! On-page node layout.
//!
//! A node is one disk page:
//!
//! ```text
//! [ level: u16 | count: u16 | entry … entry ]
//! entry = [ ptr: u64 LE | encoded signature ]
//! ```
//!
//! `level == 0` marks a leaf, where `ptr` is the transaction id; in a
//! directory node `ptr` is the child's page id. Signatures are stored with
//! the adaptive codec of `sg_sig::codec` (position list or raw bitmap); the
//! universe size is not repeated per node — it lives in the tree's meta
//! page.

use sg_sig::{codec, Signature};

/// Bytes of the fixed node header (`level` + `count`).
pub const NODE_HEADER: usize = 4;

/// One node entry: a signature plus either a child page id (directory) or a
/// transaction id (leaf).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// OR-signature of the subtree (directory) or the transaction's
    /// signature (leaf).
    pub sig: Signature,
    /// Child page id (directory) or transaction id (leaf).
    pub ptr: u64,
}

impl Entry {
    /// Creates an entry.
    pub fn new(sig: Signature, ptr: u64) -> Self {
        Entry { sig, ptr }
    }
}

/// Encoded size in bytes of one entry (pointer + signature) under the
/// given compression setting.
pub fn entry_encoded_len(sig: &Signature, compression: bool) -> usize {
    8 + if compression {
        codec::encoded_len(sig)
    } else {
        codec::max_encoded_len(sig.nbits())
    }
}

/// An in-memory node image.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// 0 for leaves; parents are one above their children.
    pub level: u16,
    /// The node's entries. May transiently exceed the capacity during an
    /// insert, between the overflow and the split.
    pub entries: Vec<Entry>,
}

impl Node {
    /// An empty node at `level`.
    pub fn new(level: u16) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Exact on-page size of the node in bytes under the given compression
    /// setting. Node capacity is *byte-budgeted*: a node overflows when
    /// this exceeds the page size, so sparse signatures buy proportionally
    /// higher fan-out (the practical payoff of §3.2's compression).
    pub fn encoded_size(&self, compression: bool) -> usize {
        NODE_HEADER
            + self
                .entries
                .iter()
                .map(|e| entry_encoded_len(&e.sig, compression))
                .sum::<usize>()
    }

    /// The OR of all entry signatures — the signature this node's parent
    /// entry must carry (Definition 5).
    pub fn union_signature(&self, nbits: u32) -> Signature {
        let mut sig = Signature::empty(nbits);
        for e in &self.entries {
            sig.or_assign(&e.sig);
        }
        sig
    }

    /// Serializes the node into a page image of exactly `page_size` bytes.
    ///
    /// With `compression` off every signature is stored as a raw bitmap
    /// (still preceded by the codec's flag byte so decoding is uniform).
    ///
    /// # Panics
    ///
    /// Panics if the encoded node exceeds the page — the tree's capacity
    /// accounting guarantees it never does.
    pub fn encode(&self, page_size: usize, compression: bool) -> Vec<u8> {
        let mut buf = Vec::with_capacity(page_size);
        buf.extend_from_slice(&self.level.to_le_bytes());
        buf.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for e in &self.entries {
            buf.extend_from_slice(&e.ptr.to_le_bytes());
            if compression {
                codec::encode(&e.sig, &mut buf);
            } else {
                encode_raw(&e.sig, &mut buf);
            }
        }
        assert!(
            buf.len() <= page_size,
            "node overflows page: {} > {} ({} entries)",
            buf.len(),
            page_size,
            self.entries.len()
        );
        buf.resize(page_size, 0);
        buf
    }

    /// Deserializes a node from a page image.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt page (reads past the end, bad positions): pages
    /// are only ever produced by [`Node::encode`], so corruption is a
    /// program error, not an input error.
    pub fn decode(nbits: u32, page: &[u8]) -> Node {
        let level = u16::from_le_bytes([page[0], page[1]]);
        let count = u16::from_le_bytes([page[2], page[3]]) as usize;
        let mut entries = Vec::with_capacity(count);
        let mut off = NODE_HEADER;
        for _ in 0..count {
            let ptr = u64::from_le_bytes(page[off..off + 8].try_into().expect("page truncated"));
            off += 8;
            let (sig, used) = codec::decode(nbits, &page[off..]).expect("corrupt node page");
            off += used;
            entries.push(Entry { sig, ptr });
        }
        Node { level, entries }
    }
}

/// Encodes a signature as an (uncompressed) raw bitmap with the codec's
/// flag byte, so [`codec::decode`] reads it back transparently.
fn encode_raw(sig: &Signature, out: &mut Vec<u8>) {
    out.push(codec::RAW_FLAG);
    let mut remaining = codec::bitmap_bytes(sig.nbits());
    for word in sig.words() {
        let bytes = word.to_le_bytes();
        let take = remaining.min(8);
        out.extend_from_slice(&bytes[..take]);
        remaining -= take;
        if remaining == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_node(level: u16) -> Node {
        let mut n = Node::new(level);
        n.entries
            .push(Entry::new(Signature::from_items(300, &[1, 2, 3]), 10));
        n.entries.push(Entry::new(
            Signature::from_items(300, &(0..200).collect::<Vec<_>>()),
            11,
        ));
        n.entries.push(Entry::new(Signature::empty(300), 12));
        n
    }

    #[test]
    fn encode_decode_roundtrip_compressed() {
        let n = sample_node(0);
        let page = n.encode(4096, true);
        assert_eq!(page.len(), 4096);
        assert_eq!(Node::decode(300, &page), n);
    }

    #[test]
    fn encode_decode_roundtrip_uncompressed() {
        let n = sample_node(3);
        let page = n.encode(4096, false);
        let back = Node::decode(300, &page);
        assert_eq!(back, n);
        assert_eq!(back.level, 3);
    }

    #[test]
    fn uncompressed_encoding_has_fixed_entry_size() {
        let n = sample_node(1);
        let mut buf = Vec::new();
        for e in &n.entries {
            let before = buf.len();
            encode_raw(&e.sig, &mut buf);
            assert_eq!(buf.len() - before, codec::max_encoded_len(300));
        }
    }

    #[test]
    fn union_signature_is_or_of_entries() {
        let n = sample_node(0);
        let u = n.union_signature(300);
        for e in &n.entries {
            assert!(u.contains(&e.sig));
        }
        assert_eq!(u.count(), n.entries[0].sig.union_count(&n.entries[1].sig));
    }

    #[test]
    fn empty_node_roundtrip() {
        let n = Node::new(2);
        let page = n.encode(256, true);
        let back = Node::decode(300, &page);
        assert_eq!(back.level, 2);
        assert!(back.entries.is_empty());
    }

    #[test]
    #[should_panic(expected = "node overflows page")]
    fn oversized_node_panics() {
        let mut n = Node::new(0);
        for i in 0..100 {
            n.entries.push(Entry::new(
                Signature::from_items(300, &(0..250).collect::<Vec<_>>()),
                i,
            ));
        }
        n.encode(512, true);
    }

    #[test]
    fn max_capacity_node_fits_exactly() {
        // Fill a node to the capacity the config computes, with worst-case
        // (dense) signatures, and check it encodes within the page.
        let cfg = crate::TreeConfig::new(1000);
        let cap = cfg.capacity_for(4096);
        let dense = Signature::from_items(1000, &(0..1000).collect::<Vec<_>>());
        let mut n = Node::new(0);
        for i in 0..cap as u64 {
            n.entries.push(Entry::new(dense.clone(), i));
        }
        let page = n.encode(4096, true);
        assert_eq!(Node::decode(1000, &page).entries.len(), cap);
    }
}
