//! The [`SgTree`] handle: meta page, node I/O, and the public maintenance
//! API (insert / delete / validate / statistics).

use crate::config::{ChooseSubtree, SplitPolicy, TreeConfig};
use crate::node::{Entry, Node, SoaNode};
use crate::Tid;
use sg_obs::{IndexObs, PoolObs, Registry};
use sg_pager::{BufferPool, PageId, PageStore, SgError};
use sg_sig::Signature;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"SGTREE01";

/// Former per-crate error type, now an alias of the workspace-wide
/// [`SgError`] (the `BadMeta` / `BadConfig` variants live there), so
/// `matches!(err, Err(SgError::BadConfig(_)))`-style call sites keep
/// compiling while they migrate.
#[deprecated(since = "0.1.0", note = "use `SgError` (re-exported by this crate)")]
pub type TreeError = SgError;

/// A signature tree over a page store.
///
/// Mutations (`insert`, `delete`) take `&mut self`; queries take `&self`.
/// The tree's meta state is flushed to page 0 by [`SgTree::flush`] and on
/// drop.
pub struct SgTree {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) config: TreeConfig,
    /// Worst-case guaranteed entries per node (used for sizing sanity and
    /// as the bulk-loading count floor). Actual capacity is byte-budgeted.
    pub(crate) capacity: usize,
    /// Minimum on-page node size in bytes for non-root nodes.
    pub(crate) min_node_bytes: usize,
    pub(crate) root: PageId,
    /// Number of levels; the root sits at level `height - 1`, leaves at 0.
    pub(crate) height: u16,
    pub(crate) len: u64,
    meta_page: PageId,
    meta_dirty: bool,
    /// Optional metrics instruments; `None` keeps every hot path at a
    /// single branch.
    obs: Option<Arc<IndexObs>>,
}

impl SgTree {
    /// Creates a new, empty tree on `store`. Claims two pages: the meta
    /// page and an empty root leaf.
    pub fn create(store: Arc<dyn PageStore>, config: TreeConfig) -> Result<SgTree, SgError> {
        let capacity = config.capacity_for(store.page_size());
        if capacity < 2 {
            return Err(SgError::BadConfig(format!(
                "page size {} fits only {} worst-case {}-bit entries; need ≥ 2",
                store.page_size(),
                capacity,
                config.nbits
            )));
        }
        let min_node_bytes = config.min_bytes_for(store.page_size());
        let pool = Arc::new(BufferPool::new(store, config.pool_frames));
        let meta_page = pool.allocate();
        let root = pool.allocate();
        let mut tree = SgTree {
            pool,
            config,
            capacity,
            min_node_bytes,
            root,
            height: 1,
            len: 0,
            meta_page,
            meta_dirty: true,
            obs: None,
        };
        tree.write_node(root, &Node::new(0));
        tree.flush();
        Ok(tree)
    }

    /// Reopens a tree previously [`SgTree::flush`]ed to `store`. Runtime
    /// knobs not persisted in the meta page (pool size) are taken from
    /// `config_hints`; structural parameters (nbits, capacity, policies)
    /// come from the meta page.
    pub fn open(
        store: Arc<dyn PageStore>,
        meta_page: PageId,
        config_hints: TreeConfig,
    ) -> Result<SgTree, SgError> {
        let pool = Arc::new(BufferPool::new(store, config_hints.pool_frames));
        let page = pool.read(meta_page);
        if &page[0..8] != MAGIC {
            return Err(SgError::BadMeta("magic mismatch".into()));
        }
        let nbits = u32::from_le_bytes(page[8..12].try_into().unwrap());
        let root = u64::from_le_bytes(page[12..20].try_into().unwrap());
        let height = u16::from_le_bytes(page[20..22].try_into().unwrap());
        let len = u64::from_le_bytes(page[22..30].try_into().unwrap());
        let split = SplitPolicy::from_byte(page[30])
            .ok_or_else(|| SgError::BadMeta(format!("unknown split policy {}", page[30])))?;
        let choose = ChooseSubtree::from_byte(page[31])
            .ok_or_else(|| SgError::BadMeta(format!("unknown choose policy {}", page[31])))?;
        let compression = page[32] != 0;
        let min_fill = f64::from_le_bytes(page[33..41].try_into().unwrap());
        if height == 0 {
            return Err(SgError::BadMeta("zero height".into()));
        }
        let config = TreeConfig {
            nbits,
            split,
            choose,
            min_fill,
            compression,
            pool_frames: config_hints.pool_frames,
        };
        let capacity = config.capacity_for(pool.page_size());
        let min_node_bytes = config.min_bytes_for(pool.page_size());
        Ok(SgTree {
            pool,
            config,
            capacity,
            min_node_bytes,
            root,
            height,
            len,
            meta_page,
            meta_dirty: false,
            obs: None,
        })
    }

    /// Attaches index-level metrics instruments. Queries and maintenance
    /// operations record into them from then on.
    pub fn attach_obs(&mut self, obs: Arc<IndexObs>) {
        self.obs = Some(obs);
    }

    /// Registers instruments for this tree under `<prefix>.*` (index
    /// counters and latency histograms) and `<prefix>.pool.*` (buffer-pool
    /// counters) in `registry`, and attaches both.
    pub fn register_obs(&mut self, registry: &Registry, prefix: &str) -> Arc<IndexObs> {
        let obs = IndexObs::register(registry, prefix);
        self.pool
            .attach_obs(PoolObs::register(registry, &format!("{prefix}.pool")));
        self.obs = Some(obs.clone());
        obs
    }

    /// The attached metrics instruments, if any.
    pub(crate) fn obs(&self) -> Option<&Arc<IndexObs>> {
        self.obs.as_ref()
    }

    /// Persists the meta page if dirty. Node pages are always written
    /// through, so after `flush` the store is a complete image of the tree.
    pub fn flush(&mut self) {
        if !self.meta_dirty {
            return;
        }
        let mut page = vec![0u8; self.pool.page_size()];
        page[0..8].copy_from_slice(MAGIC);
        page[8..12].copy_from_slice(&self.config.nbits.to_le_bytes());
        page[12..20].copy_from_slice(&self.root.to_le_bytes());
        page[20..22].copy_from_slice(&self.height.to_le_bytes());
        page[22..30].copy_from_slice(&self.len.to_le_bytes());
        page[30] = self.config.split.to_byte();
        page[31] = self.config.choose.to_byte();
        page[32] = self.config.compression as u8;
        page[33..41].copy_from_slice(&self.config.min_fill.to_le_bytes());
        self.pool.write(self.meta_page, &page);
        self.meta_dirty = false;
    }

    pub(crate) fn mark_dirty(&mut self) {
        self.meta_dirty = true;
    }

    /// The tree's configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Worst-case guaranteed entries per node: how many maximally dense
    /// entries fit a page. Nodes are byte-budgeted, so with compression a
    /// node of sparse signatures holds far more than this.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum on-page node size: the page size.
    pub fn max_node_bytes(&self) -> usize {
        self.pool.page_size()
    }

    /// Minimum on-page size of a non-root node (`min_fill ×` page size).
    pub fn min_node_bytes(&self) -> usize {
        self.min_node_bytes
    }

    /// Number of indexed transactions.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no transactions are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 for a single leaf root).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// The buffer pool, exposing I/O statistics and cache control.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The signature length (item-universe size).
    pub fn nbits(&self) -> u32 {
        self.config.nbits
    }

    /// The root node's page id.
    pub(crate) fn root_page(&self) -> PageId {
        self.root
    }

    pub(crate) fn read_node(&self, id: PageId) -> Node {
        let page = self.pool.read(id);
        sg_sig::account::add_bytes_decoded(page.len() as u64);
        Node::decode(self.config.nbits, &page)
    }

    /// Reads a node in the SoA layout the query paths sweep. Maintenance
    /// keeps using [`SgTree::read_node`] — [`SoaNode`] is read-only.
    pub(crate) fn read_soa(&self, id: PageId) -> SoaNode {
        let page = self.pool.read(id);
        sg_sig::account::add_bytes_decoded(page.len() as u64);
        let node = SoaNode::decode(self.config.nbits, &page);
        sg_sig::account::add_lane_ops(node.sweep_cost());
        node
    }

    pub(crate) fn write_node(&self, id: PageId, node: &Node) {
        let page = node.encode(self.pool.page_size(), self.config.compression);
        self.pool.write(id, &page);
    }

    pub(crate) fn alloc_node(&self, node: &Node) -> PageId {
        let id = self.pool.allocate();
        self.write_node(id, node);
        id
    }

    /// Walks the whole tree depth-first, calling `f` with each node's page
    /// id, the node, and the entry in its parent (None for the root).
    pub(crate) fn walk(&self, mut f: impl FnMut(PageId, &Node, Option<&Entry>)) {
        fn rec(
            tree: &SgTree,
            id: PageId,
            parent_entry: Option<&Entry>,
            f: &mut impl FnMut(PageId, &Node, Option<&Entry>),
        ) {
            let node = tree.read_node(id);
            f(id, &node, parent_entry);
            if !node.is_leaf() {
                for e in &node.entries {
                    rec(tree, e.ptr, Some(e), f);
                }
            }
        }
        rec(self, self.root, None, &mut f);
    }

    /// Returns every `(tid, signature)` currently indexed, in tree order.
    pub fn dump(&self) -> Vec<(Tid, Signature)> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.walk(|_, node, _| {
            if node.is_leaf() {
                for e in &node.entries {
                    out.push((e.ptr, e.sig.clone()));
                }
            }
        });
        out
    }

    /// Average entry *area* (number of set bits) per level — the tree
    /// quality metric of the paper's Table 1. Index 0 is the leaf level.
    pub fn level_areas(&self) -> Vec<f64> {
        let mut sums = vec![0f64; self.height as usize];
        let mut counts = vec![0u64; self.height as usize];
        self.walk(|_, node, _| {
            let l = node.level as usize;
            for e in &node.entries {
                sums[l] += e.sig.count() as f64;
                counts[l] += 1;
            }
        });
        sums.iter()
            .zip(counts.iter())
            .map(|(s, c)| if *c == 0 { 0.0 } else { s / *c as f64 })
            .collect()
    }

    /// Total number of node pages in the tree.
    pub fn node_count(&self) -> u64 {
        let mut n = 0;
        self.walk(|_, _, _| n += 1);
        n
    }

    /// Checks every structural invariant, panicking with a description of
    /// the first violation. Test-support API (O(size of tree)).
    ///
    /// Invariants checked:
    /// 1. every directory entry's signature equals the OR of its child
    ///    node's entry signatures (coverage is *exact*, not merely valid);
    /// 2. each child is exactly one level below its parent; leaves at 0;
    /// 3. every node fits its page and every non-root node meets the
    ///    byte-level minimum fill;
    /// 4. the number of leaf entries equals `len()`;
    /// 5. no page id appears twice.
    pub fn validate(&self) {
        let mut leaf_entries = 0u64;
        let mut seen = std::collections::HashSet::new();
        let root_id = self.root;
        let height = self.height;
        let mut stack = vec![(self.root, (self.height - 1), Option::<Entry>::None)];
        while let Some((id, expect_level, parent_entry)) = stack.pop() {
            assert!(seen.insert(id), "page {id} reachable twice");
            let node = self.read_node(id);
            assert_eq!(
                node.level, expect_level,
                "page {id}: level {} but expected {expect_level}",
                node.level
            );
            if let Some(pe) = &parent_entry {
                let union = node.union_signature(self.config.nbits);
                assert_eq!(
                    pe.sig, union,
                    "page {id}: parent signature is not the exact OR of the node"
                );
            }
            let bytes = node.encoded_size(self.config.compression);
            assert!(
                bytes <= self.pool.page_size(),
                "page {id}: node needs {bytes} bytes > page {}",
                self.pool.page_size()
            );
            if id == root_id {
                if height > 1 {
                    assert!(
                        node.entries.len() >= 2,
                        "directory root must hold ≥ 2 entries"
                    );
                }
            } else {
                assert!(
                    bytes >= self.min_node_bytes,
                    "page {id}: node has {bytes} bytes < minimum fill {}",
                    self.min_node_bytes
                );
            }
            if node.is_leaf() {
                leaf_entries += node.entries.len() as u64;
            } else {
                for e in &node.entries {
                    stack.push((e.ptr, expect_level - 1, Some(e.clone())));
                }
            }
        }
        assert_eq!(leaf_entries, self.len, "len() out of sync with leaves");
    }
}

impl Drop for SgTree {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_pager::MemStore;

    fn mem_tree(nbits: u32, page: usize) -> SgTree {
        SgTree::create(Arc::new(MemStore::new(page)), TreeConfig::new(nbits)).unwrap()
    }

    #[test]
    fn create_empty_tree() {
        let tree = mem_tree(100, 1024);
        assert_eq!(tree.len(), 0);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.validate();
    }

    #[test]
    fn create_rejects_tiny_pages() {
        let err = SgTree::create(Arc::new(MemStore::new(64)), TreeConfig::new(1000));
        assert!(matches!(err, Err(SgError::BadConfig(_))));
    }

    #[test]
    fn flush_and_reopen_roundtrip() {
        let store: Arc<dyn PageStore> = Arc::new(MemStore::new(1024));
        let nbits = 64;
        {
            let mut tree = SgTree::create(store.clone(), TreeConfig::new(nbits)).unwrap();
            for tid in 0..50u64 {
                let sig =
                    Signature::from_items(nbits, &[(tid % 64) as u32, ((tid * 7) % 64) as u32]);
                tree.insert(tid, &sig);
            }
            tree.flush();
        }
        let tree = SgTree::open(store, 0, TreeConfig::new(nbits)).unwrap();
        assert_eq!(tree.len(), 50);
        tree.validate();
        let dump = tree.dump();
        assert_eq!(dump.len(), 50);
    }

    #[test]
    fn open_rejects_garbage() {
        let store: Arc<dyn PageStore> = Arc::new(MemStore::new(1024));
        let pool = BufferPool::new(store.clone(), 4);
        let id = pool.allocate();
        pool.write(id, &vec![7u8; 1024]);
        let err = SgTree::open(store, id, TreeConfig::new(64));
        assert!(matches!(err, Err(SgError::BadMeta(_))));
    }

    #[test]
    fn meta_survives_policy_settings() {
        let store: Arc<dyn PageStore> = Arc::new(MemStore::new(1024));
        {
            let mut tree = SgTree::create(
                store.clone(),
                TreeConfig::new(64)
                    .split(SplitPolicy::AvLink)
                    .choose(ChooseSubtree::MinOverlap)
                    .compression(false),
            )
            .unwrap();
            tree.insert(1, &Signature::from_items(64, &[1]));
            tree.flush();
        }
        let tree = SgTree::open(store, 0, TreeConfig::new(64)).unwrap();
        assert_eq!(tree.config().split, SplitPolicy::AvLink);
        assert_eq!(tree.config().choose, ChooseSubtree::MinOverlap);
        assert!(!tree.config().compression);
        assert_eq!(tree.len(), 1);
    }
}
