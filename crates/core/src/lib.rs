//! # The signature tree (SG-tree)
//!
//! A Rust implementation of the index proposed in
//!
//! > Nikos Mamoulis, David W. Cheung, Wang Lian.
//! > *Similarity Search in Sets and Categorical Data Using the Signature
//! > Tree.* ICDE 2003, pp. 75–86.
//!
//! The SG-tree is a **dynamic, height-balanced, disk-based tree over bitmap
//! signatures**, structurally analogous to the R-tree: a leaf entry holds a
//! transaction's signature and its id; a directory entry holds the bitwise
//! OR of all signatures in the subtree below it plus a child pointer. All
//! nodes (except the root) hold between `c` and `C` entries, where `C` is
//! derived from the page size.
//!
//! Because a directory signature *covers* everything below it, branch-and-
//! bound search algorithms from the R-tree world carry over: the crate
//! implements depth-first NN (the paper's Figure 4), best-first (optimal)
//! NN, k-NN, similarity range queries, containment/superset/exact queries,
//! similarity joins and closest-pair queries, under Hamming, Jaccard, Dice
//! and overlap metrics with the fixed-dimensionality refinement of §6 for
//! categorical data.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use sg_pager::MemStore;
//! use sg_sig::{Metric, Signature};
//! use sg_tree::{SgTree, TreeConfig};
//!
//! let nbits = 100;
//! let store = Arc::new(MemStore::new(1024));
//! let mut tree = SgTree::create(store, TreeConfig::new(nbits)).unwrap();
//! for (tid, items) in [(0u64, vec![1u32, 2, 3]), (1, vec![2, 3, 4]), (2, vec![50, 60])] {
//!     tree.insert(tid, &Signature::from_items(nbits, &items));
//! }
//! let (hits, _stats) = tree.nn(&Signature::from_items(nbits, &[2, 3]), &Metric::hamming());
//! assert_eq!(hits[0].tid, 0); // {1,2,3} is Hamming-closest to {2,3}
//! ```

mod config;
mod delete;
mod insert;
mod node;
mod split;
mod tree;

pub mod api;
pub mod bulkload;
pub mod cluster;
pub mod health;
pub mod query;
pub mod scan;
pub mod stats;
pub mod treestats;

pub use api::{CancelFlag, QueryOptions, QueryOutput, QueryRequest, QueryResponse, SetIndex};
pub use config::{ChooseSubtree, SplitPolicy, TreeConfig};
pub use health::{Finding, HealthReport, LevelHealth, Severity};
pub use node::{Entry, LaneBuf, Node, QueryProbe, SoaNode};
pub use query::{JoinPair, Neighbor, NnIter, SharedBound};
pub use scan::ScanIndex;
pub use sg_obs::{IndexObs, QueryTrace, Registry};
pub use sg_pager::{SgError, SgResult};
pub use stats::QueryStats;
pub use tree::SgTree;
#[allow(deprecated)]
pub use tree::TreeError;
pub use treestats::{LevelStats, TreeStats};

/// Transaction identifier stored in leaf entries.
pub type Tid = u64;

// Compile-time thread-safety audit: queries take `&self`, so the sharded
// executor (and any other fan-out layer) shares trees across worker
// threads. These assertions fail the build — instead of silently
// un-`Sync`-ing downstream crates — if a non-thread-safe field ever
// sneaks into the query path.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SgTree>();
    assert_send_sync::<ScanIndex>();
    assert_send_sync::<SharedBound>();
    assert_send_sync::<Neighbor>();
    assert_send_sync::<QueryStats>();
};
