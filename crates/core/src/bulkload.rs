//! Gray-code bulk loading (§6, future work): sort the transactions by the
//! gray-code order of their signatures — the set-data analogue of sorting
//! by a space-filling curve before bulk-loading an R-tree (Kamel &
//! Faloutsos' Hilbert R-tree, the paper's \[17\]) — then pack nodes bottom-up
//! at a chosen fill factor.
//!
//! Consecutive signatures in gray order differ in few items, so packed
//! leaves hold similar transactions, which is exactly the clustering goal
//! of the insertion heuristics — obtained in one sort instead of `n`
//! guided insertions.

use crate::node::{entry_encoded_len, Entry, Node, NODE_HEADER};
use crate::split::{rebalance, SplitBudget};
use crate::tree::SgTree;
use crate::{Tid, TreeConfig};
use sg_pager::PageStore;
use sg_pager::SgError;
use sg_sig::Signature;
use std::sync::Arc;

/// Bulk-loads a tree from `(tid, signature)` pairs, packing nodes to
/// `fill` of the page's byte budget (values below the tree's `min_fill`
/// are raised to it). The classic packing fill is 1.0; lower values leave
/// room for subsequent inserts.
///
/// ```
/// use std::sync::Arc;
/// use sg_pager::MemStore;
/// use sg_sig::{Metric, Signature};
/// use sg_tree::{bulkload, TreeConfig};
///
/// let data = (0..500u64)
///     .map(|tid| (tid, Signature::from_items(200, &[(tid % 200) as u32])));
/// let tree = bulkload::bulk_load(
///     Arc::new(MemStore::new(1024)),
///     TreeConfig::new(200),
///     data,
///     1.0,
/// ).unwrap();
/// assert_eq!(tree.len(), 500);
/// let (nn, _) = tree.nn(&Signature::from_items(200, &[7]), &Metric::hamming());
/// assert_eq!(nn[0].dist, 0.0);
/// ```
pub fn bulk_load(
    store: Arc<dyn PageStore>,
    config: TreeConfig,
    data: impl IntoIterator<Item = (Tid, Signature)>,
    fill: f64,
) -> Result<SgTree, SgError> {
    let mut tree = SgTree::create(store, config)?;
    let nbits = tree.nbits();

    // Sort by gray key (ties by tid for determinism).
    let mut items: Vec<(Tid, Signature)> = data.into_iter().collect();
    for (_, sig) in &items {
        assert_eq!(sig.nbits(), nbits, "signature universe mismatch");
    }
    if items.is_empty() {
        return Ok(tree);
    }
    let mut keyed: Vec<(Vec<u64>, Tid, Signature)> = items
        .drain(..)
        .map(|(tid, sig)| (sig.gray_key(), tid, sig))
        .collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    let fill = fill.clamp(tree.config().min_fill.max(0.05), 1.0);

    // Pack leaves, then directory levels until one entry remains.
    let leaf_entries: Vec<Entry> = keyed
        .into_iter()
        .map(|(_, tid, sig)| Entry::new(sig, tid))
        .collect();
    let mut level = 0u16;
    let mut level_entries = pack_level(&tree, level, leaf_entries, fill);
    while level_entries.len() > 1 {
        level += 1;
        level_entries = pack_level(&tree, level, level_entries, fill);
    }

    // Install the single remaining entry's node as the root. The tree was
    // created with an (empty) root leaf; re-point it.
    let top = level_entries.pop().expect("nonempty data packs ≥ 1 node");
    let old_root = tree.root;
    tree.pool.free(old_root);
    tree.root = top.ptr;
    tree.height = level + 1;
    tree.len = count_leaves(&tree);
    tree.mark_dirty();
    tree.flush();
    Ok(tree)
}

/// Packs one level's entries (already in gray order) into byte-budgeted
/// nodes of roughly `fill ×` a page each, and returns the parent entries
/// for the next level.
///
/// A short tail is merged or rebalanced into its neighbor so every node
/// (except a lone root) meets the minimum fill.
fn pack_level(tree: &SgTree, level: u16, entries: Vec<Entry>, fill: f64) -> Vec<Entry> {
    let compression = tree.config().compression;
    let page_budget = tree.max_node_bytes() - NODE_HEADER;
    let per_node = (((page_budget as f64) * fill) as usize).clamp(1, page_budget);

    // Greedy fill: close a node when the next entry would push it past the
    // target — but never before the node meets the minimum fill, and
    // always before it would overflow the page.
    let min_entry_bytes = tree.min_node_bytes().saturating_sub(NODE_HEADER);
    let mut groups: Vec<Vec<Entry>> = Vec::new();
    let mut current: Vec<Entry> = Vec::new();
    let mut bytes = 0usize;
    for e in entries {
        let sz = entry_encoded_len(&e.sig, compression);
        let must_close = bytes + sz > page_budget;
        let want_close = bytes + sz > per_node && bytes >= min_entry_bytes;
        if !current.is_empty() && (must_close || want_close) {
            groups.push(std::mem::take(&mut current));
            bytes = 0;
        }
        bytes += sz;
        current.push(e);
    }
    if !current.is_empty() {
        groups.push(current);
    }

    // The tail group may be under the minimum fill: merge it into its
    // neighbor when the pair fits one page, otherwise rebalance the pair
    // (feasible: their total exceeds a page, which is at least twice the
    // minimum because `min_fill ≤ 0.5`).
    if groups.len() >= 2 && bytes + NODE_HEADER < tree.min_node_bytes() {
        let last = groups.pop().expect("len >= 2");
        let mut prev = groups.pop().expect("len >= 2");
        let prev_bytes: usize = prev
            .iter()
            .map(|e| entry_encoded_len(&e.sig, compression))
            .sum();
        if prev_bytes + bytes <= page_budget {
            prev.extend(last);
            groups.push(prev);
        } else {
            let budget = SplitBudget {
                min_bytes: tree.min_node_bytes(),
                max_bytes: tree.max_node_bytes(),
                compression,
            };
            let mut last = last;
            rebalance(&mut prev, &mut last, &budget);
            groups.push(prev);
            groups.push(last);
        }
    }

    groups
        .into_iter()
        .map(|group| write_group(tree, level, group))
        .collect()
}

fn write_group(tree: &SgTree, level: u16, entries: Vec<Entry>) -> Entry {
    let node = Node { level, entries };
    let sig = node.union_signature(tree.nbits());
    let page = tree.alloc_node(&node);
    Entry::new(sig, page)
}

fn count_leaves(tree: &SgTree) -> u64 {
    let mut n = 0u64;
    tree.walk(|_, node, _| {
        if node.is_leaf() {
            n += node.entries.len() as u64;
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_pager::MemStore;
    use sg_sig::Metric;

    fn data(n: u64, nbits: u32) -> Vec<(Tid, Signature)> {
        (0..n)
            .map(|tid| {
                let items = [
                    (tid % nbits as u64) as u32,
                    ((tid * 7 + 1) % nbits as u64) as u32,
                    ((tid * 13 + 5) % nbits as u64) as u32,
                ];
                (tid, Signature::from_items(nbits, &items))
            })
            .collect()
    }

    fn load(n: u64, fill: f64) -> SgTree {
        bulk_load(
            Arc::new(MemStore::new(512)),
            TreeConfig::new(128),
            data(n, 128),
            fill,
        )
        .unwrap()
    }

    #[test]
    fn bulk_load_satisfies_invariants() {
        for n in [1u64, 5, 37, 200, 1000] {
            let tree = load(n, 1.0);
            assert_eq!(tree.len(), n, "n={n}");
            tree.validate();
        }
    }

    #[test]
    fn bulk_load_partial_fill() {
        let tree = load(500, 0.7);
        assert_eq!(tree.len(), 500);
        tree.validate();
        // Partial fill uses more nodes than full fill.
        let full = load(500, 1.0);
        assert!(tree.node_count() >= full.node_count());
    }

    #[test]
    fn bulk_load_empty() {
        let tree = bulk_load(
            Arc::new(MemStore::new(512)),
            TreeConfig::new(128),
            std::iter::empty(),
            1.0,
        )
        .unwrap();
        assert!(tree.is_empty());
        tree.validate();
    }

    #[test]
    fn bulk_loaded_tree_answers_queries_exactly() {
        let items = data(300, 128);
        let tree = load(300, 1.0);
        let m = Metric::hamming();
        let q = Signature::from_items(128, &[3, 22, 44]);
        let (got, _) = tree.knn(&q, 10, &m);
        // Brute-force ground truth.
        let mut truth: Vec<(u64, f64)> =
            items.iter().map(|(tid, s)| (*tid, m.dist(&q, s))).collect();
        truth.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let got_d: Vec<f64> = got.iter().map(|n| n.dist).collect();
        let truth_d: Vec<f64> = truth.iter().take(10).map(|(_, d)| *d).collect();
        assert_eq!(got_d, truth_d);
    }

    #[test]
    fn bulk_loaded_tree_supports_subsequent_updates() {
        let mut tree = load(200, 0.8);
        for (tid, sig) in data(100, 128) {
            tree.insert(tid + 10_000, &sig);
        }
        assert_eq!(tree.len(), 300);
        tree.validate();
        let (tid0_sigableitems, _) = (data(1, 128), ());
        let (tid, sig) = &tid0_sigableitems[0];
        assert!(tree.delete(*tid, sig));
        tree.validate();
    }

    #[test]
    fn gray_order_clusters_leaves() {
        // A bulk-loaded tree should have lower (or equal) average leaf-
        // parent area than loading in random order would give: check
        // against a tree built by one-by-one insertion of shuffled input.
        let tree = load(800, 1.0);
        let areas = tree.level_areas();
        // Level-1 directory entries should be far below the universe size;
        // loose packing would approach it.
        if areas.len() > 1 {
            assert!(
                areas[1] < 100.0,
                "level-1 average area too large: {}",
                areas[1]
            );
        }
    }
}
