//! Insertion: the generic balanced-tree algorithm of the paper's Figure 3
//! with the SG-specific `ChooseSubtree` heuristics of §3.1.

use crate::config::ChooseSubtree;
use crate::node::{Entry, Node};
use crate::split::{split_entries, SplitBudget};
use crate::tree::SgTree;
use crate::Tid;
use sg_pager::PageId;
use sg_sig::Signature;

/// Outcome of inserting into a subtree.
pub(crate) enum InsertResult {
    /// No split; carries the subtree's new union signature for the parent
    /// entry.
    Ok(Signature),
    /// The node split: its new union signature plus the entry for the newly
    /// created sibling, to be installed in the parent.
    Split(Signature, Entry),
}

impl SgTree {
    /// Inserts a transaction.
    ///
    /// Duplicate `tid`s are not rejected — the tree is a secondary index
    /// and id uniqueness is the caller's concern (the paper's workloads
    /// always use unique ids).
    ///
    /// # Panics
    ///
    /// Panics if `sig` is over a different universe than the tree.
    pub fn insert(&mut self, tid: Tid, sig: &Signature) {
        assert_eq!(
            sig.nbits(),
            self.config.nbits,
            "signature universe mismatch"
        );
        let start = self.obs().map(|_| std::time::Instant::now());
        self.insert_entry(Entry::new(sig.clone(), tid));
        self.len += 1;
        self.mark_dirty();
        if let Some(start) = start {
            if let Some(obs) = self.obs() {
                obs.inserts.inc();
                obs.insert_ns.record(start.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Inserts a prepared leaf entry without touching `len` (shared by
    /// `insert` and delete-time reinsertion).
    pub(crate) fn insert_entry(&mut self, entry: Entry) {
        match self.insert_rec(self.root, entry) {
            InsertResult::Ok(_) => {}
            InsertResult::Split(old_sig, new_entry) => {
                let old_root = self.root;
                let mut root = Node::new(self.height);
                root.entries.push(Entry::new(old_sig, old_root));
                root.entries.push(new_entry);
                self.root = self.alloc_node(&root);
                self.height += 1;
                self.mark_dirty();
            }
        }
    }

    fn insert_rec(&mut self, page: PageId, entry: Entry) -> InsertResult {
        let mut node = self.read_node(page);
        if node.is_leaf() {
            node.entries.push(entry);
            return self.finish_node(page, node);
        }
        if let Some(obs) = self.obs() {
            obs.choose_entries_scanned.add(node.entries.len() as u64);
        }
        let idx = choose_subtree(&node.entries, &entry.sig, self.config.choose);
        let child = node.entries[idx].ptr;
        match self.insert_rec(child, entry) {
            InsertResult::Ok(child_sig) => {
                node.entries[idx].sig = child_sig;
                self.finish_node(page, node)
            }
            InsertResult::Split(child_sig, new_entry) => {
                node.entries[idx].sig = child_sig;
                node.entries.push(new_entry);
                self.finish_node(page, node)
            }
        }
    }

    /// Writes `node` back, splitting first if it overflows its page;
    /// returns the result the parent needs.
    fn finish_node(&mut self, page: PageId, node: Node) -> InsertResult {
        let nbits = self.config.nbits;
        if node.encoded_size(self.config.compression) <= self.pool.page_size() {
            let sig = node.union_signature(nbits);
            self.write_node(page, &node);
            return InsertResult::Ok(sig);
        }
        if let Some(obs) = self.obs() {
            obs.splits.inc();
        }
        let level = node.level;
        let budget = SplitBudget {
            min_bytes: self.min_node_bytes,
            max_bytes: self.pool.page_size(),
            compression: self.config.compression,
        };
        let (a, b) = split_entries(node.entries, self.config.split, budget);
        let node_a = Node { level, entries: a };
        let node_b = Node { level, entries: b };
        let sig_a = node_a.union_signature(nbits);
        let sig_b = node_b.union_signature(nbits);
        self.write_node(page, &node_a);
        let page_b = self.alloc_node(&node_b);
        InsertResult::Split(sig_a, Entry::new(sig_b, page_b))
    }
}

/// The §3.1 `ChooseSubtree`: three cases on containment, then the
/// configured heuristic.
pub(crate) fn choose_subtree(entries: &[Entry], sig: &Signature, policy: ChooseSubtree) -> usize {
    debug_assert!(!entries.is_empty());
    // Case 1 & 2: entries that already contain the new signature; inserting
    // under them costs no enlargement. One → take it; several → the one
    // with minimum area ("this refines the structure").
    let mut best_containing: Option<(usize, u32)> = None;
    for (i, e) in entries.iter().enumerate() {
        if e.sig.contains(sig) {
            let area = e.sig.count();
            match best_containing {
                Some((_, a)) if a <= area => {}
                _ => best_containing = Some((i, area)),
            }
        }
    }
    if let Some((i, _)) = best_containing {
        return i;
    }
    // Case 3: no entry contains it.
    match policy {
        ChooseSubtree::MinEnlargement => {
            // Minimum area enlargement; ties by minimum area.
            let mut best = 0usize;
            let mut best_key = (u32::MAX, u32::MAX);
            for (i, e) in entries.iter().enumerate() {
                let key = (e.sig.enlargement(sig), e.sig.count());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
        ChooseSubtree::MinOverlap => {
            // Minimum overlap increase with siblings; ties by minimum
            // enlargement, then minimum area. O(|entries|²) signature
            // intersections — the insertion-cost premium the paper measured
            // and rejected.
            let mut best = 0usize;
            let mut best_key = (u32::MAX, u32::MAX, u32::MAX);
            for (i, e) in entries.iter().enumerate() {
                let extended = e.sig.or(sig);
                let mut overlap_increase = 0u32;
                for (j, other) in entries.iter().enumerate() {
                    if i != j {
                        overlap_increase +=
                            extended.and_count(&other.sig) - e.sig.and_count(&other.sig);
                    }
                }
                let key = (overlap_increase, e.sig.enlargement(sig), e.sig.count());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeConfig;
    use sg_pager::MemStore;
    use std::sync::Arc;

    fn sig(items: &[u32]) -> Signature {
        Signature::from_items(64, items)
    }

    fn entries(sigs: &[&[u32]]) -> Vec<Entry> {
        sigs.iter()
            .enumerate()
            .map(|(i, s)| Entry::new(sig(s), i as u64))
            .collect()
    }

    #[test]
    fn choose_single_containing_entry() {
        let es = entries(&[&[1, 2, 3], &[10, 11]]);
        assert_eq!(
            choose_subtree(&es, &sig(&[1, 3]), ChooseSubtree::MinEnlargement),
            0
        );
    }

    #[test]
    fn choose_smallest_area_among_containing() {
        let es = entries(&[&[1, 2, 3, 4, 5], &[1, 2, 3]]);
        assert_eq!(
            choose_subtree(&es, &sig(&[1, 2]), ChooseSubtree::MinEnlargement),
            1
        );
    }

    #[test]
    fn choose_min_enlargement_when_none_contains() {
        let es = entries(&[&[1, 2, 3], &[10, 11, 12]]);
        // {3, 4}: enlarging entry 0 costs 1, entry 1 costs 2.
        assert_eq!(
            choose_subtree(&es, &sig(&[3, 4]), ChooseSubtree::MinEnlargement),
            0
        );
    }

    #[test]
    fn choose_enlargement_tie_broken_by_area() {
        let es = entries(&[&[1, 2, 3, 4], &[10, 11]]);
        // {50}: both enlarge by 1; entry 1 has the smaller area.
        assert_eq!(
            choose_subtree(&es, &sig(&[50]), ChooseSubtree::MinEnlargement),
            1
        );
    }

    #[test]
    fn choose_min_overlap_prefers_discriminating_entry() {
        // Entry 0 overlaps heavily with entry 2; extending entry 1 adds no
        // overlap with anyone.
        let es = entries(&[&[1, 2, 3], &[20, 21, 22], &[1, 2, 40]]);
        let q = sig(&[3, 41]);
        // Extending e0 with {41}: no new overlap. Extending e1: none.
        // Extending e2 with {3}: overlaps e0 (which has 3) → +1.
        let pick = choose_subtree(&es, &q, ChooseSubtree::MinOverlap);
        assert_ne!(pick, 2);
    }

    #[test]
    fn insert_many_keeps_invariants_all_policies() {
        for choose in [ChooseSubtree::MinEnlargement, ChooseSubtree::MinOverlap] {
            let store = Arc::new(MemStore::new(512));
            let cfg = TreeConfig::new(128).choose(choose);
            let mut tree = SgTree::create(store, cfg).unwrap();
            for tid in 0..300u64 {
                let items = [
                    (tid % 128) as u32,
                    ((tid * 7 + 1) % 128) as u32,
                    ((tid * 13 + 5) % 128) as u32,
                ];
                tree.insert(tid, &Signature::from_items(128, &items));
            }
            assert_eq!(tree.len(), 300);
            assert!(tree.height() > 1, "tree should have grown");
            tree.validate();
        }
    }

    #[test]
    fn all_inserted_tids_retrievable() {
        let store = Arc::new(MemStore::new(512));
        let mut tree = SgTree::create(store, TreeConfig::new(128)).unwrap();
        let mut expected = Vec::new();
        for tid in 0..200u64 {
            let items = [(tid % 128) as u32, ((tid * 31) % 128) as u32];
            let s = Signature::from_items(128, &items);
            tree.insert(tid, &s);
            expected.push(tid);
        }
        let mut got: Vec<u64> = tree.dump().into_iter().map(|(tid, _)| tid).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn duplicate_signatures_accepted() {
        let store = Arc::new(MemStore::new(512));
        let mut tree = SgTree::create(store, TreeConfig::new(64)).unwrap();
        let s = sig(&[1, 2, 3]);
        for tid in 0..50u64 {
            tree.insert(tid, &s);
        }
        assert_eq!(tree.len(), 50);
        tree.validate();
    }
}
