//! Clustering set data with the SG-tree (§6, future work).
//!
//! The paper's conclusions propose using the tree to cluster "large
//! dynamic collections of set and categorical data … e.g. by merging the
//! leaf nodes using their signatures as guides", noting that dedicated
//! categorical clustering algorithms cost at least O(n²) while the tree
//! has already grouped similar transactions into its ~n/C leaves.
//!
//! [`leaf_clusters`] implements that sketch: it agglomeratively merges the
//! tree's *leaf signatures* (group-average linkage on the union bitmaps,
//! the same machinery as the `av-link` split) until `k` clusters remain,
//! then labels every transaction with its leaf's cluster. Complexity is
//! O(L²·w) for L leaves of w-word signatures — independent of n² — plus
//! one tree walk.
//!
//! This is a *seeding/partitioning* tool, not a replacement for a tuned
//! clustering pipeline: its quality rests on the insertion heuristics
//! having co-located similar transactions, which the paper's Table 1
//! metrics (and ours) show they do.

use crate::tree::SgTree;
use crate::Tid;
use sg_sig::{Metric, Signature};

/// The result of [`leaf_clusters`].
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `(tid, cluster index)` for every indexed transaction.
    pub assignments: Vec<(Tid, usize)>,
    /// Per-cluster union signature (the OR of all member transactions).
    pub signatures: Vec<Signature>,
    /// Per-cluster member count.
    pub sizes: Vec<u64>,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.signatures.len()
    }

    /// The cluster best covering `sig` (useful for assigning new points
    /// without re-clustering). A cluster's union signature is a coverage
    /// region, not a point, so routing uses the directory lower bound
    /// `metric.mindist` — exactly how the tree itself routes queries —
    /// with ties broken toward the smaller (denser) cluster, as in
    /// Figure 4's secondary sort key.
    pub fn nearest_cluster(&self, sig: &Signature, metric: &Metric) -> Option<usize> {
        self.signatures
            .iter()
            .enumerate()
            .map(|(i, c)| (i, metric.mindist(sig, c), c.count()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.2.cmp(&b.2)))
            .map(|(i, _, _)| i)
    }
}

struct LeafGroup {
    sig: Signature,
    tids: Vec<Tid>,
}

/// Clusters the indexed transactions into (at most) `k` groups by merging
/// leaf nodes on their signatures. Returns fewer than `k` clusters only
/// when the tree has fewer leaves than `k`, in which case each leaf is
/// its own cluster.
///
/// `metric` measures distance *between union signatures*; a
/// scale-invariant metric (Jaccard or Dice) is recommended — under plain
/// Hamming, small unions look spuriously close to everything.
pub fn leaf_clusters(tree: &SgTree, k: usize, metric: &Metric) -> Clustering {
    assert!(k >= 1, "need at least one cluster");
    let nbits = tree.nbits();
    // Collect the leaves: union signature + member tids.
    let mut groups: Vec<LeafGroup> = Vec::new();
    tree.walk(|_, node, _| {
        if node.is_leaf() && !node.entries.is_empty() {
            groups.push(LeafGroup {
                sig: node.union_signature(nbits),
                tids: node.entries.iter().map(|e| e.ptr).collect(),
            });
        }
    });
    // Agglomerative merging, group-average linkage approximated on the
    // union signatures (the distance between two groups is the metric
    // distance between their unions — cheap, and exactly the guide the
    // paper suggests).
    let mut alive: Vec<bool> = vec![true; groups.len()];
    let mut n_alive = groups.len();
    while n_alive > k {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..groups.len() {
            if !alive[i] {
                continue;
            }
            for j in (i + 1)..groups.len() {
                if !alive[j] {
                    continue;
                }
                let d = metric.dist(&groups[i].sig, &groups[j].sig);
                if best.map_or(true, |(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, _) = best.expect("more groups than k");
        let taken = std::mem::take(&mut groups[j].tids);
        groups[i].tids.extend(taken);
        let sig_j = groups[j].sig.clone();
        groups[i].sig.or_assign(&sig_j);
        alive[j] = false;
        n_alive -= 1;
    }
    let mut assignments = Vec::with_capacity(tree.len() as usize);
    let mut signatures = Vec::with_capacity(n_alive);
    let mut sizes = Vec::with_capacity(n_alive);
    for (g, a) in groups.into_iter().zip(alive) {
        if !a {
            continue;
        }
        let idx = signatures.len();
        sizes.push(g.tids.len() as u64);
        for tid in g.tids {
            assignments.push((tid, idx));
        }
        signatures.push(g.sig);
    }
    assignments.sort_unstable_by_key(|(tid, _)| *tid);
    Clustering {
        assignments,
        signatures,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeConfig;
    use sg_pager::MemStore;
    use std::sync::Arc;

    const NBITS: u32 = 256;

    /// Four perfectly separated item bands, interleaved in the insertion
    /// stream (band of `tid` = `tid % 4`).
    fn banded_tree(n_per_band: u64) -> SgTree {
        let mut tree =
            SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
        for i in 0..n_per_band {
            for band in 0..4u64 {
                let tid = i * 4 + band;
                let base = band as u32 * 64;
                let items = [
                    base + (i % 20) as u32,
                    base + ((i * 7 + 1) % 40) as u32,
                    base + ((i * 3 + 2) % 60) as u32,
                ];
                tree.insert(tid, &Signature::from_items(NBITS, &items));
            }
        }
        tree
    }

    #[test]
    fn recovers_separated_bands_from_bulk_loaded_tree() {
        // Gray-code bulk loading sorts the bands apart, so leaves are pure
        // except at the band boundaries (one straddling leaf per
        // transition): the merge phase must recover each band almost
        // entirely, into four distinct clusters.
        let n = 200u64;
        let mut data = Vec::new();
        for i in 0..n {
            for band in 0..4u64 {
                let tid = i * 4 + band;
                let base = band as u32 * 64;
                let items = [
                    base + (i % 20) as u32,
                    base + ((i * 7 + 1) % 40) as u32,
                    base + ((i * 3 + 2) % 60) as u32,
                ];
                data.push((tid, Signature::from_items(NBITS, &items)));
            }
        }
        let tree = crate::bulkload::bulk_load(
            Arc::new(MemStore::new(512)),
            TreeConfig::new(NBITS),
            data,
            1.0,
        )
        .unwrap();
        let c = leaf_clusters(&tree, 4, &Metric::jaccard());
        assert_eq!(c.k(), 4);
        let mut counts = [[0u64; 4]; 4];
        for &(tid, cl) in &c.assignments {
            counts[(tid % 4) as usize][cl] += 1;
        }
        let mut majority = [0usize; 4];
        for band in 0..4 {
            let (cl, &cnt) = counts[band]
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .unwrap();
            assert!(
                cnt as f64 >= 0.75 * n as f64, // up to one straddling leaf per boundary
                "band {band} not recovered: {:?}",
                counts[band]
            );
            majority[band] = cl;
        }
        let mut sorted = majority;
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2, 3]);
    }

    #[test]
    fn majority_recovery_from_insertion_built_tree() {
        // An insertion-built tree carries historical mixing in its leaves
        // (min-fill rebalancing moves entries across groups), so the
        // method's purity is bounded by leaf purity: assert majority
        // recovery and distinct majority clusters, not perfection.
        let n = 200u64;
        let tree = banded_tree(n);
        let c = leaf_clusters(&tree, 4, &Metric::jaccard());
        assert_eq!(c.k(), 4);
        let mut counts = [[0u64; 4]; 4];
        for &(tid, cl) in &c.assignments {
            counts[(tid % 4) as usize][cl] += 1;
        }
        let mut majority = [usize::MAX; 4];
        for band in 0..4 {
            let (cl, &cnt) = counts[band]
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .unwrap();
            assert!(
                cnt as f64 >= 0.5 * n as f64,
                "band {band} has no majority cluster: {:?}",
                counts[band]
            );
            majority[band] = cl;
        }
        // Historical mixing can chain two bands into one cluster; the
        // partition must still be non-trivial (bulk-loaded trees recover
        // all four — see the companion test).
        let mut dedup = majority.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(
            dedup.len() >= 2,
            "all bands collapsed into one cluster: {majority:?}"
        );
        assert_eq!(c.sizes.iter().sum::<u64>(), 4 * n);
    }

    #[test]
    fn k_one_merges_everything() {
        let tree = banded_tree(50);
        let c = leaf_clusters(&tree, 1, &Metric::hamming());
        assert_eq!(c.k(), 1);
        assert_eq!(c.sizes[0], 200);
    }

    #[test]
    fn k_larger_than_leaves_keeps_leaves() {
        let mut tree =
            SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
        for tid in 0..10u64 {
            tree.insert(tid, &Signature::from_items(NBITS, &[tid as u32]));
        }
        let c = leaf_clusters(&tree, 100, &Metric::hamming());
        assert!(c.k() >= 1);
        assert_eq!(c.assignments.len(), 10);
    }

    #[test]
    fn nearest_cluster_routes_new_points() {
        let n = 100u64;
        let tree = banded_tree(n);
        let c = leaf_clusters(&tree, 4, &Metric::jaccard());
        let m = Metric::hamming();
        // A fresh point deep inside band 2's item range must route to the
        // cluster holding the majority of band 2.
        let probe = Signature::from_items(NBITS, &[130, 140, 150]);
        let cl = c.nearest_cluster(&probe, &m).unwrap();
        let mut counts = vec![0u64; c.k()];
        for &(tid, cluster) in &c.assignments {
            if tid % 4 == 2 {
                counts[cluster] += 1;
            }
        }
        let band2_majority = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .unwrap()
            .0;
        assert_eq!(cl, band2_majority);
    }

    #[test]
    fn empty_tree_clusters_to_nothing() {
        let tree = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(NBITS)).unwrap();
        let c = leaf_clusters(&tree, 3, &Metric::hamming());
        assert_eq!(c.assignments.len(), 0);
        assert_eq!(c.k(), 0);
    }
}
