//! Node-split algorithms (§3.1): `q-split`, `av-link`, and `min-link`.
//!
//! Nodes are byte-budgeted (compression buys fan-out), so the split's fill
//! constraint is byte-level too: each resulting group must encode to at
//! least `min_bytes` and at most a page. The clustering policies run
//! unconstrained first — that is where the quality comes from — and a
//! final rebalance pass moves minimum-enlargement entries between the
//! groups until both satisfy the byte bounds (the paper's underflow guard,
//! generalized from counts to bytes).

use crate::config::SplitPolicy;
use crate::node::{entry_encoded_len, Entry, NODE_HEADER};
use sg_sig::Signature;

/// Byte-budget context for a split.
#[derive(Clone, Copy)]
pub(crate) struct SplitBudget {
    /// Minimum encoded node size (header included) per group.
    pub min_bytes: usize,
    /// Maximum encoded node size (the page size).
    pub max_bytes: usize,
    /// Whether entries are stored compressed.
    pub compression: bool,
}

impl SplitBudget {
    pub(crate) fn group_bytes(&self, entries: &[Entry]) -> usize {
        NODE_HEADER
            + entries
                .iter()
                .map(|e| entry_encoded_len(&e.sig, self.compression))
                .sum::<usize>()
    }
}

/// Splits the entries of an overflowed node into two groups, each within
/// the byte budget.
pub(crate) fn split_entries(
    entries: Vec<Entry>,
    policy: SplitPolicy,
    budget: SplitBudget,
) -> (Vec<Entry>, Vec<Entry>) {
    debug_assert!(entries.len() >= 2);
    let (mut a, mut b) = match policy {
        SplitPolicy::Quadratic => quadratic(entries, &budget),
        SplitPolicy::AvLink => agglomerative(entries, &budget, Linkage::Average),
        SplitPolicy::MinLink => agglomerative(entries, &budget, Linkage::Single),
    };
    rebalance(&mut a, &mut b, &budget);
    debug_assert!(budget.group_bytes(&a) <= budget.max_bytes);
    debug_assert!(budget.group_bytes(&b) <= budget.max_bytes);
    (a, b)
}

/// R-tree-style quadratic split: the entry pair with the maximum Hamming
/// distance seeds the two groups; the rest join the group needing the
/// smallest signature-area enlargement (ties: minimum area, then minimum
/// cardinality), with the paper's underflow guard: once a group needs
/// every remaining entry to reach the minimum fill, it takes them all.
///
/// The guard is quality-destroying by design — it dumps the tail into one
/// group regardless of affinity — and is part of why q-split builds worse
/// trees than the clustering policies in Table 1. It is kept faithful
/// here; the generic post-split rebalance would otherwise mask the effect.
fn quadratic(mut entries: Vec<Entry>, budget: &SplitBudget) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    // Pick seeds: the most distant pair.
    let (mut si, mut sj, mut best) = (0usize, 1usize, 0u32);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = entries[i].sig.hamming(&entries[j].sig);
            if d >= best {
                best = d;
                si = i;
                sj = j;
            }
        }
    }
    // Remove seeds (higher index first so the lower stays valid).
    let seed_b = entries.swap_remove(sj.max(si));
    let seed_a = entries.swap_remove(sj.min(si));
    let mut bytes_a = NODE_HEADER + entry_encoded_len(&seed_a.sig, budget.compression);
    let mut bytes_b = NODE_HEADER + entry_encoded_len(&seed_b.sig, budget.compression);
    let mut remaining_bytes: usize = entries
        .iter()
        .map(|e| entry_encoded_len(&e.sig, budget.compression))
        .sum();
    let mut sig_a = seed_a.sig.clone();
    let mut sig_b = seed_b.sig.clone();
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];

    for e in entries {
        let sz = entry_encoded_len(&e.sig, budget.compression);
        remaining_bytes -= sz;
        // Underflow guard: a group that needs this entry and every later
        // one to reach the minimum fill gets them all.
        if bytes_a + sz + remaining_bytes <= budget.min_bytes {
            sig_a.or_assign(&e.sig);
            bytes_a += sz;
            group_a.push(e);
            continue;
        }
        if bytes_b + sz + remaining_bytes <= budget.min_bytes {
            sig_b.or_assign(&e.sig);
            bytes_b += sz;
            group_b.push(e);
            continue;
        }
        let key_a = (sig_a.enlargement(&e.sig), sig_a.count(), group_a.len());
        let key_b = (sig_b.enlargement(&e.sig), sig_b.count(), group_b.len());
        if key_a <= key_b {
            sig_a.or_assign(&e.sig);
            bytes_a += sz;
            group_a.push(e);
        } else {
            sig_b.or_assign(&e.sig);
            bytes_b += sz;
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

#[derive(Clone, Copy, PartialEq)]
enum Linkage {
    /// `av-link`: cluster distance = mean pairwise entry distance. The
    /// paper's standard policy.
    Average,
    /// `min-link`: cluster distance = minimum pairwise entry distance
    /// (hierarchical clustering along the minimum spanning tree).
    Single,
}

/// Agglomerative split: every entry starts as its own cluster; the closest
/// cluster pair (under the linkage) merges until two clusters remain.
/// Merges that would leave the rest unable to reach the minimum fill are
/// deferred when a legal alternative exists (the paper's guard); the final
/// byte rebalance in [`split_entries`] covers the rest.
fn agglomerative(
    entries: Vec<Entry>,
    budget: &SplitBudget,
    linkage: Linkage,
) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    let sizes: Vec<usize> = entries
        .iter()
        .map(|e| entry_encoded_len(&e.sig, budget.compression))
        .collect();
    let total_bytes: usize = NODE_HEADER + sizes.iter().sum::<usize>();
    // A cluster must leave at least `min_bytes` for the other side.
    let max_cluster_bytes = total_bytes.saturating_sub(budget.min_bytes);

    // Pairwise entry distances.
    let mut dist = vec![0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = entries[i].sig.hamming(&entries[j].sig) as f64;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    // Cluster-level linkage state. For average linkage we keep the *sum*
    // of cross-pair distances (divided by the size product on comparison);
    // for single linkage the minimum, maintained by Lance–Williams updates.
    let mut link = dist.clone();
    let mut alive: Vec<bool> = vec![true; n];
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut cluster_bytes: Vec<usize> = sizes.clone();
    let mut n_alive = n;

    while n_alive > 2 {
        // Best merge: prefer pairs whose merged byte size obeys the guard.
        let mut best: Option<(usize, usize, f64, bool)> = None;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !alive[j] {
                    continue;
                }
                let legal = cluster_bytes[i] + cluster_bytes[j] <= max_cluster_bytes;
                let d = match linkage {
                    Linkage::Average => {
                        link[i * n + j] / (members[i].len() * members[j].len()) as f64
                    }
                    Linkage::Single => link[i * n + j],
                };
                let better = match best {
                    None => true,
                    Some((_, _, bd, blegal)) => {
                        (legal, std::cmp::Reverse(OrdF64(d)))
                            > (blegal, std::cmp::Reverse(OrdF64(bd)))
                    }
                };
                if better {
                    best = Some((i, j, d, legal));
                }
            }
        }
        let (i, j, _, _) = best.expect("≥3 alive clusters have a pair");
        // Merge j into i.
        let taken = std::mem::take(&mut members[j]);
        members[i].extend(taken);
        cluster_bytes[i] += cluster_bytes[j];
        alive[j] = false;
        n_alive -= 1;
        for k in 0..n {
            if k != i && alive[k] {
                let merged = match linkage {
                    Linkage::Average => link[i * n + k] + link[j * n + k],
                    Linkage::Single => link[i * n + k].min(link[j * n + k]),
                };
                link[i * n + k] = merged;
                link[k * n + i] = merged;
            }
        }
        // Guard: once a cluster is as large as allowed, the others are
        // "immediately merged and the algorithm terminates".
        if cluster_bytes[i] >= max_cluster_bytes && n_alive > 2 {
            let rest: Vec<usize> = (0..n).filter(|&k| alive[k] && k != i).collect();
            let first = rest[0];
            for &k in &rest[1..] {
                let taken = std::mem::take(&mut members[k]);
                members[first].extend(taken);
                alive[k] = false;
            }
            break;
        }
    }

    let mut groups: Vec<Vec<usize>> = (0..n)
        .filter(|&k| alive[k])
        .map(|k| std::mem::take(&mut members[k]))
        .collect();
    debug_assert_eq!(groups.len(), 2);
    let g2 = groups.pop().expect("two groups");
    let g1 = groups.pop().expect("two groups");

    let mut slots: Vec<Option<Entry>> = entries.into_iter().map(Some).collect();
    let take = |idxs: Vec<usize>, slots: &mut Vec<Option<Entry>>| -> Vec<Entry> {
        idxs.into_iter()
            .map(|i| slots[i].take().expect("entry taken twice"))
            .collect()
    };
    (take(g1, &mut slots), take(g2, &mut slots))
}

/// Moves entries between the groups until both meet the byte bounds: no
/// group above a page, no group below the minimum fill. The donor entry is
/// the one whose move enlarges the recipient's signature least.
///
/// Feasibility: the input exceeds one page but fits two (an overflowed
/// node is one page plus one entry), and `min_fill ≤ 0.5` guarantees both
/// sides can reach the minimum, so the loop terminates.
pub(crate) fn rebalance(a: &mut Vec<Entry>, b: &mut Vec<Entry>, budget: &SplitBudget) {
    // Feasible inputs (one overflowing page split in two, `min_fill ≤ 0.5`)
    // converge in at most a few moves per entry; the cap guards against
    // infeasible inputs, for which the deterministic byte-halving fallback
    // below produces the best legal approximation.
    let cap = 4 * (a.len() + b.len()).max(1);
    for _ in 0..cap {
        let bytes_a = budget.group_bytes(a);
        let bytes_b = budget.group_bytes(b);
        let a_to_b = if bytes_a > budget.max_bytes {
            true
        } else if bytes_b > budget.max_bytes {
            false
        } else if bytes_b < budget.min_bytes && bytes_a > budget.min_bytes {
            true
        } else if bytes_a < budget.min_bytes && bytes_b > budget.min_bytes {
            false
        } else {
            return;
        };
        let (donor, recv) = if a_to_b {
            (&mut *a, &mut *b)
        } else {
            (&mut *b, &mut *a)
        };
        if donor.len() <= 1 {
            return; // cannot move the last entry; budget was infeasible
        }
        let recv_sig = union_of(recv);
        let mut best = 0usize;
        let mut best_enl = u32::MAX;
        for (i, e) in donor.iter().enumerate() {
            let enl = recv_sig.enlargement(&e.sig);
            if enl < best_enl {
                best_enl = enl;
                best = i;
            }
        }
        let moved = donor.swap_remove(best);
        recv.push(moved);
    }
    // Oscillation: fall back to an even byte split preserving order.
    let mut pool: Vec<Entry> = std::mem::take(a);
    pool.append(b);
    let total: usize = pool
        .iter()
        .map(|e| entry_encoded_len(&e.sig, budget.compression))
        .sum();
    let mut bytes = 0usize;
    for e in pool {
        let sz = entry_encoded_len(&e.sig, budget.compression);
        if bytes + sz <= total / 2 || a.is_empty() {
            bytes += sz;
            a.push(e);
        } else {
            b.push(e);
        }
    }
    debug_assert!(!a.is_empty() && !b.is_empty());
}

fn union_of(entries: &[Entry]) -> Signature {
    debug_assert!(!entries.is_empty());
    let mut sig = entries[0].sig.clone();
    for e in &entries[1..] {
        sig.or_assign(&e.sig);
    }
    sig
}

/// Total order on finite f64 distances.
#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("distances are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(items: &[u32], ptr: u64) -> Entry {
        Entry::new(Signature::from_items(64, items), ptr)
    }

    /// Budget loose enough that clustering quality decides the outcome.
    fn loose() -> SplitBudget {
        SplitBudget {
            min_bytes: NODE_HEADER + 2 * 12,
            max_bytes: 4096,
            compression: true,
        }
    }

    fn two_obvious_clusters() -> Vec<Entry> {
        vec![
            entry(&[1, 2, 3], 0),
            entry(&[1, 2, 4], 1),
            entry(&[2, 3, 4], 2),
            entry(&[50, 51, 52], 3),
            entry(&[50, 51, 53], 4),
            entry(&[51, 52, 53], 5),
        ]
    }

    fn assert_separates_clusters(a: &[Entry], b: &[Entry]) {
        let low = |e: &Entry| e.sig.items().iter().all(|&i| i < 10);
        assert_eq!(a.len() + b.len(), 6);
        assert!(
            a.iter().all(low) && b.iter().all(|e| !low(e))
                || a.iter().all(|e| !low(e)) && b.iter().all(low),
            "clusters mixed: {:?} | {:?}",
            a.iter().map(|e| e.ptr).collect::<Vec<_>>(),
            b.iter().map(|e| e.ptr).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_policies_separate_obvious_clusters() {
        for policy in [
            SplitPolicy::Quadratic,
            SplitPolicy::AvLink,
            SplitPolicy::MinLink,
        ] {
            let (a, b) = split_entries(two_obvious_clusters(), policy, loose());
            assert_separates_clusters(&a, &b);
        }
    }

    #[test]
    fn split_respects_min_bytes() {
        // Nine near-identical entries plus one outlier: naive clustering
        // would isolate the outlier, violating the byte minimum (each
        // entry encodes to 8 + 1 + 4 = 13 bytes).
        let mut es: Vec<Entry> = (0..9)
            .map(|i| entry(&[1, 2, 3, i + 10], i as u64))
            .collect();
        es.push(entry(&[60, 61, 62], 9));
        let budget = SplitBudget {
            min_bytes: NODE_HEADER + 3 * 13,
            max_bytes: 4096,
            compression: true,
        };
        for policy in [
            SplitPolicy::Quadratic,
            SplitPolicy::AvLink,
            SplitPolicy::MinLink,
        ] {
            let (a, b) = split_entries(es.clone(), policy, budget);
            assert!(
                budget.group_bytes(&a) >= budget.min_bytes
                    && budget.group_bytes(&b) >= budget.min_bytes,
                "{policy:?}: {} vs {} bytes",
                budget.group_bytes(&a),
                budget.group_bytes(&b)
            );
            assert_eq!(a.len() + b.len(), 10);
        }
    }

    #[test]
    fn split_respects_max_bytes() {
        // Entries sized so both groups must stay under a small page.
        let es: Vec<Entry> = (0..8)
            .map(|i| entry(&[i, i + 20, i + 40], i as u64))
            .collect();
        let one = entry_encoded_len(&es[0].sig, true);
        let budget = SplitBudget {
            min_bytes: NODE_HEADER + one,
            max_bytes: NODE_HEADER + 5 * one,
            compression: true,
        };
        for policy in [
            SplitPolicy::Quadratic,
            SplitPolicy::AvLink,
            SplitPolicy::MinLink,
        ] {
            let (a, b) = split_entries(es.clone(), policy, budget);
            assert!(budget.group_bytes(&a) <= budget.max_bytes, "{policy:?}");
            assert!(budget.group_bytes(&b) <= budget.max_bytes, "{policy:?}");
        }
    }

    #[test]
    fn split_preserves_every_entry() {
        let es = two_obvious_clusters();
        for policy in [
            SplitPolicy::Quadratic,
            SplitPolicy::AvLink,
            SplitPolicy::MinLink,
        ] {
            let (a, b) = split_entries(es.clone(), policy, loose());
            let mut ptrs: Vec<u64> = a.iter().chain(b.iter()).map(|e| e.ptr).collect();
            ptrs.sort_unstable();
            assert_eq!(ptrs, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn identical_entries_split_evenly_enough() {
        let es: Vec<Entry> = (0..8).map(|i| entry(&[1, 2, 3], i)).collect();
        let one = entry_encoded_len(&es[0].sig, true);
        let budget = SplitBudget {
            min_bytes: NODE_HEADER + 3 * one,
            max_bytes: 4096,
            compression: true,
        };
        for policy in [
            SplitPolicy::Quadratic,
            SplitPolicy::AvLink,
            SplitPolicy::MinLink,
        ] {
            let (a, b) = split_entries(es.clone(), policy, budget);
            assert!(a.len() >= 3 && b.len() >= 3, "{policy:?}");
        }
    }

    #[test]
    fn minimum_size_split_two_entries() {
        let es = vec![entry(&[1], 0), entry(&[2], 1)];
        for policy in [
            SplitPolicy::Quadratic,
            SplitPolicy::AvLink,
            SplitPolicy::MinLink,
        ] {
            let (a, b) = split_entries(
                es.clone(),
                policy,
                SplitBudget {
                    min_bytes: 0,
                    max_bytes: 4096,
                    compression: true,
                },
            );
            assert_eq!(a.len(), 1);
            assert_eq!(b.len(), 1);
        }
    }

    #[test]
    fn clustering_splits_have_lower_area_than_quadratic_on_structured_data() {
        // Table 1's headline: av-link/min-link build tighter groups. Use
        // four latent clusters so quadratic's two seeds cannot capture the
        // structure.
        let mut es = Vec::new();
        for c in 0..4u32 {
            for k in 0..5u32 {
                es.push(entry(
                    &[c * 16, c * 16 + 1 + k % 3, c * 16 + 4 + k % 2],
                    (c * 5 + k) as u64,
                ));
            }
        }
        let area = |g: &[Entry]| union_of(g).count();
        let (qa, qb) = split_entries(es.clone(), SplitPolicy::Quadratic, loose());
        let (ma, mb) = split_entries(es.clone(), SplitPolicy::AvLink, loose());
        let q_area = area(&qa) + area(&qb);
        let m_area = area(&ma) + area(&mb);
        assert!(
            m_area <= q_area,
            "av-link should not be worse on clustered data: {m_area} vs {q_area}"
        );
    }
}
