//! Structural statistics of a tree — the quality metrics of the paper's
//! Table 1 (per-level average entry area) plus the space/occupancy numbers
//! a production operator wants from an index.

use crate::tree::SgTree;

/// Statistics for one level of the tree. Level 0 is the leaf level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelStats {
    /// Nodes at this level.
    pub nodes: u64,
    /// Entries across this level's nodes.
    pub entries: u64,
    /// Mean entry *area* (set bits) — Table 1's clustering-quality metric:
    /// smaller directory areas mean tighter grouping and better pruning.
    pub avg_entry_area: f64,
    /// Mean encoded node size in bytes (≤ page size by construction).
    pub avg_node_bytes: f64,
    /// Mean byte occupancy of the nodes relative to the page size.
    pub avg_fill: f64,
}

/// Whole-tree structural statistics; see [`SgTree::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Per-level breakdown, index 0 = leaves.
    pub levels: Vec<LevelStats>,
    /// Total node pages.
    pub nodes: u64,
    /// Indexed transactions.
    pub len: u64,
    /// Total encoded bytes across nodes (the tree's logical size).
    pub used_bytes: u64,
    /// Total page bytes claimed (`nodes ×` page size).
    pub allocated_bytes: u64,
}

impl TreeStats {
    /// Overall byte occupancy: `used / allocated`.
    pub fn utilization(&self) -> f64 {
        if self.allocated_bytes == 0 {
            0.0
        } else {
            self.used_bytes as f64 / self.allocated_bytes as f64
        }
    }

    /// Mean leaf fan-out (transactions per leaf page) — with compression
    /// this typically far exceeds the worst-case capacity.
    pub fn leaf_fanout(&self) -> f64 {
        match self.levels.first() {
            Some(l) if l.nodes > 0 => l.entries as f64 / l.nodes as f64,
            _ => 0.0,
        }
    }
}

impl SgTree {
    /// Collects structural statistics in one tree walk (O(size of tree)).
    pub fn stats(&self) -> TreeStats {
        let page_size = self.pool().page_size() as f64;
        let compression = self.config().compression;
        let mut levels = vec![LevelStats::default(); self.height() as usize];
        let mut area_sums = vec![0f64; self.height() as usize];
        let mut used_bytes = 0u64;
        let mut nodes = 0u64;
        self.walk(|_, node, _| {
            nodes += 1;
            let l = node.level as usize;
            let bytes = node.encoded_size(compression) as u64;
            used_bytes += bytes;
            let stats = &mut levels[l];
            stats.nodes += 1;
            stats.entries += node.entries.len() as u64;
            stats.avg_node_bytes += bytes as f64;
            for e in &node.entries {
                area_sums[l] += e.sig.count() as f64;
            }
        });
        for (l, stats) in levels.iter_mut().enumerate() {
            if stats.nodes > 0 {
                stats.avg_node_bytes /= stats.nodes as f64;
                stats.avg_fill = stats.avg_node_bytes / page_size;
            }
            if stats.entries > 0 {
                stats.avg_entry_area = area_sums[l] / stats.entries as f64;
            }
        }
        TreeStats {
            levels,
            nodes,
            len: self.len(),
            used_bytes,
            allocated_bytes: nodes * self.pool().page_size() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeConfig;
    use sg_pager::MemStore;
    use sg_sig::Signature;
    use std::sync::Arc;

    fn build(n: u64) -> SgTree {
        let mut tree = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(128)).unwrap();
        for tid in 0..n {
            let items = [
                (tid % 128) as u32,
                ((tid * 7 + 1) % 128) as u32,
                ((tid * 13 + 5) % 128) as u32,
            ];
            tree.insert(tid, &Signature::from_items(128, &items));
        }
        tree
    }

    #[test]
    fn stats_consistent_with_tree_shape() {
        let tree = build(500);
        let s = tree.stats();
        assert_eq!(s.len, 500);
        assert_eq!(s.levels.len(), tree.height() as usize);
        assert_eq!(s.levels[0].entries, 500);
        assert_eq!(s.nodes, tree.node_count());
        assert_eq!(
            s.levels.iter().map(|l| l.nodes).sum::<u64>(),
            tree.node_count()
        );
        // Parent levels hold exactly one entry per child node.
        for l in 1..s.levels.len() {
            assert_eq!(s.levels[l].entries, s.levels[l - 1].nodes);
        }
    }

    #[test]
    fn utilization_between_min_fill_and_one() {
        let tree = build(800);
        let s = tree.stats();
        assert!(s.utilization() > 0.2, "utilization {}", s.utilization());
        assert!(s.utilization() <= 1.0);
        for (l, level) in s.levels.iter().enumerate() {
            assert!(level.avg_fill <= 1.0, "level {l} fill {}", level.avg_fill);
        }
    }

    #[test]
    fn leaf_areas_smaller_than_directory_areas() {
        let tree = build(800);
        let s = tree.stats();
        if s.levels.len() > 1 {
            assert!(
                s.levels[0].avg_entry_area < s.levels[1].avg_entry_area,
                "leaf entries (transactions) must have smaller area than their ORs"
            );
        }
        // Leaf entries have exactly 3 set bits by construction (some have
        // fewer if items collide).
        assert!(s.levels[0].avg_entry_area <= 3.0);
    }

    #[test]
    fn leaf_fanout_exceeds_worst_case_capacity_with_compression() {
        let tree = build(2000);
        let s = tree.stats();
        assert!(
            s.leaf_fanout() > tree.capacity() as f64,
            "compressed sparse leaves should out-pack the worst case: {} vs {}",
            s.leaf_fanout(),
            tree.capacity()
        );
    }

    #[test]
    fn matches_level_areas() {
        let tree = build(400);
        let s = tree.stats();
        let areas = tree.level_areas();
        for (l, a) in areas.iter().enumerate() {
            assert!((s.levels[l].avg_entry_area - a).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_tree_stats() {
        let tree = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(64)).unwrap();
        let s = tree.stats();
        assert_eq!(s.len, 0);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.levels[0].entries, 0);
        assert_eq!(s.leaf_fanout(), 0.0);
    }
}
