//! The unified query API shared by every backend in the workspace.
//!
//! Historically each index exposed a sprawl of per-query-type methods
//! (`knn` / `knn_explain`, `range` / `range_explain`, …) and the executor
//! and serve layers each defined parallel request enums. This module
//! collapses that surface into one shape:
//!
//! * [`QueryRequest`] — *what* to compute (k-NN, range, containment, …).
//! * [`QueryOptions`] — *how* to run it: EXPLAIN tracing, cooperative
//!   cancellation, a deadline.
//! * [`QueryResponse`] — the answer, its cost breakdown, and (when asked
//!   for) its trace.
//! * [`SetIndex`] — the object-safe trait every backend implements, so
//!   differential tests and benches iterate `dyn SetIndex` instead of
//!   copy-pasting per-backend arms.
//!
//! The legacy per-type methods survive as thin `#[deprecated]` shims that
//! forward here, so downstream call sites migrate mechanically.

use crate::query::{Neighbor, SharedBound};
use crate::scan::ScanIndex;
use crate::stats::QueryStats;
use crate::tree::SgTree;
use crate::Tid;
use sg_obs::{QueryTrace, SpanCtx};
use sg_pager::{SgError, SgResult};
use sg_sig::{Metric, Signature};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cancellation flag for one in-flight query (or batch entry).
///
/// A serving layer hands one of these down with [`QueryOptions::cancel`]
/// and flips it when the caller stops waiting (deadline passed, connection
/// gone). Work that has not started yet observes the flag and returns
/// [`SgError::Cancelled`] — abandoned queries cost close to nothing.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation. Idempotent; already-running work finishes,
    /// but pending stages are skipped.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// One query, independent of which backend answers it.
#[derive(Debug, Clone)]
pub enum QueryRequest {
    /// The `k` nearest neighbors of `q` under `metric`, distance-ranked
    /// (ties by tid — the canonical order every exact backend agrees on).
    Knn {
        /// Query signature.
        q: Signature,
        /// Result size.
        k: usize,
        /// Distance function.
        metric: Metric,
    },
    /// Every transaction within distance `eps` of `q` under `metric`.
    Range {
        /// Query signature.
        q: Signature,
        /// Inclusive distance threshold.
        eps: f64,
        /// Distance function.
        metric: Metric,
    },
    /// Supersets of `q` (§3's itemset-containment query).
    Containing {
        /// Query signature.
        q: Signature,
    },
    /// Subsets of `q`.
    ContainedIn {
        /// Query signature.
        q: Signature,
    },
    /// Exact matches of `q`.
    Exact {
        /// Query signature.
        q: Signature,
    },
}

impl QueryRequest {
    /// The query signature, whatever the request kind.
    pub fn signature(&self) -> &Signature {
        match self {
            QueryRequest::Knn { q, .. }
            | QueryRequest::Range { q, .. }
            | QueryRequest::Containing { q }
            | QueryRequest::ContainedIn { q }
            | QueryRequest::Exact { q } => q,
        }
    }

    /// The request's kind as a `'static` name — the cost-model key, so
    /// recording a query allocates nothing.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryRequest::Knn { .. } => "knn",
            QueryRequest::Range { .. } => "range",
            QueryRequest::Containing { .. } => "containing",
            QueryRequest::ContainedIn { .. } => "contained_in",
            QueryRequest::Exact { .. } => "exact",
        }
    }

    /// A human-readable label for traces and logs, e.g. `"knn k=10
    /// metric=Hamming"`.
    pub fn label(&self) -> String {
        match self {
            QueryRequest::Knn { k, metric, .. } => {
                format!("knn k={k} metric={:?}", metric.kind())
            }
            QueryRequest::Range { eps, metric, .. } => {
                format!("range eps={eps} metric={:?}", metric.kind())
            }
            QueryRequest::Containing { .. } => "containing".into(),
            QueryRequest::ContainedIn { .. } => "contained-in".into(),
            QueryRequest::Exact { .. } => "exact".into(),
        }
    }
}

/// Cross-cutting execution options, identical for every backend.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Collect a per-level EXPLAIN [`QueryTrace`] into
    /// [`QueryResponse::trace`].
    pub trace: bool,
    /// Cooperative cancellation; checked before (and, in fan-out layers,
    /// between) units of work.
    pub cancel: Option<CancelFlag>,
    /// Absolute deadline; work observed past it returns
    /// [`SgError::Cancelled`].
    pub deadline: Option<Instant>,
    /// Causal parent for any spans this query records into the flight
    /// recorder (cross-thread hand-off from the serving layer).
    pub span: Option<SpanCtx>,
}

impl QueryOptions {
    /// Options that collect an EXPLAIN trace.
    pub fn traced() -> QueryOptions {
        QueryOptions {
            trace: true,
            ..QueryOptions::default()
        }
    }

    /// Whether the query should stop: cancelled or past its deadline.
    pub fn expired(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

/// A query's answer, in whichever shape the request kind produces.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Distance-ranked answer (k-NN, range).
    Neighbors(Vec<Neighbor>),
    /// Id-set answer (containment, subset, exact match).
    Tids(Vec<Tid>),
}

impl QueryOutput {
    /// The neighbor list, or `None` for an id-set answer.
    pub fn neighbors(&self) -> Option<&[Neighbor]> {
        match self {
            QueryOutput::Neighbors(v) => Some(v),
            QueryOutput::Tids(_) => None,
        }
    }

    /// The id set, or `None` for a distance-ranked answer.
    pub fn tids(&self) -> Option<&[Tid]> {
        match self {
            QueryOutput::Tids(v) => Some(v),
            QueryOutput::Neighbors(_) => None,
        }
    }

    /// Number of results in the answer.
    pub fn len(&self) -> usize {
        match self {
            QueryOutput::Neighbors(v) => v.len(),
            QueryOutput::Tids(v) => v.len(),
        }
    }

    /// Whether the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The unified answer shape: output, costs, and (optionally) a trace.
///
/// Single-backend queries leave `per_shard` empty and `merge_ns` zero;
/// fan-out layers (the sharded executor) fill them in, so one type serves
/// both without a lossy conversion.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The answer, canonically ordered.
    pub output: QueryOutput,
    /// Aggregate cost of producing it.
    pub stats: QueryStats,
    /// Per-shard cost breakdown (empty for single-backend queries).
    pub per_shard: Vec<QueryStats>,
    /// Time merging per-shard answers, ns (zero for single-backend).
    pub merge_ns: u64,
    /// The EXPLAIN trace, present iff [`QueryOptions::trace`] was set.
    pub trace: Option<QueryTrace>,
}

impl QueryResponse {
    /// Wraps a single-backend `(output, stats)` pair.
    pub fn single(output: QueryOutput, stats: QueryStats) -> QueryResponse {
        QueryResponse {
            output,
            stats,
            per_shard: Vec::new(),
            merge_ns: 0,
            trace: None,
        }
    }
}

/// The backend-agnostic index interface: mutate with `insert` / `delete`,
/// read with [`SetIndex::query`]. Object-safe, so harnesses iterate
/// `Vec<Box<dyn SetIndex>>`.
///
/// Backends that cannot support an operation (build-only baselines, query
/// kinds outside their contract) return [`SgError::Unsupported`]; harnesses
/// treat that as "skip", not "fail".
pub trait SetIndex: Send + Sync {
    /// A short backend name for reports (`"sg-tree"`, `"inverted"`, …).
    fn name(&self) -> &'static str;

    /// Number of indexed transactions.
    fn len(&self) -> u64;

    /// Whether the index holds no transactions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Signature width the index was built for.
    fn nbits(&self) -> u32;

    /// Adds `(tid, sig)` to the index.
    fn insert(&mut self, tid: Tid, sig: &Signature) -> SgResult<()>;

    /// Removes `(tid, sig)`; `Ok(false)` when no such entry exists.
    fn delete(&mut self, tid: Tid, sig: &Signature) -> SgResult<bool>;

    /// Answers `req` under `opts`.
    fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse>;
}

fn check_nbits(expected: u32, q: &Signature) -> SgResult<()> {
    if q.nbits() != expected {
        return Err(SgError::invalid(format!(
            "query signature has {} bits; index expects {}",
            q.nbits(),
            expected
        )));
    }
    Ok(())
}

impl SgTree {
    /// Answers `req` under `opts` — the unified entry point subsuming the
    /// per-type method pairs (`knn`/`knn_explain`, …).
    pub fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse> {
        self.query_dispatch(req, opts, None)
    }

    /// [`SgTree::query`] cooperating with concurrent searches over sibling
    /// shards through `bound` (k-NN only; other kinds ignore it). This is
    /// what the sharded executor fans out.
    pub fn query_shared(
        &self,
        req: &QueryRequest,
        opts: &QueryOptions,
        bound: &SharedBound,
    ) -> SgResult<QueryResponse> {
        self.query_dispatch(req, opts, Some(bound))
    }

    fn query_dispatch(
        &self,
        req: &QueryRequest,
        opts: &QueryOptions,
        bound: Option<&SharedBound>,
    ) -> SgResult<QueryResponse> {
        check_nbits(self.nbits(), req.signature())?;
        if opts.expired() {
            return Err(SgError::Cancelled);
        }
        let start = Instant::now();
        let run = |resp: (QueryOutput, QueryStats)| QueryResponse::single(resp.0, resp.1);
        let resp = if opts.trace {
            let (output, stats, trace) = match req {
                QueryRequest::Knn { q, k, metric } => {
                    let (r, s, t) = match bound {
                        Some(b) => self.knn_shared_traced(q, *k, metric, b),
                        None => self.knn_traced(q, *k, metric),
                    };
                    (QueryOutput::Neighbors(r), s, t)
                }
                QueryRequest::Range { q, eps, metric } => {
                    let (r, s, t) = self.range_traced(q, *eps, metric);
                    (QueryOutput::Neighbors(r), s, t)
                }
                QueryRequest::Containing { q } => {
                    let (r, s, t) = self.containing_traced(q);
                    (QueryOutput::Tids(r), s, t)
                }
                QueryRequest::ContainedIn { q } => {
                    let (r, s, t) = self.contained_in_traced(q);
                    (QueryOutput::Tids(r), s, t)
                }
                QueryRequest::Exact { q } => {
                    let (r, s, t) = self.exact_traced(q);
                    (QueryOutput::Tids(r), s, t)
                }
            };
            let mut resp = QueryResponse::single(output, stats);
            resp.trace = Some(trace);
            resp
        } else {
            match req {
                QueryRequest::Knn { q, k, metric } => match bound {
                    Some(b) => {
                        let (r, s) = self.knn_shared(q, *k, metric, b);
                        run((QueryOutput::Neighbors(r), s))
                    }
                    None => {
                        let (r, s) = self.knn(q, *k, metric);
                        run((QueryOutput::Neighbors(r), s))
                    }
                },
                QueryRequest::Range { q, eps, metric } => {
                    let (r, s) = self.range(q, *eps, metric);
                    run((QueryOutput::Neighbors(r), s))
                }
                QueryRequest::Containing { q } => {
                    let (r, s) = self.containing(q);
                    run((QueryOutput::Tids(r), s))
                }
                QueryRequest::ContainedIn { q } => {
                    let (r, s) = self.contained_in(q);
                    run((QueryOutput::Tids(r), s))
                }
                QueryRequest::Exact { q } => {
                    let (r, s) = self.exact(q);
                    run((QueryOutput::Tids(r), s))
                }
            }
        };
        sg_obs::CostModel::global().record(
            "sg-tree",
            req.kind(),
            start.elapsed().as_nanos() as u64,
            &resp.stats.resources,
        );
        Ok(resp)
    }
}

impl SetIndex for SgTree {
    fn name(&self) -> &'static str {
        "sg-tree"
    }

    fn len(&self) -> u64 {
        SgTree::len(self)
    }

    fn nbits(&self) -> u32 {
        SgTree::nbits(self)
    }

    fn insert(&mut self, tid: Tid, sig: &Signature) -> SgResult<()> {
        check_nbits(SgTree::nbits(self), sig)?;
        SgTree::insert(self, tid, sig);
        Ok(())
    }

    fn delete(&mut self, tid: Tid, sig: &Signature) -> SgResult<bool> {
        check_nbits(SgTree::nbits(self), sig)?;
        Ok(SgTree::delete(self, tid, sig))
    }

    fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse> {
        SgTree::query(self, req, opts)
    }
}

impl ScanIndex {
    /// Answers `req` under `opts` via the unified API. The scan baseline
    /// supports every query kind (it reads everything anyway); tracing is
    /// not broken down per level, so `opts.trace` yields no trace.
    pub fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse> {
        check_nbits(ScanIndex::nbits(self), req.signature())?;
        if opts.expired() {
            return Err(SgError::Cancelled);
        }
        let (output, stats) = match req {
            QueryRequest::Knn { q, k, metric } => {
                let (r, s) = self.knn(q, *k, metric);
                (QueryOutput::Neighbors(r), s)
            }
            QueryRequest::Range { q, eps, metric } => {
                let (r, s) = self.range(q, *eps, metric);
                (QueryOutput::Neighbors(r), s)
            }
            QueryRequest::Containing { q } => {
                let (r, s) = self.containing(q);
                (QueryOutput::Tids(r), s)
            }
            QueryRequest::ContainedIn { q } => {
                let (r, s) = self.contained_in(q);
                (QueryOutput::Tids(r), s)
            }
            QueryRequest::Exact { q } => {
                let (r, s) = self.exact(q);
                (QueryOutput::Tids(r), s)
            }
        };
        Ok(QueryResponse::single(output, stats))
    }
}

impl SetIndex for ScanIndex {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn len(&self) -> u64 {
        ScanIndex::len(self)
    }

    fn nbits(&self) -> u32 {
        ScanIndex::nbits(self)
    }

    fn insert(&mut self, _tid: Tid, _sig: &Signature) -> SgResult<()> {
        Err(SgError::Unsupported(
            "insert on the build-only scan baseline",
        ))
    }

    fn delete(&mut self, _tid: Tid, _sig: &Signature) -> SgResult<bool> {
        Err(SgError::Unsupported(
            "delete on the build-only scan baseline",
        ))
    }

    fn query(&self, req: &QueryRequest, opts: &QueryOptions) -> SgResult<QueryResponse> {
        ScanIndex::query(self, req, opts)
    }
}

// The unified types cross thread boundaries in the executor and serve
// layers; fail the build if that ever stops being true.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryRequest>();
    assert_send_sync::<QueryOptions>();
    assert_send_sync::<QueryResponse>();
    assert_send_sync::<CancelFlag>();
};
