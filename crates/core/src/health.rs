//! Tree health introspection.
//!
//! The paper's performance story hangs on signature quality: a
//! directory entry prunes only when the query's bits are *not* all
//! covered by the entry's OR-signature, so as signatures saturate the
//! tree degenerates toward a sequential scan. [`SgTree::health_report`]
//! walks the tree once and reports, per level, the node fill factor,
//! the signature bit-saturation (mean and worst-case set-bit fraction),
//! and the estimated false-drop probability under the classic
//! signature-file model: a uniformly random `t`-item query "falls
//! through" an entry of weight `w` over `N` bits with probability
//! `(w/N)^t`. Threshold-based [`Finding`]s turn the numbers into
//! operator guidance ("level 2 saturation 0.92 → signatures
//! near-useless, recommend re-split/rebuild").

use crate::tree::SgTree;
use sg_obs::json::Json;

/// How urgent a [`Finding`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no action needed.
    Info,
    /// Degraded quality; worth scheduling maintenance.
    Warning,
    /// The index is no longer doing its job.
    Critical,
}

impl Severity {
    /// Lowercase label used in JSON and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One threshold-based observation about the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Urgency.
    pub severity: Severity,
    /// Stable machine-readable code (`saturation`, `false_drop`,
    /// `underfilled`, `empty`).
    pub code: &'static str,
    /// Tree level the finding refers to, if level-specific.
    pub level: Option<u32>,
    /// Human-readable explanation with the offending numbers inline.
    pub message: String,
}

impl Finding {
    /// JSON object for this finding.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            (
                "severity".into(),
                Json::Str(self.severity.as_str().to_string()),
            ),
            ("code".into(), Json::Str(self.code.to_string())),
            (
                "level".into(),
                self.level.map_or(Json::Null, |l| Json::U64(l as u64)),
            ),
            ("message".into(), Json::Str(self.message.clone())),
        ])
    }
}

/// Health metrics for one tree level (level 0 = leaves).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelHealth {
    /// Tree level (0 = leaves).
    pub level: u32,
    /// Nodes at this level.
    pub nodes: u64,
    /// Entries across this level's nodes.
    pub entries: u64,
    /// Mean entries per node.
    pub avg_fanout: f64,
    /// Mean byte occupancy relative to the page size (0..=1).
    pub avg_fill: f64,
    /// Mean set-bit fraction over this level's entry signatures.
    pub avg_saturation: f64,
    /// Largest single-entry set-bit fraction at this level.
    pub max_saturation: f64,
    /// Estimated probability that a uniformly random `query_items`-item
    /// query false-drops through an entry at this level: the mean of
    /// `(w_i / nbits) ^ query_items` over the level's entries.
    pub est_false_drop: f64,
}

impl LevelHealth {
    fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("level".into(), Json::U64(self.level as u64)),
            ("nodes".into(), Json::U64(self.nodes)),
            ("entries".into(), Json::U64(self.entries)),
            ("avg_fanout".into(), Json::F64(self.avg_fanout)),
            ("avg_fill".into(), Json::F64(self.avg_fill)),
            ("avg_saturation".into(), Json::F64(self.avg_saturation)),
            ("max_saturation".into(), Json::F64(self.max_saturation)),
            ("est_false_drop".into(), Json::F64(self.est_false_drop)),
        ])
    }
}

/// Whole-tree health: per-level metrics plus threshold findings.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Indexed transactions.
    pub len: u64,
    /// Total node pages.
    pub nodes: u64,
    /// Tree height (levels; 1 = root-only).
    pub height: u16,
    /// Signature length (item-universe size).
    pub nbits: u32,
    /// The `t` used for the false-drop estimate (defaults to the mean
    /// leaf entry area — "how many items does a typical query have").
    pub query_items: u32,
    /// Overall byte occupancy (`used / allocated`).
    pub utilization: f64,
    /// Per-level breakdown, index 0 = leaves.
    pub levels: Vec<LevelHealth>,
    /// Threshold-based findings, most severe first.
    pub findings: Vec<Finding>,
}

impl HealthReport {
    /// The most severe finding's severity, or `None` when all clear.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// `"ok"`, `"info"`, `"warning"`, or `"critical"` — the summary
    /// string surfaced on `/healthz`.
    pub fn status(&self) -> &'static str {
        match self.worst() {
            None => "ok",
            Some(s) => s.as_str(),
        }
    }

    /// JSON document for this report (what `/debug/tree` serves).
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("status".into(), Json::Str(self.status().to_string())),
            ("len".into(), Json::U64(self.len)),
            ("nodes".into(), Json::U64(self.nodes)),
            ("height".into(), Json::U64(self.height as u64)),
            ("nbits".into(), Json::U64(self.nbits as u64)),
            ("query_items".into(), Json::U64(self.query_items as u64)),
            ("utilization".into(), Json::F64(self.utilization)),
            (
                "levels".into(),
                Json::Arr(self.levels.iter().map(|l| l.to_json_value()).collect()),
            ),
            (
                "findings".into(),
                Json::Arr(self.findings.iter().map(|f| f.to_json_value()).collect()),
            ),
        ])
    }

    /// Folds several per-shard reports into one summary: counts sum,
    /// per-level means are entry-weighted, and findings are re-derived
    /// from the merged levels.
    pub fn merged<'a>(reports: impl IntoIterator<Item = &'a HealthReport>) -> HealthReport {
        let mut out = HealthReport {
            len: 0,
            nodes: 0,
            height: 0,
            nbits: 0,
            query_items: 1,
            utilization: 0.0,
            levels: Vec::new(),
            findings: Vec::new(),
        };
        let mut allocated_weight = 0u64; // nodes, for utilization weighting
        for r in reports {
            out.len += r.len;
            out.nodes += r.nodes;
            out.height = out.height.max(r.height);
            out.nbits = out.nbits.max(r.nbits);
            out.query_items = out.query_items.max(r.query_items);
            out.utilization += r.utilization * r.nodes as f64;
            allocated_weight += r.nodes;
            if out.levels.len() < r.levels.len() {
                out.levels.resize_with(r.levels.len(), LevelHealth::default);
            }
            for (l, lv) in r.levels.iter().enumerate() {
                let m = &mut out.levels[l];
                m.level = l as u32;
                m.nodes += lv.nodes;
                m.entries += lv.entries;
                let w = lv.entries as f64;
                m.avg_saturation += lv.avg_saturation * w;
                m.est_false_drop += lv.est_false_drop * w;
                m.max_saturation = m.max_saturation.max(lv.max_saturation);
                let nw = lv.nodes as f64;
                m.avg_fill += lv.avg_fill * nw;
                m.avg_fanout += lv.avg_fanout * nw;
            }
        }
        if allocated_weight > 0 {
            out.utilization /= allocated_weight as f64;
        }
        for m in &mut out.levels {
            if m.entries > 0 {
                m.avg_saturation /= m.entries as f64;
                m.est_false_drop /= m.entries as f64;
            }
            if m.nodes > 0 {
                m.avg_fill /= m.nodes as f64;
                m.avg_fanout /= m.nodes as f64;
            }
        }
        out.findings = findings_for(&out.levels, out.len, out.nodes);
        out
    }
}

/// Derives threshold findings from per-level metrics (shared between
/// single-tree reports and merged shard summaries), most severe first.
fn findings_for(levels: &[LevelHealth], len: u64, nodes: u64) -> Vec<Finding> {
    let mut findings = Vec::new();
    if len == 0 {
        findings.push(Finding {
            severity: Severity::Info,
            code: "empty",
            level: None,
            message: "tree is empty; health metrics are trivial".to_string(),
        });
        return findings;
    }
    for l in levels {
        // Directory signatures are OR-aggregates: saturation is what
        // decides whether they can prune at all.
        if l.level > 0 {
            if l.avg_saturation >= 0.90 {
                findings.push(Finding {
                    severity: Severity::Critical,
                    code: "saturation",
                    level: Some(l.level),
                    message: format!(
                        "level {} saturation {:.2} → signatures near-useless, \
                         recommend re-split/rebuild",
                        l.level, l.avg_saturation
                    ),
                });
            } else if l.avg_saturation >= 0.75 {
                findings.push(Finding {
                    severity: Severity::Warning,
                    code: "saturation",
                    level: Some(l.level),
                    message: format!(
                        "level {} saturation {:.2} → pruning power degrading; \
                         consider re-clustering or a larger signature",
                        l.level, l.avg_saturation
                    ),
                });
            }
            if l.est_false_drop >= 0.5 && l.avg_saturation < 0.90 {
                findings.push(Finding {
                    severity: Severity::Warning,
                    code: "false_drop",
                    level: Some(l.level),
                    message: format!(
                        "level {} estimated false-drop {:.2} → most visits at \
                         this level are wasted for typical queries",
                        l.level, l.est_false_drop
                    ),
                });
            }
        } else if l.avg_saturation >= 0.5 {
            findings.push(Finding {
                severity: Severity::Info,
                code: "saturation",
                level: Some(0),
                message: format!(
                    "leaf saturation {:.2} — dense transactions; signature \
                     length may be too small for this workload",
                    l.avg_saturation
                ),
            });
        }
        if nodes > 1 && l.nodes > 1 && l.avg_fill < 0.30 {
            findings.push(Finding {
                severity: Severity::Warning,
                code: "underfilled",
                level: Some(l.level),
                message: format!(
                    "level {} pages only {:.0}% full on average; a bulk \
                     reload would shrink the tree",
                    l.level,
                    l.avg_fill * 100.0
                ),
            });
        }
    }
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    findings
}

impl SgTree {
    /// One-walk health report with `t` defaulting to the mean leaf
    /// entry area (≈ items per indexed transaction), clamped to ≥ 1.
    pub fn health_report(&self) -> HealthReport {
        let t = self
            .level_areas()
            .first()
            .copied()
            .unwrap_or(0.0)
            .round()
            .max(1.0) as u32;
        self.health_report_for(t)
    }

    /// One-walk health report using `query_items` as the `t` in the
    /// `(w/N)^t` false-drop estimate.
    pub fn health_report_for(&self, query_items: u32) -> HealthReport {
        let t = query_items.max(1);
        let nbits = self.nbits() as f64;
        let page_size = self.pool().page_size() as f64;
        let compression = self.config().compression;
        let height = self.height() as usize;
        let mut levels: Vec<LevelHealth> = (0..height)
            .map(|l| LevelHealth {
                level: l as u32,
                ..LevelHealth::default()
            })
            .collect();
        let mut used_bytes = 0u64;
        let mut nodes = 0u64;
        self.walk(|_, node, _| {
            nodes += 1;
            let l = &mut levels[node.level as usize];
            let bytes = node.encoded_size(compression) as u64;
            used_bytes += bytes;
            l.nodes += 1;
            l.entries += node.entries.len() as u64;
            l.avg_fill += bytes as f64 / page_size;
            for e in &node.entries {
                let s = e.sig.count() as f64 / nbits;
                l.avg_saturation += s;
                l.max_saturation = l.max_saturation.max(s);
                l.est_false_drop += s.powi(t as i32);
            }
        });
        for l in &mut levels {
            if l.nodes > 0 {
                l.avg_fill /= l.nodes as f64;
                l.avg_fanout = l.entries as f64 / l.nodes as f64;
            }
            if l.entries > 0 {
                l.avg_saturation /= l.entries as f64;
                l.est_false_drop /= l.entries as f64;
            }
        }
        let allocated = nodes * self.pool().page_size() as u64;
        let findings = findings_for(&levels, self.len(), nodes);
        HealthReport {
            len: self.len(),
            nodes,
            height: self.height(),
            nbits: self.nbits(),
            query_items: t,
            utilization: if allocated == 0 {
                0.0
            } else {
                used_bytes as f64 / allocated as f64
            },
            levels,
            findings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeConfig;
    use sg_pager::MemStore;
    use sg_sig::Signature;
    use std::sync::Arc;

    fn build(n: u64, nbits: u32) -> SgTree {
        let mut tree =
            SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(nbits)).unwrap();
        for tid in 0..n {
            let items = [
                (tid % nbits as u64) as u32,
                ((tid * 7 + 1) % nbits as u64) as u32,
                ((tid * 13 + 5) % nbits as u64) as u32,
            ];
            tree.insert(tid, &Signature::from_items(nbits, &items));
        }
        tree
    }

    /// Brute-force recomputation of per-level saturation and false-drop
    /// by testing every bit of every entry signature individually —
    /// deliberately avoiding `Signature::count`'s popcount path.
    fn brute_force(tree: &SgTree, t: u32) -> Vec<(f64, f64, f64)> {
        let nbits = tree.nbits();
        let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); tree.height() as usize];
        tree.walk(|_, node, _| {
            for e in &node.entries {
                let mut w = 0u64;
                for bit in 0..nbits {
                    if e.sig.get(bit) {
                        w += 1;
                    }
                }
                per_level[node.level as usize].push(w as f64 / nbits as f64);
            }
        });
        per_level
            .iter()
            .map(|sats| {
                if sats.is_empty() {
                    return (0.0, 0.0, 0.0);
                }
                let avg = sats.iter().sum::<f64>() / sats.len() as f64;
                let max = sats.iter().cloned().fold(0.0, f64::max);
                let fd = sats.iter().map(|s| s.powi(t as i32)).sum::<f64>() / sats.len() as f64;
                (avg, max, fd)
            })
            .collect()
    }

    #[test]
    fn report_matches_brute_force() {
        let tree = build(800, 128);
        let report = tree.health_report();
        assert!(report.query_items >= 1);
        let brute = brute_force(&tree, report.query_items);
        assert_eq!(report.levels.len(), brute.len());
        for (l, (avg, max, fd)) in brute.iter().enumerate() {
            let lv = &report.levels[l];
            assert!(
                (lv.avg_saturation - avg).abs() < 1e-12,
                "level {l}: {} vs {avg}",
                lv.avg_saturation
            );
            assert!((lv.max_saturation - max).abs() < 1e-12);
            assert!(
                (lv.est_false_drop - fd).abs() < 1e-12,
                "level {l}: {} vs {fd}",
                lv.est_false_drop
            );
        }
    }

    #[test]
    fn report_consistent_with_stats() {
        let tree = build(500, 128);
        let report = tree.health_report();
        let stats = tree.stats();
        assert_eq!(report.len, 500);
        assert_eq!(report.nodes, stats.nodes);
        assert_eq!(report.levels.len(), stats.levels.len());
        for (h, s) in report.levels.iter().zip(&stats.levels) {
            assert_eq!(h.nodes, s.nodes);
            assert_eq!(h.entries, s.entries);
            // Saturation is area / nbits.
            assert!((h.avg_saturation - s.avg_entry_area / 128.0).abs() < 1e-9);
        }
        assert!((report.utilization - stats.utilization()).abs() < 1e-12);
    }

    #[test]
    fn false_drop_decreases_with_more_query_items() {
        let tree = build(800, 128);
        let fd = |t| tree.health_report_for(t).levels[1].est_false_drop;
        assert!(fd(1) > fd(3));
        assert!(fd(3) > fd(8));
        // All probabilities.
        for t in [1, 3, 8] {
            for l in &tree.health_report_for(t).levels {
                assert!((0.0..=1.0).contains(&l.est_false_drop));
                assert!((0.0..=1.0).contains(&l.avg_saturation));
                assert!(l.max_saturation >= l.avg_saturation);
            }
        }
    }

    #[test]
    fn saturated_tree_triggers_critical_finding() {
        // A tiny universe with dense transactions saturates directory
        // signatures almost immediately.
        let nbits = 16;
        let mut tree =
            SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(nbits)).unwrap();
        for tid in 0..600u64 {
            // Pseudo-random dense sets: any OR of a few covers most
            // bits. Draw each item from a different nibble of a mixed
            // hash so low-modulus aliasing can't re-introduce structure.
            let h = tid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let items: Vec<u32> = (0..8u64).map(|j| ((h >> (j * 4)) % 16) as u32).collect();
            tree.insert(tid, &Signature::from_items(nbits, &items));
        }
        let report = tree.health_report();
        assert!(tree.height() > 1, "need a directory level");
        let dir = &report.levels[1];
        assert!(
            dir.avg_saturation >= 0.90,
            "expected saturation, got {}",
            dir.avg_saturation
        );
        assert_eq!(report.status(), "critical");
        let f = report
            .findings
            .iter()
            .find(|f| f.code == "saturation" && f.severity == Severity::Critical)
            .expect("critical saturation finding");
        assert!(f.message.contains("re-split/rebuild"), "{}", f.message);
        // Most severe first.
        assert_eq!(report.findings[0].severity, report.worst().unwrap());
    }

    #[test]
    fn empty_tree_reports_info_only() {
        let tree = SgTree::create(Arc::new(MemStore::new(512)), TreeConfig::new(64)).unwrap();
        let report = tree.health_report();
        assert_eq!(report.len, 0);
        assert_eq!(report.status(), "info");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].code, "empty");
    }

    #[test]
    fn json_document_is_complete_and_parseable() {
        let tree = build(400, 128);
        let report = tree.health_report();
        let text = report.to_json_value().to_string_compact();
        let doc = sg_obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("len").and_then(Json::as_u64), Some(400));
        let levels = doc.get("levels").and_then(Json::as_arr).unwrap();
        assert_eq!(levels.len(), tree.height() as usize);
        for (i, l) in levels.iter().enumerate() {
            assert_eq!(l.get("level").and_then(Json::as_u64), Some(i as u64));
            assert!(l.get("est_false_drop").and_then(Json::as_f64).is_some());
        }
        assert!(doc.get("findings").and_then(Json::as_arr).is_some());
        assert!(doc.get("status").and_then(Json::as_str).is_some());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        // For arbitrary transaction sets and query sizes, the report's
        // per-level saturation and false-drop numbers must equal a
        // brute-force per-bit recount over the actual node signatures.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn saturation_and_false_drop_match_brute_force(
                sets in prop::collection::vec(
                    prop::collection::vec(0u32..96, 1..12),
                    1..300,
                ),
                t in 1u32..10,
            ) {
                let nbits = 96;
                let mut tree = SgTree::create(
                    Arc::new(MemStore::new(512)),
                    TreeConfig::new(nbits),
                )
                .unwrap();
                for (tid, items) in sets.iter().enumerate() {
                    tree.insert(tid as u64, &Signature::from_items(nbits, items));
                }
                let report = tree.health_report_for(t);
                prop_assert_eq!(report.query_items, t);
                prop_assert_eq!(report.len, sets.len() as u64);
                let brute = brute_force(&tree, t);
                prop_assert_eq!(report.levels.len(), brute.len());
                for (l, (avg, max, fd)) in brute.iter().enumerate() {
                    let lv = &report.levels[l];
                    prop_assert!((lv.avg_saturation - avg).abs() < 1e-12,
                        "level {} avg {} vs {}", l, lv.avg_saturation, avg);
                    prop_assert!((lv.max_saturation - max).abs() < 1e-12,
                        "level {} max {} vs {}", l, lv.max_saturation, max);
                    prop_assert!((lv.est_false_drop - fd).abs() < 1e-12,
                        "level {} fd {} vs {}", l, lv.est_false_drop, fd);
                    prop_assert!(lv.est_false_drop <= lv.max_saturation.powi(1) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn merged_reports_weight_by_entries() {
        let a = build(300, 128);
        let b = build(900, 128);
        let (ra, rb) = (a.health_report(), b.health_report());
        let m = HealthReport::merged([&ra, &rb]);
        assert_eq!(m.len, 1200);
        assert_eq!(m.nodes, ra.nodes + rb.nodes);
        assert_eq!(m.height, ra.height.max(rb.height));
        assert_eq!(m.levels[0].entries, 1200);
        // Entry-weighted mean sits between the two inputs.
        let (lo, hi) = (
            ra.levels[0].avg_saturation.min(rb.levels[0].avg_saturation),
            ra.levels[0].avg_saturation.max(rb.levels[0].avg_saturation),
        );
        assert!((lo..=hi).contains(&m.levels[0].avg_saturation));
        // Merging a report with itself is idempotent on the means.
        let twice = HealthReport::merged([&ra, &ra]);
        assert!((twice.levels[0].avg_saturation - ra.levels[0].avg_saturation).abs() < 1e-12);
        assert_eq!(twice.len, 2 * ra.len);
    }
}
