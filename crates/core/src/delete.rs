//! Deletion (§3.1): R-tree-style condensation. An underflowing leaf is
//! dissolved and its entries reinserted, "increasing space utilization and
//! the quality of the tree". When condensation makes a *directory* node
//! underflow, the leaf entries of its orphaned subtrees are reinserted as
//! fresh transactions (the paper only specifies the leaf case; reinserting
//! at the data level is the simplest behaviour that preserves every
//! invariant and matches the quality goal).

use crate::node::{Entry, Node};
use crate::tree::SgTree;
use crate::Tid;
use sg_pager::PageId;
use sg_sig::Signature;

enum DeleteOutcome {
    /// The key was not under this subtree.
    NotFound,
    /// Deleted; the node still exists and now has this union signature.
    Kept(Signature),
    /// Deleted; the node underflowed, was freed, and its surviving leaf
    /// entries were appended to the reinsertion buffer.
    Dissolved,
}

impl SgTree {
    /// Deletes the leaf entry `(tid, sig)`. Returns `true` if it was
    /// present. Both the id and the exact signature must match, mirroring
    /// R-tree deletion by (id, rectangle); the signature also guides the
    /// search, so deletion costs a partial traversal rather than a scan.
    pub fn delete(&mut self, tid: Tid, sig: &Signature) -> bool {
        assert_eq!(
            sig.nbits(),
            self.config.nbits,
            "signature universe mismatch"
        );
        let mut reinsert: Vec<Entry> = Vec::new();
        let root = self.root;
        let found = match self.delete_rec(root, tid, sig, &mut reinsert) {
            DeleteOutcome::NotFound => false,
            DeleteOutcome::Kept(_) | DeleteOutcome::Dissolved => true,
        };
        if !found {
            debug_assert!(reinsert.is_empty());
            return false;
        }
        self.len -= 1;
        self.shrink_root();
        if let Some(obs) = self.obs() {
            obs.deletes.inc();
            obs.reinserts.add(reinsert.len() as u64);
        }
        for e in reinsert {
            self.insert_entry(e);
        }
        self.shrink_root();
        self.mark_dirty();
        true
    }

    fn delete_rec(
        &mut self,
        page: PageId,
        tid: Tid,
        sig: &Signature,
        reinsert: &mut Vec<Entry>,
    ) -> DeleteOutcome {
        let mut node = self.read_node(page);
        let is_root = page == self.root;
        if node.is_leaf() {
            let Some(pos) = node
                .entries
                .iter()
                .position(|e| e.ptr == tid && e.sig == *sig)
            else {
                return DeleteOutcome::NotFound;
            };
            node.entries.remove(pos);
            if !is_root && node.encoded_size(self.config.compression) < self.min_node_bytes {
                reinsert.append(&mut node.entries);
                self.pool.free(page);
                return DeleteOutcome::Dissolved;
            }
            let union = node.union_signature(self.config.nbits);
            self.write_node(page, &node);
            return DeleteOutcome::Kept(union);
        }
        // Directory: only subtrees whose signature covers the target can
        // hold it.
        let mut hit: Option<(usize, DeleteOutcome)> = None;
        for i in 0..node.entries.len() {
            if !node.entries[i].sig.contains(sig) {
                continue;
            }
            match self.delete_rec(node.entries[i].ptr, tid, sig, reinsert) {
                DeleteOutcome::NotFound => continue,
                outcome => {
                    hit = Some((i, outcome));
                    break;
                }
            }
        }
        let Some((i, outcome)) = hit else {
            return DeleteOutcome::NotFound;
        };
        match outcome {
            DeleteOutcome::NotFound => unreachable!(),
            DeleteOutcome::Kept(child_sig) => {
                node.entries[i].sig = child_sig;
            }
            DeleteOutcome::Dissolved => {
                node.entries.remove(i);
            }
        }
        if !is_root && node.encoded_size(self.config.compression) < self.min_node_bytes {
            for e in node.entries.drain(..) {
                self.collect_leaf_entries(e.ptr, reinsert);
            }
            self.pool.free(page);
            return DeleteOutcome::Dissolved;
        }
        let union = node.union_signature(self.config.nbits);
        self.write_node(page, &node);
        DeleteOutcome::Kept(union)
    }

    /// Frees the subtree under `page`, appending its leaf entries to `out`.
    fn collect_leaf_entries(&mut self, page: PageId, out: &mut Vec<Entry>) {
        let node = self.read_node(page);
        if node.is_leaf() {
            out.extend(node.entries);
        } else {
            for e in &node.entries {
                self.collect_leaf_entries(e.ptr, out);
            }
        }
        self.pool.free(page);
    }

    /// Collapses a directory root with a single child (repeatedly), and
    /// resets an entirely empty directory root to an empty leaf.
    fn shrink_root(&mut self) {
        loop {
            let node = self.read_node(self.root);
            if node.is_leaf() {
                return;
            }
            match node.entries.len() {
                0 => {
                    // Every subtree dissolved; restart as an empty leaf.
                    self.write_node(self.root, &Node::new(0));
                    self.height = 1;
                    self.mark_dirty();
                    return;
                }
                1 => {
                    let child = node.entries[0].ptr;
                    self.pool.free(self.root);
                    self.root = child;
                    self.height -= 1;
                    self.mark_dirty();
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeConfig;
    use sg_pager::MemStore;
    use std::sync::Arc;

    fn sig_for(tid: u64, nbits: u32) -> Signature {
        let items = [
            (tid % nbits as u64) as u32,
            ((tid * 7 + 1) % nbits as u64) as u32,
            ((tid * 13 + 5) % nbits as u64) as u32,
        ];
        Signature::from_items(nbits, &items)
    }

    fn build(n: u64) -> SgTree {
        let store = Arc::new(MemStore::new(512));
        let mut tree = SgTree::create(store, TreeConfig::new(128)).unwrap();
        for tid in 0..n {
            tree.insert(tid, &sig_for(tid, 128));
        }
        tree
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut tree = build(20);
        assert!(!tree.delete(999, &sig_for(999, 128)));
        // Right id, wrong signature.
        assert!(!tree.delete(3, &Signature::from_items(128, &[99])));
        assert_eq!(tree.len(), 20);
        tree.validate();
    }

    #[test]
    fn delete_each_inserted_entry() {
        let mut tree = build(120);
        for tid in 0..120u64 {
            assert!(tree.delete(tid, &sig_for(tid, 128)), "tid {tid}");
            assert_eq!(tree.len(), 119 - tid);
            tree.validate();
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn delete_in_reverse_order() {
        let mut tree = build(120);
        for tid in (0..120u64).rev() {
            assert!(tree.delete(tid, &sig_for(tid, 128)));
        }
        tree.validate();
        assert!(tree.is_empty());
    }

    #[test]
    fn delete_half_then_query_remainder() {
        let mut tree = build(200);
        for tid in (0..200u64).step_by(2) {
            assert!(tree.delete(tid, &sig_for(tid, 128)));
        }
        tree.validate();
        assert_eq!(tree.len(), 100);
        let mut tids: Vec<u64> = tree.dump().into_iter().map(|(t, _)| t).collect();
        tids.sort_unstable();
        assert_eq!(tids, (0..200u64).filter(|t| t % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn delete_then_reinsert_same_key() {
        let mut tree = build(50);
        let s = sig_for(25, 128);
        assert!(tree.delete(25, &s));
        assert!(!tree.delete(25, &s));
        tree.insert(25, &s);
        assert_eq!(tree.len(), 50);
        tree.validate();
    }

    #[test]
    fn interleaved_insert_delete_stress() {
        let store = Arc::new(MemStore::new(512));
        let mut tree = SgTree::create(store, TreeConfig::new(128)).unwrap();
        let mut live: Vec<u64> = Vec::new();
        let mut next_tid = 0u64;
        let mut x = 0x9E3779B97F4A7C15u64;
        for step in 0..600 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if live.is_empty() || x % 3 != 0 {
                tree.insert(next_tid, &sig_for(next_tid, 128));
                live.push(next_tid);
                next_tid += 1;
            } else {
                let idx = (x >> 17) as usize % live.len();
                let tid = live.swap_remove(idx);
                assert!(tree.delete(tid, &sig_for(tid, 128)), "step {step}");
            }
            if step % 50 == 0 {
                tree.validate();
            }
        }
        tree.validate();
        assert_eq!(tree.len(), live.len() as u64);
    }

    #[test]
    fn duplicate_tids_delete_one_at_a_time() {
        let store = Arc::new(MemStore::new(512));
        let mut tree = SgTree::create(store, TreeConfig::new(64)).unwrap();
        let s = Signature::from_items(64, &[1, 2, 3]);
        for _ in 0..3 {
            tree.insert(7, &s);
        }
        assert!(tree.delete(7, &s));
        assert_eq!(tree.len(), 2);
        assert!(tree.delete(7, &s));
        assert!(tree.delete(7, &s));
        assert!(!tree.delete(7, &s));
        tree.validate();
    }
}
