//! `calibrate` — the workload-calibration probe behind DESIGN.md §5.
//!
//! The paper omits the basket generator's pattern-pool size `|L|`. This
//! probe sweeps `|L|` and prints, per workload, the NN-distance histogram
//! over Figure 12's buckets together with both indexes' pruning and I/O,
//! so the chosen default (|L| = 200) can be re-derived:
//!
//! ```sh
//! cargo run --release -p sg-bench --bin calibrate
//! ```
use sg_bench::measure::{compare, QueryKind};
use sg_bench::workloads::*;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_tree::SplitPolicy;

fn main() {
    let m = Metric::hamming();
    for npat in [50usize, 100, 200, 400] {
        for (t, i) in [(30u32, 18u32), (10, 6)] {
            let mut p = BasketParams::standard(t, i);
            p.n_patterns = npat;
            let pool = PatternPool::new(p, SEED);
            let ds = pool.dataset(100_000, SEED);
            let queries: Vec<Signature> = pool
                .queries(60, SEED)
                .iter()
                .map(|q| Signature::from_items(ds.n_items, q))
                .collect();
            let inst = instance_of(&ds, SplitPolicy::AvLink);
            // NN distance histogram
            let mut hist = [0u32; 5];
            for q in &queries {
                let (nn, _) = inst.scan.knn(q, 1, &m);
                let d = nn[0].dist;
                let b = if d == 0.0 {
                    0
                } else if d <= 3.0 {
                    1
                } else if d <= 10.0 {
                    2
                } else if d <= 20.0 {
                    3
                } else {
                    4
                };
                hist[b] += 1;
            }
            let c = compare(&inst, &queries, QueryKind::Knn(1), &m);
            println!("L={npat:4} T{t}I{i}: hist(0,1-3,4-10,11-20,>20)={hist:?} tree%={:5.2} table%={:5.2} treeIO={:6.0} tableIO={:6.0}",
                c.tree.pct_data, c.table.pct_data, c.tree.ios, c.table.ios);
        }
    }
}
