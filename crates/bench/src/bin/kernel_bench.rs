//! `kernel-bench` — directory-visit throughput, old AoS path vs the SoA
//! kernel sweep, per kernel variant.
//!
//! A *visit* is the hot unit of SG-tree search: given a node of `F`
//! entries, compute every entry's `mindist` lower bound and its area
//! (popcount). The pre-PR code did this over the AoS [`Node`] — one
//! heap-allocated `Signature` per entry, one `metric.mindist(q, sig)`
//! and one `sig.count()` per entry, both dispatching word-at-a-time
//! loops. The new path decodes the page into a [`SoaNode`] (one
//! contiguous cache-aligned lane buffer, decode-time weight cache) and
//! sweeps it with the bit-parallel kernels behind `SG_KERNEL`.
//!
//! Two measurements per configuration, both in interleaved A/B blocks
//! (alternating sides through the run, so host drift lands on both —
//! the methodology from EXPERIMENTS.md):
//!
//! * **resident** — nodes decoded once outside the clock; measures the
//!   sweep itself. This is the kernel speedup, and the number the ≥5×
//!   tentpole target refers to.
//! * **end-to-end** — decode + sweep per visit, the way `read_soa`
//!   actually serves a query from the buffer pool; bounded below by the
//!   (kernel-independent) decode cost.
//!
//! Appends one trajectory entry to `BENCH_kernels.json`:
//!
//! ```text
//! kernel-bench [--visits N] [--out PATH]
//! ```

use sg_bench::workloads::{pairs_of, SEED};
use sg_obs::json::{self, Json};
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::kernels::{self, KernelKind};
use sg_sig::{Metric, Signature};
use sg_tree::{Entry, Node, QueryProbe, SoaNode};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const D: usize = 20_000;
const FANOUT: usize = 64;
const PAGE: usize = 16 * 1024;

/// A labelled measurement side: one closure producing a sink value per op.
type Side<'a> = (&'a str, Box<dyn FnMut() -> u64 + 'a>);

/// Interleaved multi-way measurement: each round runs every side for
/// `block` operations, so all sides sample the same stretch of host
/// time. Returns mean ns/op per side.
fn interleaved(sides: &mut [Side<'_>], total_ops: usize) -> Vec<u64> {
    const ROUNDS: usize = 8;
    let block = (total_ops / ROUNDS).max(1);
    let mut sink = 0u64;
    // Warmup: one block per side outside the clock.
    for (_, f) in sides.iter_mut() {
        for _ in 0..block.min(256) {
            sink = sink.wrapping_add(f());
        }
    }
    let mut totals = vec![Duration::ZERO; sides.len()];
    let mut counts = vec![0u64; sides.len()];
    for _ in 0..ROUNDS {
        for (i, (_, f)) in sides.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..block {
                sink = sink.wrapping_add(f());
            }
            totals[i] += t0.elapsed();
            counts[i] += block as u64;
        }
    }
    std::hint::black_box(sink);
    totals
        .iter()
        .zip(&counts)
        .map(|(t, c)| t.as_nanos() as u64 / c)
        .collect()
}

/// Groups `data` into encoded node pages of up to [`FANOUT`] entries.
fn build_pages(data: &[(u64, Signature)]) -> Vec<Vec<u8>> {
    let mut pages = Vec::new();
    let mut node = Node::new(0);
    for (tid, sig) in data {
        node.entries.push(Entry::new(sig.clone(), *tid));
        if node.entries.len() == FANOUT || node.encoded_size(true) > PAGE / 2 {
            pages.push(node.encode(PAGE, true));
            node = Node::new(0);
        }
    }
    if !node.entries.is_empty() {
        pages.push(node.encode(PAGE, true));
    }
    pages
}

/// One AoS visit: the pre-PR per-entry loop (mindist + popcount each).
fn visit_aos(node: &Node, q: &Signature, m: &Metric) -> u64 {
    let mut acc = 0u64;
    for e in &node.entries {
        acc = acc
            .wrapping_add(m.mindist(q, &e.sig).to_bits())
            .wrapping_add(e.sig.count() as u64);
    }
    acc
}

/// One SoA visit: the strided kernel sweep with the decode-time weights.
fn visit_soa(node: &SoaNode, probe: &QueryProbe, m: &Metric) -> u64 {
    let mut acc = 0u64;
    for i in 0..node.len() {
        acc = acc
            .wrapping_add(node.mindist(i, probe, m).to_bits())
            .wrapping_add(node.weight(i) as u64);
    }
    acc
}

fn main() {
    let mut visits = 40_000usize;
    let mut out = "BENCH_kernels.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} expects a value"))
        };
        match flag.as_str() {
            "--visits" => visits = val("--visits").parse().expect("--visits"),
            "--out" => out = val("--out"),
            other => panic!("unknown flag `{other}`"),
        }
    }

    let pool = PatternPool::new(BasketParams::standard(10, 6), SEED);
    let ds = pool.dataset(D, SEED);
    let nbits = ds.n_items;
    let data = pairs_of(&ds);
    let queries: Vec<Signature> = pool
        .queries(64, SEED)
        .iter()
        .map(|q| Signature::from_items(nbits, q))
        .collect();
    let m = Metric::hamming();

    let pages = build_pages(&data);
    let aos: Vec<Node> = pages.iter().map(|p| Node::decode(nbits, p)).collect();
    let soa: Vec<SoaNode> = pages.iter().map(|p| SoaNode::decode(nbits, p)).collect();
    let probes: Vec<QueryProbe> = queries.iter().map(QueryProbe::new).collect();
    let entries_per_node = data.len() as f64 / pages.len() as f64;
    println!(
        "workload: {} sigs over {} bits, {} node pages (~{entries_per_node:.0} entries/node)",
        data.len(),
        pages.len(),
        nbits
    );

    // ---- resident: sweep pre-decoded nodes; one op = one node visit.
    // Each side keeps its own cursor so every side walks the same
    // node/query rotation.
    let (np, nq) = (pages.len(), queries.len());
    let variants = kernels::variants().to_vec();
    let mut resident_ns: Vec<(String, u64)> = Vec::new();
    {
        let mut c0 = 0usize;
        let mut sides: Vec<Side<'_>> = Vec::new();
        // Pre-PR side: AoS entries, Signature ops forced to the scalar
        // word loop (the pre-kernel code they replaced).
        {
            let (aos, queries, m) = (&aos, &queries, &m);
            sides.push((
                "aos_scalar",
                Box::new(move || {
                    kernels::force(KernelKind::Scalar);
                    c0 += 1;
                    visit_aos(&aos[c0 % np], &queries[c0 % nq], m)
                }),
            ));
        }
        for kind in variants.iter().copied() {
            let label = match kind {
                KernelKind::Scalar => "soa_scalar",
                KernelKind::Unrolled => "soa_unrolled",
                KernelKind::Simd => "soa_simd",
            };
            let (soa, probes, m) = (&soa, &probes, &m);
            let mut c = 0usize;
            sides.push((
                label,
                Box::new(move || {
                    kernels::force(kind);
                    c += 1;
                    visit_soa(&soa[c % np], &probes[c % nq], m)
                }),
            ));
        }
        let ns = interleaved(&mut sides, visits);
        for ((label, _), ns) in sides.iter().zip(&ns) {
            println!("resident {label}: {ns} ns/visit");
        }
        for ((label, _), ns) in sides.iter().zip(&ns) {
            resident_ns.push((label.to_string(), *ns));
        }
    }

    // ---- end-to-end: decode + sweep per visit, old path vs best kernel
    // (plus decode-only sides, to separate layout cost from sweep cost).
    let best = *variants.last().expect("at least scalar is compiled in");
    let mut e2e_ns: Vec<(String, u64)> = Vec::new();
    {
        let (mut i0, mut i1, mut i2, mut i3) = (0usize, 0usize, 0usize, 0usize);
        let mut sides: Vec<Side<'_>> = vec![
            (
                "aos_decode_visit",
                Box::new(|| {
                    kernels::force(KernelKind::Scalar);
                    i0 += 1;
                    let node = Node::decode(nbits, &pages[i0 % np]);
                    visit_aos(&node, &queries[i0 % nq], &m)
                }),
            ),
            (
                "soa_decode_visit",
                Box::new(|| {
                    kernels::force(best);
                    i1 += 1;
                    let node = SoaNode::decode(nbits, &pages[i1 % np]);
                    visit_soa(&node, &probes[i1 % nq], &m)
                }),
            ),
            (
                "aos_decode_only",
                Box::new(|| {
                    i2 += 1;
                    let node = Node::decode(nbits, &pages[i2 % np]);
                    node.entries.len() as u64
                }),
            ),
            (
                "soa_decode_only",
                Box::new(|| {
                    i3 += 1;
                    let node = SoaNode::decode(nbits, &pages[i3 % np]);
                    node.len() as u64
                }),
            ),
        ];
        let ns = interleaved(&mut sides, visits / 2);
        for ((label, _), ns) in sides.iter().zip(&ns) {
            println!("end-to-end {label} ({}): {ns} ns/visit", best.name());
        }
        for ((label, _), ns) in sides.iter().zip(&ns) {
            e2e_ns.push((label.to_string(), *ns));
        }
    }

    let aos_ns = resident_ns[0].1;
    let best_soa_ns = resident_ns[1..].iter().map(|(_, n)| *n).min().unwrap_or(1);
    let speedup = aos_ns as f64 / best_soa_ns.max(1) as f64;
    let e2e_speedup = e2e_ns[0].1 as f64 / e2e_ns[1].1.max(1) as f64;
    println!(
        "resident visit speedup: {speedup:.2}x (aos {aos_ns} ns -> best soa {best_soa_ns} ns); \
         end-to-end (decode included): {e2e_speedup:.2}x"
    );

    let mut entries = match std::fs::read_to_string(&out) {
        Ok(text) => match json::parse(&text) {
            Ok(Json::Arr(entries)) => entries,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut obj: Vec<(String, Json)> = vec![
        ("unix_ms".into(), Json::U64(unix_ms)),
        ("d".into(), Json::U64(D as u64)),
        ("nbits".into(), Json::U64(nbits as u64)),
        ("fanout".into(), Json::U64(FANOUT as u64)),
        ("entries_per_node".into(), Json::F64(entries_per_node)),
        ("best_kernel".into(), Json::Str(best.name().into())),
    ];
    for (label, ns) in &resident_ns {
        obj.push((format!("resident_{label}_ns"), Json::U64(*ns)));
    }
    for (label, ns) in &e2e_ns {
        obj.push((format!("e2e_{label}_ns"), Json::U64(*ns)));
    }
    obj.push(("resident_speedup".into(), Json::F64(speedup)));
    obj.push(("e2e_speedup".into(), Json::F64(e2e_speedup)));
    entries.push(Json::Obj(obj));
    std::fs::write(&out, Json::Arr(entries).to_string_pretty()).expect("write BENCH_kernels.json");
    println!("kernel-bench: appended trajectory entry to {out}");
}
