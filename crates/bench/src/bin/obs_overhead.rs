//! `obs-overhead` — the cost of the observability layer, measured.
//!
//! Runs the same operations with the instrument off and on — per-op
//! comparisons interleave the two sides in alternating blocks so host
//! drift cancels — and appends both sides to `BENCH_obs.json` so the
//! overhead is tracked across PRs like the serve/ingest trajectories:
//!
//! * per-op: `tree.knn(k=10)` on the `T10.I6.D20K` workload — the same
//!   op as `index_ops`'s `query_20k/knn10_sg_tree` — mean ns over a
//!   fixed iteration count. With the recorder off this path pays one
//!   relaxed atomic load per query, which is the <5% acceptance bound.
//! * sampler: the same per-op loop on a metrics-registered tree with the
//!   metric-history sampler off vs snapshotting every 100ms, which bounds
//!   the cost of `/metrics/history` sampling on the hot path (<2%).
//! * end-to-end: a closed-loop load against an embedded server (every
//!   request stamped with a `trace_id` when the recorder is on), p50/p99.
//!
//! ```text
//! obs-overhead [--queries N] [--out PATH]
//! ```

use sg_bench::workloads::{build_tree, pairs_of, SEED};
use sg_obs::json::{self, Json};
use sg_obs::{span, Registry, Sampler};
use sg_quest::basket::{BasketParams, PatternPool};
use sg_serve::{LoadConfig, LoadMode, ServeConfig, Server, Workload};
use sg_sig::{Metric, Signature};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const D: usize = 20_000;

/// A/B per-op measurement in interleaved blocks: the off and on sides
/// alternate through the run, so slow drift on the host (thermal,
/// scheduler, noisy neighbors) lands evenly on both sides instead of
/// biasing whichever side runs last. Returns mean ns/op as `[off, on]`.
fn ab_knn(
    tree: &sg_tree::SgTree,
    queries: &[Signature],
    m: &Metric,
    iters: usize,
    mut enter_on: impl FnMut(),
    mut exit_on: impl FnMut(),
) -> [u64; 2] {
    const BLOCKS_PER_SIDE: usize = 8;
    let block = (iters / (BLOCKS_PER_SIDE * 2)).max(1);
    // Warmup outside the clock.
    for q in queries.iter().take(16) {
        std::hint::black_box(tree.knn(q, 10, m));
    }
    let mut total = [Duration::ZERO; 2];
    let mut count = [0u64; 2];
    let mut qi = 0usize;
    for b in 0..BLOCKS_PER_SIDE * 2 {
        let side = b % 2;
        if side == 1 {
            enter_on();
        }
        let t0 = Instant::now();
        for _ in 0..block {
            std::hint::black_box(tree.knn(&queries[qi % queries.len()], 10, m));
            qi += 1;
        }
        total[side] += t0.elapsed();
        count[side] += block as u64;
        if side == 1 {
            exit_on();
        }
    }
    [
        total[0].as_nanos() as u64 / count[0],
        total[1].as_nanos() as u64 / count[1],
    ]
}

fn main() {
    let mut iters = 20_000usize;
    let mut out = "BENCH_obs.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} expects a value"))
        };
        match flag.as_str() {
            "--queries" => iters = val("--queries").parse().expect("--queries"),
            "--out" => out = val("--out"),
            other => panic!("unknown flag `{other}`"),
        }
    }

    let pool = PatternPool::new(BasketParams::standard(10, 6), SEED);
    let ds = pool.dataset(D, SEED);
    let queries: Vec<Signature> = pool
        .queries(64, SEED)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    let data = pairs_of(&ds);

    // ---- per-op: knn10 against the 20k tree, recorder off vs on.
    let (tree, _) = build_tree(ds.n_items, &data, None);
    let m = Metric::hamming();
    let knn_ns = ab_knn(
        &tree,
        &queries,
        &m,
        iters,
        || span::set_enabled(true),
        || span::set_enabled(false),
    );
    let overhead_pct = if knn_ns[0] > 0 {
        100.0 * (knn_ns[1] as f64 - knn_ns[0] as f64) / knn_ns[0] as f64
    } else {
        0.0
    };
    println!(
        "tree.knn10/20k: off {} ns/op, on {} ns/op ({overhead_pct:+.2}% recording cost)",
        knn_ns[0], knn_ns[1]
    );

    // ---- sampler: the metric-history ring's cost on the hot query path.
    // The same knn op on a metrics-registered tree, with the background
    // sampler off vs snapshotting the whole registry every 100ms — ten
    // samples a second, faster than any dashboard refresh. The query
    // path itself is untouched (sampling is a separate thread); what
    // this measures is the sampler's CPU share plus cache traffic from
    // reading the hot counters.
    const SAMPLE_MS: u64 = 100;
    let sampler_registry = Arc::new(Registry::new());
    let (mut sampled_tree, _) = build_tree(ds.n_items, &data, None);
    sampled_tree.register_obs(&sampler_registry, "sg_tree");
    let slot: std::cell::RefCell<Option<Sampler>> = std::cell::RefCell::new(None);
    let sampler_ns = ab_knn(
        &sampled_tree,
        &queries,
        &m,
        iters,
        || {
            *slot.borrow_mut() = Some(Sampler::start(
                Arc::clone(&sampler_registry),
                Duration::from_millis(SAMPLE_MS),
                512,
            ))
        },
        // Dropping the sampler stops and joins its thread.
        || drop(slot.borrow_mut().take()),
    );
    let sampler_overhead_pct = if sampler_ns[0] > 0 {
        100.0 * (sampler_ns[1] as f64 - sampler_ns[0] as f64) / sampler_ns[0] as f64
    } else {
        0.0
    };
    println!(
        "tree.knn10/20k + {SAMPLE_MS}ms sampler: off {} ns/op, on {} ns/op \
         ({sampler_overhead_pct:+.2}% sampling cost)",
        sampler_ns[0], sampler_ns[1]
    );

    // ---- profiler: span-stack sampling off vs on, at a dashboard rate
    // and an aggressive one. `prof::start` flips the span layer's
    // profiling gate itself, so the on side pays the full bill: the
    // per-span live-stack mirror on the query thread plus the sampler
    // thread reading stacks and thread CPU clocks at `hz`. The off side
    // is the production default (no gates armed).
    let mut prof_runs: Vec<(u32, [u64; 2], f64)> = Vec::new();
    for hz in [49u32, 997] {
        let ns = ab_knn(
            &tree,
            &queries,
            &m,
            iters,
            || {
                sg_obs::prof::clear();
                assert!(sg_obs::prof::start(hz), "profiler failed to start");
            },
            sg_obs::prof::stop,
        );
        let pct = if ns[0] > 0 {
            100.0 * (ns[1] as f64 - ns[0] as f64) / ns[0] as f64
        } else {
            0.0
        };
        println!(
            "tree.knn10/20k + {hz} Hz profiler: off {} ns/op, on {} ns/op \
             ({pct:+.2}% profiling cost)",
            ns[0], ns[1]
        );
        prof_runs.push((hz, ns, pct));
    }

    // ---- end-to-end: closed-loop load, recorder off vs on.
    let serve_side = |on: bool| {
        span::set_enabled(on);
        let exec = Arc::new(
            sg_exec::ShardedExecutor::build(ds.n_items, &data, &sg_exec::ExecConfig::default())
                .expect("executor"),
        );
        let server = Server::start(
            exec,
            Arc::new(Registry::new()),
            ServeConfig {
                admin_addr: None,
                ..ServeConfig::default()
            },
        )
        .expect("server");
        let cfg = LoadConfig {
            addr: server.local_addr().to_string(),
            conns: 4,
            queries: 1000,
            nbits: ds.n_items,
            query_items: 8,
            workload: Workload::Mix,
            mode: LoadMode::Closed,
            trace_sample: if on { 1 } else { 0 },
            ..LoadConfig::default()
        };
        let report = sg_serve::run_load(&cfg).expect("load");
        server.join();
        span::set_enabled(false);
        println!(
            "serve closed loop ({}): p50 {} us, p99 {} us, {:.1} qps",
            if on { "recorder on" } else { "recorder off" },
            report.p50_us,
            report.p99_us,
            report.throughput_qps
        );
        report
    };
    let off = serve_side(false);
    let on = serve_side(true);

    let mut entries = match std::fs::read_to_string(&out) {
        Ok(text) => match json::parse(&text) {
            Ok(Json::Arr(entries)) => entries,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    entries.push(Json::Obj(vec![
        ("unix_ms".into(), Json::U64(unix_ms)),
        ("knn10_off_ns".into(), Json::U64(knn_ns[0])),
        ("knn10_on_ns".into(), Json::U64(knn_ns[1])),
        ("knn10_overhead_pct".into(), Json::F64(overhead_pct)),
        ("sampler_interval_ms".into(), Json::U64(SAMPLE_MS)),
        ("sampler_off_ns".into(), Json::U64(sampler_ns[0])),
        ("sampler_on_ns".into(), Json::U64(sampler_ns[1])),
        (
            "sampler_overhead_pct".into(),
            Json::F64(sampler_overhead_pct),
        ),
        ("prof49_off_ns".into(), Json::U64(prof_runs[0].1[0])),
        ("prof49_on_ns".into(), Json::U64(prof_runs[0].1[1])),
        ("prof49_overhead_pct".into(), Json::F64(prof_runs[0].2)),
        ("prof997_off_ns".into(), Json::U64(prof_runs[1].1[0])),
        ("prof997_on_ns".into(), Json::U64(prof_runs[1].1[1])),
        ("prof997_overhead_pct".into(), Json::F64(prof_runs[1].2)),
        ("serve_off_p50_us".into(), Json::U64(off.p50_us)),
        ("serve_off_p99_us".into(), Json::U64(off.p99_us)),
        ("serve_on_p50_us".into(), Json::U64(on.p50_us)),
        ("serve_on_p99_us".into(), Json::U64(on.p99_us)),
        ("serve_off_qps".into(), Json::F64(off.throughput_qps)),
        ("serve_on_qps".into(), Json::F64(on.throughput_qps)),
    ]));
    std::fs::write(&out, Json::Arr(entries).to_string_pretty()).expect("write BENCH_obs.json");
    println!("obs-overhead: appended trajectory entry to {out}");
}
